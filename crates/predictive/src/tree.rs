//! CART decision-tree classifier.
//!
//! The Grewe et al. predictive model "uses supervised learning to construct a
//! decision tree" over program features. This module implements a standard
//! CART learner (greedy binary splits minimising Gini impurity) that both the
//! original and the extended models are built on.

use serde::{Deserialize, Serialize};

/// Learner hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum number of samples a node must hold to be split further.
    pub min_samples_split: usize,
    /// Minimum number of samples in each child of a split.
    pub min_samples_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_split: 4,
            min_samples_leaf: 1,
        }
    }
}

/// A decision tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Internal node splitting on `feature <= threshold`.
    Split {
        /// Feature column index.
        feature: usize,
        /// Split threshold (left: `<=`, right: `>`).
        threshold: f64,
        /// Left child.
        left: Box<Node>,
        /// Right child.
        right: Box<Node>,
    },
    /// Leaf node predicting a class.
    Leaf {
        /// Predicted class.
        class: usize,
        /// Class histogram of the training samples that reached the leaf.
        counts: Vec<usize>,
    },
}

/// A trained decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    /// Root node.
    pub root: Node,
    /// Number of classes.
    pub num_classes: usize,
    /// Number of feature columns.
    pub num_features: usize,
}

impl DecisionTree {
    /// Train a tree on `(features, label)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or rows have inconsistent lengths.
    pub fn train(samples: &[(Vec<f64>, usize)], config: &TreeConfig) -> DecisionTree {
        assert!(!samples.is_empty(), "cannot train on an empty sample set");
        let num_features = samples[0].0.len();
        assert!(
            samples.iter().all(|(f, _)| f.len() == num_features),
            "inconsistent feature lengths"
        );
        let num_classes = samples.iter().map(|(_, l)| *l).max().unwrap_or(0) + 1;
        let indices: Vec<usize> = (0..samples.len()).collect();
        let root = build_node(samples, &indices, num_classes, config, 0);
        DecisionTree {
            root,
            num_classes,
            num_features,
        }
    }

    /// Predict the class of a feature vector.
    pub fn predict(&self, features: &[f64]) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class, .. } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let value = features.get(*feature).copied().unwrap_or(0.0);
                    node = if value <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Number of leaves (a rough measure of model complexity).
    pub fn leaf_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Maximum depth of the tree.
    pub fn depth(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        depth(&self.root)
    }

    /// Accuracy over a labelled evaluation set.
    pub fn accuracy(&self, samples: &[(Vec<f64>, usize)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .filter(|(f, l)| self.predict(f) == *l)
            .count();
        correct as f64 / samples.len() as f64
    }
}

fn class_counts(
    samples: &[(Vec<f64>, usize)],
    indices: &[usize],
    num_classes: usize,
) -> Vec<usize> {
    let mut counts = vec![0usize; num_classes];
    for &i in indices {
        counts[samples[i].1] += 1;
    }
    counts
}

fn gini(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| (c as f64 / total).powi(2))
        .sum::<f64>()
}

fn majority(counts: &[usize]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn build_node(
    samples: &[(Vec<f64>, usize)],
    indices: &[usize],
    num_classes: usize,
    config: &TreeConfig,
    depth: usize,
) -> Node {
    let counts = class_counts(samples, indices, num_classes);
    let node_gini = gini(&counts);
    if depth >= config.max_depth || indices.len() < config.min_samples_split || node_gini == 0.0 {
        return Node::Leaf {
            class: majority(&counts),
            counts,
        };
    }
    let num_features = samples[indices[0]].0.len();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted gini)
    for feature in 0..num_features {
        // candidate thresholds: midpoints between consecutive distinct values
        let mut values: Vec<f64> = indices.iter().map(|&i| samples[i].0[feature]).collect();
        values.sort_by(|a, b| a.total_cmp(b));
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        for w in values.windows(2) {
            let threshold = (w[0] + w[1]) / 2.0;
            let left: Vec<usize> = indices
                .iter()
                .copied()
                .filter(|&i| samples[i].0[feature] <= threshold)
                .collect();
            let right: Vec<usize> = indices
                .iter()
                .copied()
                .filter(|&i| samples[i].0[feature] > threshold)
                .collect();
            if left.len() < config.min_samples_leaf || right.len() < config.min_samples_leaf {
                continue;
            }
            let gl = gini(&class_counts(samples, &left, num_classes));
            let gr = gini(&class_counts(samples, &right, num_classes));
            let weighted =
                (left.len() as f64 * gl + right.len() as f64 * gr) / indices.len() as f64;
            if best.map(|(_, _, b)| weighted < b - 1e-12).unwrap_or(true) {
                best = Some((feature, threshold, weighted));
            }
        }
    }
    match best {
        Some((feature, threshold, weighted)) if weighted < node_gini - 1e-12 => {
            let left_idx: Vec<usize> = indices
                .iter()
                .copied()
                .filter(|&i| samples[i].0[feature] <= threshold)
                .collect();
            let right_idx: Vec<usize> = indices
                .iter()
                .copied()
                .filter(|&i| samples[i].0[feature] > threshold)
                .collect();
            Node::Split {
                feature,
                threshold,
                left: Box::new(build_node(
                    samples,
                    &left_idx,
                    num_classes,
                    config,
                    depth + 1,
                )),
                right: Box::new(build_node(
                    samples,
                    &right_idx,
                    num_classes,
                    config,
                    depth + 1,
                )),
            }
        }
        _ => Node::Leaf {
            class: majority(&counts),
            counts,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Conjunction of two thresholds: label 1 iff x > 0.5 and y > 0.5. Needs a
    /// depth-2 tree (greedy CART learns it, unlike XOR).
    fn and_data() -> Vec<(Vec<f64>, usize)> {
        let mut data = Vec::new();
        for i in 0..40 {
            let x = (i % 8) as f64 / 8.0;
            let y = ((i / 8) % 8) as f64 / 8.0;
            let label = usize::from(x > 0.5 && y > 0.5);
            data.push((vec![x, y], label));
        }
        data
    }

    #[test]
    fn learns_threshold_rule() {
        let data: Vec<(Vec<f64>, usize)> = (0..50)
            .map(|i| (vec![i as f64], usize::from(i >= 25)))
            .collect();
        let tree = DecisionTree::train(&data, &TreeConfig::default());
        assert_eq!(tree.predict(&[3.0]), 0);
        assert_eq!(tree.predict(&[40.0]), 1);
        assert_eq!(tree.accuracy(&data), 1.0);
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn learns_conjunction_with_depth_two() {
        let data = and_data();
        let tree = DecisionTree::train(
            &data,
            &TreeConfig {
                max_depth: 3,
                min_samples_split: 2,
                min_samples_leaf: 1,
            },
        );
        assert!(
            tree.accuracy(&data) > 0.95,
            "accuracy {}",
            tree.accuracy(&data)
        );
    }

    #[test]
    fn depth_limit_respected() {
        let data = and_data();
        let tree = DecisionTree::train(
            &data,
            &TreeConfig {
                max_depth: 1,
                min_samples_split: 2,
                min_samples_leaf: 1,
            },
        );
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let data: Vec<(Vec<f64>, usize)> = (0..10).map(|i| (vec![i as f64], 0)).collect();
        let tree = DecisionTree::train(&data, &TreeConfig::default());
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.predict(&[100.0]), 0);
    }

    #[test]
    fn handles_constant_features() {
        let data: Vec<(Vec<f64>, usize)> = (0..10)
            .map(|i| (vec![1.0, i as f64], usize::from(i >= 5)))
            .collect();
        let tree = DecisionTree::train(&data, &TreeConfig::default());
        assert_eq!(tree.accuracy(&data), 1.0);
    }

    #[test]
    fn multiclass_supported() {
        let data: Vec<(Vec<f64>, usize)> = (0..60)
            .map(|i| (vec![i as f64], (i / 20) as usize))
            .collect();
        let tree = DecisionTree::train(&data, &TreeConfig::default());
        assert_eq!(tree.num_classes, 3);
        assert_eq!(tree.predict(&[10.0]), 0);
        assert_eq!(tree.predict(&[30.0]), 1);
        assert_eq!(tree.predict(&[50.0]), 2);
    }
}
