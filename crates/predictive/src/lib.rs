//! # predictive
//!
//! The predictive-modeling substrate of the CLgen reproduction: a CART
//! decision [`tree`] (the learner behind the Grewe et al. CPU/GPU mapping
//! model), labelled [`dataset`]s with the paper's evaluation metrics
//! (performance relative to the oracle, speedup over the best static mapping)
//! and the evaluation protocols of §7 ([`model`]): leave-one-out
//! cross-validation, training-set augmentation with synthetic benchmarks and
//! cross-suite evaluation.
//!
//! ```
//! use predictive::{Dataset, Example, MappingModel};
//!
//! let mut data = Dataset::new();
//! for i in 0..10 {
//!     let size = (i + 1) as f64 * 100.0;
//!     data.push(Example {
//!         features: vec![size],
//!         benchmark: format!("b{i}"),
//!         suite: "demo".into(),
//!         id: format!("b{i}"),
//!         cpu_time: size / 100.0,
//!         gpu_time: 500.0 / size,
//!     });
//! }
//! let model = MappingModel::train(&data);
//! assert_eq!(model.predict(&data.examples[0]), data.examples[0].oracle());
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod model;
pub mod persist;
pub mod tree;

pub use dataset::{evaluate, Dataset, EvalMetrics, Example, CLASS_CPU, CLASS_GPU};
pub use model::{
    aggregate, cross_suite, geomean_speedup, leave_one_out, BenchmarkResult, MappingModel,
};
pub use persist::{PersistError, MAPPING_MAGIC, MAPPING_VERSION};
pub use tree::{DecisionTree, TreeConfig};
