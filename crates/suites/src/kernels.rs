//! Hand-written OpenCL kernels for each benchmark-suite stand-in.
//!
//! Each function returns the benchmark list of one suite. The kernels are
//! written in the characteristic style of the suite they represent (see the
//! crate docs); all of them compile against `cl-frontend`, execute on the
//! `cldrive` interpreter and satisfy the dynamic checker (they read their
//! inputs and write data-dependent outputs).

use crate::{Benchmark, Suite, DEFAULT_SIZES, NPB_CLASSES, PARBOIL_SIZES};

fn bench(suite: Suite, name: &str, source: &str, sizes: &[usize]) -> Benchmark {
    Benchmark {
        suite,
        name: name.to_string(),
        source: source.to_string(),
        dataset_sizes: sizes.to_vec(),
    }
}

fn npb_sizes() -> Vec<usize> {
    NPB_CLASSES.iter().map(|(_, s)| *s).collect()
}

/// NAS Parallel Benchmarks (SNU OpenCL): local-memory heavy, minimal branching.
pub fn npb() -> Vec<Benchmark> {
    let sizes = npb_sizes();
    vec![
        bench(
            Suite::Npb,
            "BT",
            "__kernel void bt_compute_rhs(__global float* u, __global float* rhs, __local float* ws, const int n) {
                int gid = get_global_id(0);
                int lid = get_local_id(0);
                ws[lid] = u[gid];
                barrier(CLK_LOCAL_MEM_FENCE);
                float t = ws[lid];
                rhs[gid] = t * 0.25f + t * t * 0.1f + u[gid] * 1.5f;
            }
            __kernel void bt_add(__global float* u, __global float* rhs, const int n) {
                int gid = get_global_id(0);
                u[gid] = u[gid] + rhs[gid];
            }",
            &sizes,
        ),
        bench(
            Suite::Npb,
            "CG",
            "__kernel void cg_spmv(__global float* vals, __global int* cols, __global float* x, __global float* y, const int n) {
                int row = get_global_id(0);
                float sum = 0.0f;
                for (int j = 0; j < 8; j++) {
                    int idx = row * 8 + j;
                    sum += vals[idx] * x[cols[idx] % n];
                }
                y[row] = sum;
            }
            __kernel void cg_dot(__global float* a, __global float* b, __global float* out, __local float* tmp, const int n) {
                int gid = get_global_id(0);
                int lid = get_local_id(0);
                tmp[lid] = a[gid] * b[gid];
                barrier(CLK_LOCAL_MEM_FENCE);
                for (int s = get_local_size(0) / 2; s > 0; s >>= 1) {
                    if (lid < s) { tmp[lid] += tmp[lid + s]; }
                    barrier(CLK_LOCAL_MEM_FENCE);
                }
                if (lid == 0) { out[get_group_id(0)] = tmp[0]; }
            }",
            &sizes,
        ),
        bench(
            Suite::Npb,
            "EP",
            "__kernel void ep_gaussian(__global float* seeds, __global float* sums, __local float* acc, const int n) {
                int gid = get_global_id(0);
                int lid = get_local_id(0);
                float x = seeds[gid];
                float total = 0.0f;
                for (int i = 0; i < 32; i++) {
                    x = fract(x * 1103.515f + 0.12345f);
                    float t = 2.0f * x - 1.0f;
                    total += t * t;
                }
                acc[lid] = total;
                barrier(CLK_LOCAL_MEM_FENCE);
                sums[gid] = acc[lid] + total * 0.5f;
            }",
            &sizes,
        ),
        bench(
            Suite::Npb,
            "FT",
            "__kernel void ft_evolve(__global float* ur, __global float* ui, __global float* outr, __global float* outi, const int n) {
                int gid = get_global_id(0);
                float wr = cos(0.0001f * gid);
                float wi = sin(0.0001f * gid);
                outr[gid] = ur[gid] * wr - ui[gid] * wi;
                outi[gid] = ur[gid] * wi + ui[gid] * wr;
            }
            __kernel void ft_transpose_local(__global float* in, __global float* out, __local float* tile, const int width) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                int lx = get_local_id(0);
                int ly = get_local_id(1);
                tile[ly * 16 + lx] = in[y * width + x];
                barrier(CLK_LOCAL_MEM_FENCE);
                out[x * width + y] = tile[ly * 16 + lx];
            }",
            &sizes,
        ),
        bench(
            Suite::Npb,
            "LU",
            "__kernel void lu_jacld(__global float* u, __global float* d, __local float* row, const int n) {
                int gid = get_global_id(0);
                int lid = get_local_id(0);
                row[lid] = u[gid];
                barrier(CLK_LOCAL_MEM_FENCE);
                float c = row[lid];
                d[gid] = 1.0f / (c + 4.0f) + c * 0.05f + u[gid] * 0.01f;
            }",
            &sizes,
        ),
        bench(
            Suite::Npb,
            "MG",
            "__kernel void mg_resid(__global float* u, __global float* v, __global float* r, const int n) {
                int i = get_global_id(0);
                float left = u[(i + n - 1) % n];
                float right = u[(i + 1) % n];
                r[i] = v[i] - (left + right - 2.0f * u[i]);
            }
            __kernel void mg_psinv(__global float* r, __global float* u, __local float* sh, const int n) {
                int gid = get_global_id(0);
                int lid = get_local_id(0);
                sh[lid] = r[gid];
                barrier(CLK_LOCAL_MEM_FENCE);
                u[gid] = u[gid] + 0.5f * sh[lid] + 0.25f * r[gid];
            }",
            &sizes,
        ),
        bench(
            Suite::Npb,
            "SP",
            "__kernel void sp_ninvr(__global float* rhs, __global float* out, __local float* sh, const int n) {
                int gid = get_global_id(0);
                int lid = get_local_id(0);
                sh[lid] = rhs[gid];
                barrier(CLK_LOCAL_MEM_FENCE);
                float r = sh[lid];
                out[gid] = r * 0.7071f + rhs[gid] * 0.2929f + r * r * 0.001f;
            }",
            &sizes,
        ),
    ]
}

/// Rodinia: irregular access patterns and data-dependent branching.
pub fn rodinia() -> Vec<Benchmark> {
    vec![
        bench(
            Suite::Rodinia,
            "hotspot",
            "__kernel void hotspot_step(__global float* temp, __global float* power, __global float* out, const int width, const int height) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                if (x > 0 && x < width - 1 && y > 0 && y < height - 1) {
                    int idx = y * width + x;
                    float center = temp[idx];
                    float delta = power[idx] + (temp[idx - 1] + temp[idx + 1] - 2.0f * center) * 0.5f
                        + (temp[idx - width] + temp[idx + width] - 2.0f * center) * 0.5f;
                    out[idx] = center + delta * 0.01f;
                }
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Rodinia,
            "bfs",
            "__kernel void bfs_kernel(__global int* edges, __global int* levels, __global int* next, const int n) {
                int tid = get_global_id(0);
                if (tid < n) {
                    if (levels[tid] >= 0) {
                        int neighbour = edges[tid] % n;
                        if (levels[neighbour % n] < 0) {
                            next[neighbour] = levels[tid] + 1;
                        } else {
                            next[tid] = levels[tid];
                        }
                    } else {
                        next[tid] = edges[tid] % 4;
                    }
                }
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Rodinia,
            "kmeans",
            "__kernel void kmeans_assign(__global float* points, __global float* centroids, __global int* membership, const int n) {
                int gid = get_global_id(0);
                if (gid >= n) { return; }
                float p = points[gid];
                int best = 0;
                float best_dist = MAXFLOAT;
                for (int c = 0; c < 8; c++) {
                    float d = p - centroids[c % n];
                    float dist = d * d;
                    if (dist < best_dist) {
                        best_dist = dist;
                        best = c;
                    }
                }
                membership[gid] = best + (int)(best_dist * 0.0001f);
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Rodinia,
            "srad",
            "__kernel void srad_update(__global float* img, __global float* coeff, __global float* out, const int n) {
                int i = get_global_id(0);
                if (i < n) {
                    float c = clamp(coeff[i], 0.0f, 1.0f);
                    float dn = img[(i + 1) % n] - img[i];
                    float ds = img[(i + n - 1) % n] - img[i];
                    out[i] = img[i] + 0.25f * c * (dn + ds);
                }
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Rodinia,
            "nw",
            "__kernel void nw_fill(__global int* score, __global int* ref, __global int* out, const int n) {
                int i = get_global_id(0);
                if (i > 0 && i < n) {
                    int up = score[i - 1];
                    int diag = score[(i + n - 1) % n] + ref[i];
                    int m = up - 2;
                    if (diag > m) { m = diag; }
                    out[i] = m;
                }
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Rodinia,
            "lud",
            "__kernel void lud_perimeter(__global float* m, __global float* out, __local float* dia, const int n) {
                int gid = get_global_id(0);
                int lid = get_local_id(0);
                dia[lid] = m[gid];
                barrier(CLK_LOCAL_MEM_FENCE);
                float acc = m[gid];
                for (int k = 0; k < lid; k++) {
                    acc -= dia[k] * m[(gid + k + 1) % n];
                }
                out[gid] = acc;
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Rodinia,
            "pathfinder",
            "__kernel void pathfinder_step(__global int* wall, __global int* src, __global int* dst, const int cols) {
                int tid = get_global_id(0);
                if (tid < cols) {
                    int left = src[(tid + cols - 1) % cols];
                    int up = src[tid];
                    int right = src[(tid + 1) % cols];
                    int shortest = up;
                    if (left < shortest) { shortest = left; }
                    if (right < shortest) { shortest = right; }
                    dst[tid] = wall[tid] + shortest;
                }
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Rodinia,
            "streamcluster",
            "__kernel void sc_dist(__global float* points, __global float* centers, __global float* cost, const int n) {
                int gid = get_global_id(0);
                if (gid < n) {
                    float total = 0.0f;
                    for (int d = 0; d < 16; d++) {
                        float delta = points[(gid + d) % n] - centers[d % n];
                        total += delta * delta;
                    }
                    cost[gid] = sqrt(total);
                }
            }",
            DEFAULT_SIZES,
        ),
    ]
}

/// NVIDIA SDK samples: clean, coalesced, tuned code with local-memory tiling.
pub fn nvidia_sdk() -> Vec<Benchmark> {
    vec![
        bench(
            Suite::NvidiaSdk,
            "vectorAdd",
            "__kernel void VectorAdd(__global const float* a, __global const float* b, __global float* c, const int n) {
                int iGID = get_global_id(0);
                if (iGID < n) { c[iGID] = a[iGID] + b[iGID]; }
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::NvidiaSdk,
            "matrixMul",
            "__kernel void MatrixMul(__global float* A, __global float* B, __global float* C, const int width) {
                __local float As[16][16];
                __local float Bs[16][16];
                int bx = get_group_id(0);
                int by = get_group_id(1);
                int tx = get_local_id(0);
                int ty = get_local_id(1);
                int row = by * 16 + ty;
                int col = bx * 16 + tx;
                float sum = 0.0f;
                for (int m = 0; m < width / 16; m++) {
                    As[ty][tx] = A[row * width + m * 16 + tx];
                    Bs[ty][tx] = B[(m * 16 + ty) * width + col];
                    barrier(CLK_LOCAL_MEM_FENCE);
                    for (int k = 0; k < 16; k++) {
                        sum += As[ty][k] * Bs[k][tx];
                    }
                    barrier(CLK_LOCAL_MEM_FENCE);
                }
                C[row * width + col] = sum;
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::NvidiaSdk,
            "dotProduct",
            "__kernel void DotProduct(__global float4* a, __global float4* b, __global float* c, const int n) {
                int iGID = get_global_id(0);
                if (iGID < n) {
                    float4 va = a[iGID];
                    float4 vb = b[iGID];
                    c[iGID] = va.x * vb.x + va.y * vb.y + va.z * vb.z + va.w * vb.w;
                }
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::NvidiaSdk,
            "convolutionSeparable",
            "__kernel void ConvolutionRow(__global float* input, __global float* output, __constant float* filter, const int width) {
                int gid = get_global_id(0);
                float sum = 0.0f;
                for (int k = -4; k <= 4; k++) {
                    sum += input[(gid + k + width) % width] * filter[(k + 4) % width];
                }
                output[gid] = sum;
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::NvidiaSdk,
            "transpose",
            "__kernel void Transpose(__global float* input, __global float* output, __local float* tile, const int width) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                int lx = get_local_id(0);
                int ly = get_local_id(1);
                tile[ly * 17 + lx] = input[y * width + x];
                barrier(CLK_LOCAL_MEM_FENCE);
                output[x * width + y] = tile[ly * 17 + lx];
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::NvidiaSdk,
            "blackScholes",
            "__kernel void BlackScholes(__global float* price, __global float* strike, __global float* years, __global float* callResult, const int n) {
                int gid = get_global_id(0);
                if (gid < n) {
                    float s = price[gid];
                    float x = fmax(strike[gid], 0.1f);
                    float t = fmax(years[gid], 0.05f);
                    float d1 = (log(s / x) + 0.06f * t) / (0.3f * sqrt(t));
                    float d2 = d1 - 0.3f * sqrt(t);
                    float cnd1 = 1.0f / (1.0f + exp(-1.702f * d1));
                    float cnd2 = 1.0f / (1.0f + exp(-1.702f * d2));
                    callResult[gid] = s * cnd1 - x * exp(-0.06f * t) * cnd2;
                }
            }",
            DEFAULT_SIZES,
        ),
    ]
}

/// AMD APP SDK samples.
pub fn amd_sdk() -> Vec<Benchmark> {
    vec![
        bench(
            Suite::AmdSdk,
            "BinarySearch",
            "__kernel void binarySearch(__global uint* sorted, __global uint* keys, __global uint* found, const int n) {
                int gid = get_global_id(0);
                uint key = keys[gid];
                uint lo = 0;
                uint hi = n - 1;
                for (int it = 0; it < 16; it++) {
                    uint mid = (lo + hi) / 2;
                    if (sorted[mid] < key) { lo = mid + 1; } else { hi = mid; }
                }
                found[gid] = lo + key % 2;
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::AmdSdk,
            "BitonicSort",
            "__kernel void bitonicStep(__global uint* keys, __global uint* out, const int stage) {
                int gid = get_global_id(0);
                int partner = gid ^ (1 << (stage % 8));
                uint mine = keys[gid];
                uint theirs = keys[partner % get_global_size(0)];
                uint lesser = min(mine, theirs);
                uint greater = max(mine, theirs);
                out[gid] = ((gid & (1 << (stage % 8))) == 0) ? lesser : greater;
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::AmdSdk,
            "FastWalshTransform",
            "__kernel void fastWalshTransform(__global float* tArray, __global float* out, const int step) {
                unsigned int tid = get_global_id(0);
                unsigned int group = tid % step;
                unsigned int pair = 2 * step * (tid / step) + group;
                unsigned int match = pair + step;
                float t1 = tArray[pair % get_global_size(0)];
                float t2 = tArray[match % get_global_size(0)];
                out[pair % get_global_size(0)] = t1 + t2;
                out[match % get_global_size(0)] = t1 - t2;
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::AmdSdk,
            "MatrixTranspose",
            "__kernel void matrixTranspose(__global float* input, __global float* output, __local float* block, const int width) {
                int gx = get_global_id(0);
                int gy = get_global_id(1);
                int lx = get_local_id(0);
                int ly = get_local_id(1);
                block[ly * 16 + lx] = input[gy * width + gx];
                barrier(CLK_LOCAL_MEM_FENCE);
                output[gx * width + gy] = block[ly * 16 + lx];
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::AmdSdk,
            "Reduction",
            "__kernel void reduce(__global uint* input, __global uint* output, __local uint* sdata, const int n) {
                unsigned int tid = get_local_id(0);
                unsigned int gid = get_global_id(0);
                sdata[tid] = (gid < n) ? input[gid] : 0;
                barrier(CLK_LOCAL_MEM_FENCE);
                for (unsigned int s = get_local_size(0) / 2; s > 0; s >>= 1) {
                    if (tid < s) { sdata[tid] += sdata[tid + s]; }
                    barrier(CLK_LOCAL_MEM_FENCE);
                }
                if (tid == 0) { output[get_group_id(0)] = sdata[0]; }
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::AmdSdk,
            "SimpleConvolution",
            "__kernel void simpleConvolution(__global uint* input, __global float* mask, __global uint* output, const int width) {
                uint tid = get_global_id(0);
                float sum = 0.0f;
                for (int m = 0; m < 9; m++) {
                    sum += (float)(input[(tid + m) % get_global_size(0)]) * mask[m % width];
                }
                output[tid] = (uint)(sum);
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::AmdSdk,
            "DCT",
            "__kernel void dct8x8(__global float* input, __global float* output, __local float* block, const int width) {
                int gid = get_global_id(0);
                int lid = get_local_id(0);
                block[lid] = input[gid];
                barrier(CLK_LOCAL_MEM_FENCE);
                float acc = 0.0f;
                for (int k = 0; k < 8; k++) {
                    acc += block[(lid / 8) * 8 + k] * cos((2.0f * k + 1.0f) * (lid % 8) * 0.19635f);
                }
                output[gid] = acc * 0.5f;
            }",
            DEFAULT_SIZES,
        ),
    ]
}

/// Parboil: scientific/throughput kernels, two dataset sizes per program.
pub fn parboil() -> Vec<Benchmark> {
    vec![
        bench(
            Suite::Parboil,
            "sgemm",
            "__kernel void sgemm_nt(__global float* A, __global float* B, __global float* C, const int lda) {
                int row = get_global_id(1);
                int col = get_global_id(0);
                float c = 0.0f;
                for (int i = 0; i < lda; i++) {
                    c += A[row * lda + i] * B[col * lda + i];
                }
                C[row * lda + col] = C[row * lda + col] * 0.5f + c;
            }",
            PARBOIL_SIZES,
        ),
        bench(
            Suite::Parboil,
            "spmv",
            "__kernel void spmv_jds(__global float* data, __global int* indices, __global float* x, __global float* y, const int n) {
                int row = get_global_id(0);
                float sum = 0.0f;
                for (int j = 0; j < 16; j++) {
                    int idx = (row + j * n / 16) % n;
                    sum += data[idx] * x[indices[idx] % n];
                }
                y[row] = sum;
            }",
            PARBOIL_SIZES,
        ),
        bench(
            Suite::Parboil,
            "stencil",
            "__kernel void stencil7pt(__global float* in, __global float* out, const int nx, const int ny) {
                int i = get_global_id(0);
                int j = get_global_id(1);
                if (i > 0 && i < nx - 1 && j > 0 && j < ny - 1) {
                    int idx = j * nx + i;
                    out[idx] = 0.8f * in[idx]
                        + 0.05f * (in[idx - 1] + in[idx + 1] + in[idx - nx] + in[idx + nx]);
                }
            }",
            PARBOIL_SIZES,
        ),
        bench(
            Suite::Parboil,
            "cutcp",
            "__kernel void cutoff_potential(__global float4* atoms, __global float* energy, const int natoms) {
                int gid = get_global_id(0);
                float4 me = atoms[gid];
                float total = 0.0f;
                for (int j = 0; j < 64; j++) {
                    float4 other = atoms[(gid + j + 1) % natoms];
                    float dx = me.x - other.x;
                    float dy = me.y - other.y;
                    float dz = me.z - other.z;
                    float r2 = dx * dx + dy * dy + dz * dz + 0.01f;
                    if (r2 < 1.0f) {
                        total += other.w * (1.0f - r2) * rsqrt(r2);
                    }
                }
                energy[gid] = total;
            }",
            PARBOIL_SIZES,
        ),
        bench(
            Suite::Parboil,
            "histo",
            "__kernel void histo_main(__global uint* img, __global uint* histo, const int n) {
                int gid = get_global_id(0);
                if (gid < n) {
                    uint value = img[gid] % 256u;
                    atomic_inc(&histo[value]);
                }
            }",
            PARBOIL_SIZES,
        ),
        bench(
            Suite::Parboil,
            "mri-q",
            "__kernel void computeQ(__global float* phiR, __global float* phiI, __global float* x, __global float* Qr, const int numK) {
                int gid = get_global_id(0);
                float qr = 0.0f;
                for (int k = 0; k < 32; k++) {
                    float angle = 6.2831853f * x[gid] * (float)(k + 1) * 0.01f;
                    qr += phiR[k % numK] * cos(angle) - phiI[k % numK] * sin(angle);
                }
                Qr[gid] = qr;
            }",
            PARBOIL_SIZES,
        ),
    ]
}

/// PolyBench/GPU: regular dense loop nests, no branching.
pub fn polybench() -> Vec<Benchmark> {
    vec![
        bench(
            Suite::Polybench,
            "2mm",
            "__kernel void mm2_kernel1(__global float* A, __global float* B, __global float* tmp, const int ni) {
                int i = get_global_id(1);
                int j = get_global_id(0);
                float acc = 0.0f;
                for (int k = 0; k < ni; k++) {
                    acc += A[i * ni + k] * B[k * ni + j];
                }
                tmp[i * ni + j] = acc * 1.5f;
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Polybench,
            "3mm",
            "__kernel void mm3_kernel1(__global float* A, __global float* B, __global float* E, const int nk) {
                int i = get_global_id(1);
                int j = get_global_id(0);
                float acc = 0.0f;
                for (int k = 0; k < nk; k++) {
                    acc += A[i * nk + k] * B[k * nk + j];
                }
                E[i * nk + j] = acc;
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Polybench,
            "atax",
            "__kernel void atax_kernel(__global float* A, __global float* x, __global float* y, const int nx) {
                int i = get_global_id(0);
                float tmp = 0.0f;
                for (int j = 0; j < 32; j++) {
                    tmp += A[(i * 32 + j) % (nx * 4)] * x[j % nx];
                }
                y[i] = tmp * 2.0f + x[i % nx];
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Polybench,
            "bicg",
            "__kernel void bicg_kernel(__global float* A, __global float* p, __global float* q, const int nx) {
                int i = get_global_id(0);
                float acc = 0.0f;
                for (int j = 0; j < 32; j++) {
                    acc += A[(i + j * nx) % (nx * 4)] * p[j % nx];
                }
                q[i] = acc;
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Polybench,
            "gemm",
            "__kernel void gemm_kernel(__global float* A, __global float* B, __global float* C, const int ni) {
                int i = get_global_id(1);
                int j = get_global_id(0);
                float acc = C[i * ni + j] * 0.5f;
                for (int k = 0; k < ni; k++) {
                    acc += 1.2f * A[i * ni + k] * B[k * ni + j];
                }
                C[i * ni + j] = acc;
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Polybench,
            "gesummv",
            "__kernel void gesummv_kernel(__global float* A, __global float* B, __global float* x, __global float* y, const int n) {
                int i = get_global_id(0);
                float t1 = 0.0f;
                float t2 = 0.0f;
                for (int j = 0; j < 32; j++) {
                    t1 += A[(i * 32 + j) % (n * 4)] * x[j % n];
                    t2 += B[(i * 32 + j) % (n * 4)] * x[j % n];
                }
                y[i] = 1.5f * t1 + 1.2f * t2;
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Polybench,
            "mvt",
            "__kernel void mvt_kernel(__global float* a, __global float* x1, __global float* y1, const int n) {
                int i = get_global_id(0);
                float acc = x1[i];
                for (int j = 0; j < 32; j++) {
                    acc += a[(i * 32 + j) % (n * 4)] * y1[j % n];
                }
                x1[i] = acc;
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Polybench,
            "syrk",
            "__kernel void syrk_kernel(__global float* A, __global float* C, const int n) {
                int i = get_global_id(1);
                int j = get_global_id(0);
                float acc = C[i * n + j] * 0.8f;
                for (int k = 0; k < n; k++) {
                    acc += 1.1f * A[i * n + k] * A[j * n + k];
                }
                C[i * n + j] = acc;
            }",
            DEFAULT_SIZES,
        ),
    ]
}

/// SHOC: bandwidth and compute microbenchmarks plus small app kernels.
pub fn shoc() -> Vec<Benchmark> {
    vec![
        bench(
            Suite::Shoc,
            "Triad",
            "__kernel void triad(__global float* a, __global float* b, __global float* c, const float s) {
                int gid = get_global_id(0);
                c[gid] = a[gid] + s * b[gid];
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Shoc,
            "MaxFlops",
            "__kernel void maxflops(__global float* data, __global float* out, const int n) {
                int gid = get_global_id(0);
                float v = data[gid];
                for (int i = 0; i < 64; i++) {
                    v = mad(v, 0.999f, 0.001f);
                    v = mad(v, 1.001f, -0.001f);
                }
                out[gid] = v;
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Shoc,
            "DeviceMemory",
            "__kernel void readGlobalMemoryCoalesced(__global float* data, __global float* output, const int size) {
                int gid = get_global_id(0);
                float sum = 0.0f;
                for (int j = 0; j < 16; j++) {
                    sum += data[(gid + j * get_global_size(0)) % size];
                }
                output[gid] = sum;
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Shoc,
            "Reduction",
            "__kernel void reduce(__global float* g_idata, __global float* g_odata, __local float* sdata, const int n) {
                unsigned int tid = get_local_id(0);
                unsigned int i = get_global_id(0);
                sdata[tid] = (i < n) ? g_idata[i] : 0.0f;
                barrier(CLK_LOCAL_MEM_FENCE);
                for (unsigned int s = get_local_size(0) / 2; s > 0; s >>= 1) {
                    if (tid < s) { sdata[tid] += sdata[tid + s]; }
                    barrier(CLK_LOCAL_MEM_FENCE);
                }
                if (tid == 0) { g_odata[get_group_id(0)] = sdata[0]; }
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Shoc,
            "Scan",
            "__kernel void scan_local(__global float* in, __global float* out, __local float* temp, const int n) {
                int lid = get_local_id(0);
                int gid = get_global_id(0);
                temp[lid] = (gid < n) ? in[gid] : 0.0f;
                barrier(CLK_LOCAL_MEM_FENCE);
                for (int offset = 1; offset < get_local_size(0); offset *= 2) {
                    float val = temp[lid];
                    if (lid >= offset) { val += temp[lid - offset]; }
                    barrier(CLK_LOCAL_MEM_FENCE);
                    temp[lid] = val;
                    barrier(CLK_LOCAL_MEM_FENCE);
                }
                out[gid] = temp[lid];
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Shoc,
            "FFT",
            "__kernel void fft_radix2(__global float* real, __global float* imag, __global float* outr, __global float* outi, const int n) {
                int gid = get_global_id(0);
                int partner = gid ^ 1;
                float wr = cos(6.2831853f * gid / (float)n);
                float wi = sin(6.2831853f * gid / (float)n);
                float pr = real[partner % n];
                float pi = imag[partner % n];
                outr[gid] = real[gid] + wr * pr - wi * pi;
                outi[gid] = imag[gid] + wr * pi + wi * pr;
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Shoc,
            "MD",
            "__kernel void md_lj(__global float4* position, __global float4* force, const int natoms) {
                int gid = get_global_id(0);
                float4 me = position[gid];
                float fx = 0.0f;
                float fy = 0.0f;
                float fz = 0.0f;
                for (int j = 0; j < 32; j++) {
                    float4 other = position[(gid + j + 1) % natoms];
                    float dx = me.x - other.x;
                    float dy = me.y - other.y;
                    float dz = me.z - other.z;
                    float r2 = dx * dx + dy * dy + dz * dz + 0.01f;
                    float inv_r6 = 1.0f / (r2 * r2 * r2);
                    float f = inv_r6 * (inv_r6 - 0.5f) / r2;
                    fx += dx * f;
                    fy += dy * f;
                    fz += dz * f;
                }
                force[gid] = (float4)(fx, fy, fz, 0.0f);
            }",
            DEFAULT_SIZES,
        ),
        bench(
            Suite::Shoc,
            "Sort",
            "__kernel void radix_count(__global uint* keys, __global uint* counts, const int shift) {
                int gid = get_global_id(0);
                uint key = keys[gid];
                uint digit = (key >> (shift % 24)) & 15u;
                atomic_inc(&counts[digit]);
                keys[gid] = key ^ digit;
            }",
            DEFAULT_SIZES,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_suite_counts() {
        assert_eq!(npb().len(), 7);
        assert_eq!(rodinia().len(), 8);
        assert_eq!(nvidia_sdk().len(), 6);
        assert_eq!(amd_sdk().len(), 7);
        assert_eq!(parboil().len(), 6);
        assert_eq!(polybench().len(), 8);
        assert_eq!(shoc().len(), 8);
    }

    #[test]
    fn suites_have_distinct_character() {
        // PolyBench has no data-dependent branching at all.
        for b in polybench() {
            assert!(
                !b.source.contains("if ("),
                "{} should be branch-free",
                b.id()
            );
        }
        // SHOC includes at least one local-memory reduction and one atomics kernel.
        assert!(shoc().iter().any(|b| b.source.contains("__local")));
        assert!(shoc().iter().any(|b| b.source.contains("atomic_")));
        // Rodinia is branch-heavy.
        let branchy = rodinia()
            .iter()
            .filter(|b| b.source.contains("if ("))
            .count();
        assert!(branchy >= 5);
    }
}
