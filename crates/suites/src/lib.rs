//! # suites
//!
//! Synthetic stand-ins for the seven GPGPU benchmark suites used in the
//! paper's evaluation (Table 3): NPB (SNU OpenCL), Rodinia, NVIDIA SDK,
//! AMD SDK, Parboil, PolyBench and SHOC.
//!
//! We cannot redistribute the original suites, so each suite here is a set of
//! hand-written OpenCL kernels in that suite's characteristic style — NPB
//! benchmarks lean heavily on local memory and avoid branching, PolyBench is
//! regular dense loop nests, Rodinia mixes irregular access with branching,
//! SHOC has bandwidth/compute microbenchmarks, and so on. Dataset size classes
//! mirror the paper's setup (five classes for NPB, one to four for Parboil,
//! defaults elsewhere). The *count* of benchmarks is reduced relative to
//! Table 3; DESIGN.md documents this substitution.

#![warn(missing_docs)]

pub mod kernels;

use std::fmt;

/// The seven benchmark suites of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Suite {
    /// NAS Parallel Benchmarks (SNU OpenCL implementation).
    Npb,
    /// Rodinia 3.1.
    Rodinia,
    /// NVIDIA SDK 4.2 samples.
    NvidiaSdk,
    /// AMD APP SDK 3.0 samples.
    AmdSdk,
    /// Parboil 0.2.
    Parboil,
    /// PolyBench/GPU 1.0.
    Polybench,
    /// SHOC 1.1.5.
    Shoc,
}

impl Suite {
    /// All seven suites, in the order used by the paper's tables.
    pub fn all() -> Vec<Suite> {
        vec![
            Suite::AmdSdk,
            Suite::Npb,
            Suite::NvidiaSdk,
            Suite::Parboil,
            Suite::Polybench,
            Suite::Rodinia,
            Suite::Shoc,
        ]
    }

    /// Short display name matching the paper's tables.
    pub fn short_name(&self) -> &'static str {
        match self {
            Suite::Npb => "NPB",
            Suite::Rodinia => "Rodinia",
            Suite::NvidiaSdk => "NVIDIA",
            Suite::AmdSdk => "AMD",
            Suite::Parboil => "Parboil",
            Suite::Polybench => "Polybench",
            Suite::Shoc => "SHOC",
        }
    }
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// One benchmark: a kernel source plus the dataset sizes it is run with.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// Owning suite.
    pub suite: Suite,
    /// Benchmark name (e.g. `"FT"`, `"hotspot"`).
    pub name: String,
    /// OpenCL source (one or more kernels).
    pub source: String,
    /// Dataset sizes (global sizes / element counts) the benchmark is run at.
    pub dataset_sizes: Vec<usize>,
}

impl Benchmark {
    /// Identifier like `"NPB.FT"`.
    pub fn id(&self) -> String {
        format!("{}.{}", self.suite.short_name(), self.name)
    }
}

/// NPB dataset size classes S, W, A, B, C (element counts). The paper runs all
/// five classes per NPB program.
pub const NPB_CLASSES: &[(&str, usize)] = &[
    ("S", 1 << 12),
    ("W", 1 << 14),
    ("A", 1 << 16),
    ("B", 1 << 18),
    ("C", 1 << 20),
];

/// Default dataset sizes for the non-NPB suites.
pub const DEFAULT_SIZES: &[usize] = &[1 << 16];

/// Parboil ships 1-4 datasets per program; we use two.
pub const PARBOIL_SIZES: &[usize] = &[1 << 14, 1 << 18];

/// All benchmarks of one suite.
pub fn suite_benchmarks(suite: Suite) -> Vec<Benchmark> {
    match suite {
        Suite::Npb => kernels::npb(),
        Suite::Rodinia => kernels::rodinia(),
        Suite::NvidiaSdk => kernels::nvidia_sdk(),
        Suite::AmdSdk => kernels::amd_sdk(),
        Suite::Parboil => kernels::parboil(),
        Suite::Polybench => kernels::polybench(),
        Suite::Shoc => kernels::shoc(),
    }
}

/// Every benchmark of every suite.
pub fn all_benchmarks() -> Vec<Benchmark> {
    Suite::all()
        .into_iter()
        .flat_map(suite_benchmarks)
        .collect()
}

/// Summary row for Table 3: (suite, number of benchmarks, number of kernels).
pub fn inventory() -> Vec<(Suite, usize, usize)> {
    Suite::all()
        .into_iter()
        .map(|suite| {
            let benchmarks = suite_benchmarks(suite);
            let kernels: usize = benchmarks
                .iter()
                .map(|b| {
                    cl_frontend::compile(&b.source, &Default::default())
                        .kernels
                        .len()
                })
                .sum();
            (suite, benchmarks.len(), kernels)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_frontend::{compile, CompileOptions};

    #[test]
    fn every_benchmark_compiles_cleanly() {
        for b in all_benchmarks() {
            let r = compile(&b.source, &CompileOptions::default());
            assert!(
                r.is_ok(),
                "{} failed to compile:\n{}",
                b.id(),
                r.diagnostics
            );
            assert!(!r.kernels.is_empty(), "{} has no kernels", b.id());
            assert!(r.max_kernel_instructions() >= 3, "{} is trivial", b.id());
        }
    }

    #[test]
    fn suite_composition_matches_paper_structure() {
        let npb = suite_benchmarks(Suite::Npb);
        assert_eq!(npb.len(), 7, "NPB has 7 programs");
        for b in &npb {
            assert_eq!(
                b.dataset_sizes.len(),
                5,
                "NPB programs have 5 dataset classes"
            );
        }
        for b in suite_benchmarks(Suite::Parboil) {
            assert_eq!(b.dataset_sizes.len(), PARBOIL_SIZES.len());
        }
        assert_eq!(Suite::all().len(), 7);
        let total: usize = Suite::all()
            .iter()
            .map(|s| suite_benchmarks(*s).len())
            .sum();
        assert!(
            total >= 40,
            "expected a substantial benchmark population, got {total}"
        );
    }

    #[test]
    fn npb_kernels_use_local_memory_heavily() {
        // §8.2 attributes the F3 sparsity to NPB's heavy local-memory use; our
        // stand-in suite must reproduce that idiom.
        let npb = suite_benchmarks(Suite::Npb);
        let with_local = npb.iter().filter(|b| b.source.contains("__local")).count();
        assert!(
            with_local * 2 > npb.len(),
            "most NPB programs should use local memory"
        );
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<String> = all_benchmarks().iter().map(Benchmark::id).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(before, ids.len());
    }

    #[test]
    fn inventory_counts_kernels() {
        let inv = inventory();
        assert_eq!(inv.len(), 7);
        let total_kernels: usize = inv.iter().map(|(_, _, k)| k).sum();
        let total_benchmarks: usize = inv.iter().map(|(_, b, _)| b).sum();
        assert!(total_kernels >= total_benchmarks);
    }
}
