//! # clsmith
//!
//! A grammar-based random OpenCL kernel generator in the style of CLSmith
//! (Lidbury et al., PLDI 2015), the comparator used in the paper's Turing test
//! control group (§6.1) and feature-space comparison (Figure 9).
//!
//! CLSmith generates *valid but unnatural* programs for differential testing:
//! its kernels take a single `__global ulong*` result buffer, declare many
//! scalar temporaries, build deep random expression trees with safe-math
//! wrappers, and finally hash the temporaries into the result buffer. Human
//! judges identify such code instantly (the paper's control group scored 96%)
//! and its static features rarely coincide with real benchmarks (0.53% in
//! Figure 9). This module reproduces those statistical properties; it is not a
//! differential-testing tool.

#![warn(missing_docs)]

use rand::prelude::*;
use rand::rngs::StdRng;

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClsmithConfig {
    /// Number of scalar temporaries declared at the top of the kernel.
    pub num_variables: usize,
    /// Number of statements in the kernel body.
    pub num_statements: usize,
    /// Maximum depth of generated expression trees.
    pub max_expr_depth: usize,
}

impl Default for ClsmithConfig {
    fn default() -> Self {
        ClsmithConfig {
            num_variables: 8,
            num_statements: 12,
            max_expr_depth: 4,
        }
    }
}

/// A generated CLSmith-style kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct ClsmithKernel {
    /// The kernel source text.
    pub source: String,
    /// The seed it was generated from.
    pub seed: u64,
}

/// Generate one CLSmith-style kernel.
pub fn generate_kernel(seed: u64, config: &ClsmithConfig) -> ClsmithKernel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut body = String::new();
    // CLSmith's hallmark global-id bookkeeping.
    body.push_str("  int linear_global_id = get_global_id(0);\n");
    let mut vars = Vec::new();
    for i in 0..config.num_variables {
        let name = format!("g_{i}");
        let ty = ["int", "uint", "long", "ulong"][rng.gen_range(0..4usize)];
        let init = rng.gen_range(-128i64..128);
        body.push_str(&format!("  {ty} {name} = {init};\n"));
        vars.push(name);
    }
    for s in 0..config.num_statements {
        let target = vars[rng.gen_range(0..vars.len())].clone();
        let expr = gen_expr(&mut rng, &vars, config.max_expr_depth);
        match rng.gen_range(0..4) {
            0 => body.push_str(&format!("  {target} = {expr};\n")),
            1 => body.push_str(&format!("  {target} ^= {expr};\n")),
            2 => body.push_str(&format!(
                "  if (({expr}) != 0) {{\n    {target} = {target} + {};\n  }}\n",
                rng.gen_range(1..16)
            )),
            _ => {
                let bound = rng.gen_range(1..8);
                body.push_str(&format!(
                    "  for (int i_{s} = 0; i_{s} < {bound}; i_{s}++) {{\n    {target} = {target} + ({expr});\n  }}\n"
                ));
            }
        }
    }
    // Hash all temporaries into the single result buffer, CLSmith style.
    body.push_str("  ulong crc = 0;\n");
    for v in &vars {
        body.push_str(&format!("  crc = crc * 31 + (ulong)({v});\n"));
    }
    body.push_str("  result[linear_global_id] = crc;\n");
    let source = format!("__kernel void entry(__global ulong* result) {{\n{body}}}\n");
    ClsmithKernel { source, seed }
}

/// Generate a population of kernels with consecutive seeds.
pub fn generate_population(seed: u64, count: usize, config: &ClsmithConfig) -> Vec<ClsmithKernel> {
    (0..count as u64)
        .map(|i| generate_kernel(seed.wrapping_add(i), config))
        .collect()
}

fn gen_expr(rng: &mut StdRng, vars: &[String], depth: usize) -> String {
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.5) {
            vars[rng.gen_range(0..vars.len())].clone()
        } else {
            format!("{}", rng.gen_range(-64i64..64))
        };
    }
    let lhs = gen_expr(rng, vars, depth - 1);
    let rhs = gen_expr(rng, vars, depth - 1);
    match rng.gen_range(0..8) {
        // CLSmith wraps arithmetic in "safe" helpers; we inline the safe forms.
        0 => format!("({lhs} + {rhs})"),
        1 => format!("({lhs} - {rhs})"),
        2 => format!("({lhs} * {rhs})"),
        3 => format!("(({rhs}) != 0 ? ({lhs}) / ({rhs}) : ({lhs}))"),
        4 => format!("({lhs} ^ {rhs})"),
        5 => format!("({lhs} & {rhs})"),
        6 => format!("(({lhs}) < ({rhs}) ? ({lhs}) : ({rhs}))"),
        _ => format!("(({lhs}) >> (({rhs}) & 7))"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_frontend::{compile, CompileOptions};

    #[test]
    fn generated_kernels_compile() {
        for seed in 0..25 {
            let k = generate_kernel(seed, &ClsmithConfig::default());
            let r = compile(&k.source, &CompileOptions::default());
            assert!(
                r.is_ok(),
                "seed {seed} failed:\n{}\n{}",
                k.source,
                r.diagnostics
            );
            assert_eq!(r.kernels.len(), 1);
            assert!(r.kernel_counts[0].1.instructions >= 3);
        }
    }

    #[test]
    fn kernels_have_clsmith_tells() {
        let k = generate_kernel(7, &ClsmithConfig::default());
        // single ulong* result argument — the "tell" the paper's judges used
        assert!(k
            .source
            .contains("__kernel void entry(__global ulong* result)"));
        assert!(k.source.contains("crc"));
    }

    #[test]
    fn population_is_deterministic_and_distinct() {
        let a = generate_population(100, 10, &ClsmithConfig::default());
        let b = generate_population(100, 10, &ClsmithConfig::default());
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
        }
        let distinct: std::collections::HashSet<_> = a.iter().map(|k| &k.source).collect();
        assert!(distinct.len() >= 9);
    }

    #[test]
    fn config_scales_size() {
        let small = generate_kernel(
            1,
            &ClsmithConfig {
                num_variables: 2,
                num_statements: 2,
                max_expr_depth: 2,
            },
        );
        let large = generate_kernel(
            1,
            &ClsmithConfig {
                num_variables: 20,
                num_statements: 40,
                max_expr_depth: 5,
            },
        );
        assert!(large.source.len() > small.source.len() * 3);
    }
}
