//! Generator of "human-written" OpenCL kernels.
//!
//! The paper mines 8078 content files from GitHub. We cannot ship GitHub, so
//! this module synthesises a population of kernels in the styles that dominate
//! real OpenCL code — element-wise maps, saxpy-like zips, reductions with
//! local memory, stencils, matrix kernels, histograms, transposes, scans —
//! with naturalistic identifier names, varying numeric types, guards and loop
//! shapes. The [`miner`](crate::miner) wraps these kernels in repository-level
//! noise (comments, macros, host fragments) to form raw content files.
//!
//! The generator is deterministic given an RNG, so corpus experiments are
//! reproducible.

use rand::prelude::*;
use rand::rngs::StdRng;

/// The family of a generated kernel. The distribution over families loosely
/// follows the mix of kernels found in GPGPU benchmark suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelFamily {
    /// Element-wise map over one buffer (`out[i] = f(in[i])`).
    Map,
    /// Element-wise combination of two buffers (`c[i] = f(a[i], b[i])`).
    Zip,
    /// saxpy-style fused multiply-add with a scalar coefficient.
    Saxpy,
    /// Work-group reduction using local memory and barriers.
    Reduction,
    /// 1D stencil with a neighbourhood radius.
    Stencil1D,
    /// 2D 5-point stencil.
    Stencil2D,
    /// Naive dense matrix multiplication.
    MatMul,
    /// Tiled matrix multiplication using local memory.
    MatMulTiled,
    /// Matrix transpose.
    Transpose,
    /// Histogram with atomic increments.
    Histogram,
    /// Inclusive scan (single work-group, Hillis-Steele).
    Scan,
    /// Dot product partial reduction.
    DotProduct,
    /// Strided / gather access pattern (non-coalesced).
    Gather,
    /// Vector-type (float4) arithmetic.
    VectorOps,
    /// Data-dependent branching per element.
    Branchy,
    /// N-body style all-pairs force accumulation.
    NBody,
}

/// All kernel families, with sampling weights.
pub const FAMILY_WEIGHTS: &[(KernelFamily, u32)] = &[
    (KernelFamily::Map, 14),
    (KernelFamily::Zip, 13),
    (KernelFamily::Saxpy, 9),
    (KernelFamily::Reduction, 9),
    (KernelFamily::Stencil1D, 7),
    (KernelFamily::Stencil2D, 6),
    (KernelFamily::MatMul, 7),
    (KernelFamily::MatMulTiled, 4),
    (KernelFamily::Transpose, 5),
    (KernelFamily::Histogram, 4),
    (KernelFamily::Scan, 4),
    (KernelFamily::DotProduct, 5),
    (KernelFamily::Gather, 4),
    (KernelFamily::VectorOps, 4),
    (KernelFamily::Branchy, 3),
    (KernelFamily::NBody, 2),
];

/// Naming style used by a "project" for its identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NamingStyle {
    /// `lower_snake_case`
    Snake,
    /// `camelCase`
    Camel,
    /// Short abbreviated names (`src`, `dst`, `n`).
    Terse,
    /// Hungarian-ish prefixes (`pInput`, `nCount`).
    Prefixed,
}

/// A generated kernel with metadata used by corpus statistics.
#[derive(Debug, Clone)]
pub struct GeneratedKernel {
    /// Kernel source text (device code only, no comments or macros).
    pub source: String,
    /// The family it was drawn from.
    pub family: KernelFamily,
    /// Kernel function name.
    pub name: String,
    /// The scalar element type used for data buffers.
    pub elem_type: &'static str,
}

/// Configuration for kernel generation.
#[derive(Debug, Clone)]
pub struct KernelGenConfig {
    /// Naming style for identifiers.
    pub naming: NamingStyle,
    /// Element type for floating point buffers ("float" or "double").
    pub elem_type: &'static str,
    /// Probability of guarding the body with an `if (gid < n)` bounds check.
    pub guard_probability: f64,
}

impl Default for KernelGenConfig {
    fn default() -> Self {
        KernelGenConfig {
            naming: NamingStyle::Snake,
            elem_type: "float",
            guard_probability: 0.7,
        }
    }
}

/// Draw a random kernel family according to [`FAMILY_WEIGHTS`].
pub fn random_family(rng: &mut StdRng) -> KernelFamily {
    let total: u32 = FAMILY_WEIGHTS.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen_range(0..total);
    for (family, weight) in FAMILY_WEIGHTS {
        if pick < *weight {
            return *family;
        }
        pick -= weight;
    }
    KernelFamily::Map
}

/// Generate one kernel of a random family.
pub fn generate_kernel(rng: &mut StdRng, config: &KernelGenConfig) -> GeneratedKernel {
    let family = random_family(rng);
    generate_kernel_of(rng, config, family)
}

/// Generate one kernel of the given family.
pub fn generate_kernel_of(
    rng: &mut StdRng,
    config: &KernelGenConfig,
    family: KernelFamily,
) -> GeneratedKernel {
    let mut namer = Namer::new(config.naming, rng.gen_range(0..1_000_000));
    let name = namer.kernel_name(rng, family);
    let source = match family {
        KernelFamily::Map => gen_map(rng, config, &mut namer, &name),
        KernelFamily::Zip => gen_zip(rng, config, &mut namer, &name),
        KernelFamily::Saxpy => gen_saxpy(rng, config, &mut namer, &name),
        KernelFamily::Reduction => gen_reduction(rng, config, &mut namer, &name),
        KernelFamily::Stencil1D => gen_stencil1d(rng, config, &mut namer, &name),
        KernelFamily::Stencil2D => gen_stencil2d(rng, config, &mut namer, &name),
        KernelFamily::MatMul => gen_matmul(rng, config, &mut namer, &name),
        KernelFamily::MatMulTiled => gen_matmul_tiled(rng, config, &mut namer, &name),
        KernelFamily::Transpose => gen_transpose(rng, config, &mut namer, &name),
        KernelFamily::Histogram => gen_histogram(rng, config, &mut namer, &name),
        KernelFamily::Scan => gen_scan(rng, config, &mut namer, &name),
        KernelFamily::DotProduct => gen_dot(rng, config, &mut namer, &name),
        KernelFamily::Gather => gen_gather(rng, config, &mut namer, &name),
        KernelFamily::VectorOps => gen_vector_ops(rng, config, &mut namer, &name),
        KernelFamily::Branchy => gen_branchy(rng, config, &mut namer, &name),
        KernelFamily::NBody => gen_nbody(rng, config, &mut namer, &name),
    };
    GeneratedKernel {
        source,
        family,
        name,
        elem_type: config.elem_type,
    }
}

/// Generate `count` kernels with default configuration variety (naming style
/// and element type are re-drawn per kernel).
pub fn generate_population(seed: u64, count: usize) -> Vec<GeneratedKernel> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let config = KernelGenConfig {
                naming: match rng.gen_range(0..4) {
                    0 => NamingStyle::Snake,
                    1 => NamingStyle::Camel,
                    2 => NamingStyle::Terse,
                    _ => NamingStyle::Prefixed,
                },
                elem_type: if rng.gen_bool(0.85) { "float" } else { "int" },
                guard_probability: 0.7,
            };
            generate_kernel(&mut rng, &config)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// naming

struct Namer {
    style: NamingStyle,
    salt: u32,
}

impl Namer {
    fn new(style: NamingStyle, salt: u32) -> Self {
        Namer { style, salt }
    }

    fn kernel_name(&mut self, rng: &mut StdRng, family: KernelFamily) -> String {
        let base = match family {
            KernelFamily::Map => ["apply", "map", "transform", "update", "scale_array"],
            KernelFamily::Zip => ["combine", "vec_add", "elementwise", "blend", "mix_arrays"],
            KernelFamily::Saxpy => ["saxpy", "axpy", "fma_kernel", "scale_add", "daxpy"],
            KernelFamily::Reduction => [
                "reduce",
                "sum_reduce",
                "block_reduce",
                "reduce_local",
                "fold",
            ],
            KernelFamily::Stencil1D => ["stencil", "blur1d", "smooth", "diffuse", "convolve1d"],
            KernelFamily::Stencil2D => ["stencil2d", "jacobi", "laplacian", "heat_step", "blur2d"],
            KernelFamily::MatMul => [
                "matmul",
                "gemm",
                "mat_mult",
                "matrix_multiply",
                "sgemm_naive",
            ],
            KernelFamily::MatMulTiled => [
                "matmul_tiled",
                "gemm_local",
                "mm_shared",
                "block_gemm",
                "tiled_mm",
            ],
            KernelFamily::Transpose => [
                "transpose",
                "mat_transpose",
                "flip",
                "transpose_naive",
                "permute",
            ],
            KernelFamily::Histogram => {
                ["histogram", "hist256", "bin_count", "count_values", "histo"]
            }
            KernelFamily::Scan => [
                "scan",
                "prefix_sum",
                "inclusive_scan",
                "cumsum",
                "scan_block",
            ],
            KernelFamily::DotProduct => ["dot", "dot_product", "inner_product", "sdot", "vdot"],
            KernelFamily::Gather => [
                "gather",
                "permute_copy",
                "index_copy",
                "reorder",
                "scatter_read",
            ],
            KernelFamily::VectorOps => [
                "vec4_op",
                "simd_mul",
                "float4_add",
                "vec_math",
                "wide_update",
            ],
            KernelFamily::Branchy => [
                "classify",
                "threshold",
                "select_values",
                "clip",
                "filter_values",
            ],
            KernelFamily::NBody => ["nbody", "body_force", "accel_step", "gravity", "interact"],
        };
        let pick = base[rng.gen_range(0..base.len())];
        let with_suffix = if rng.gen_bool(0.3) {
            format!("{pick}_kernel")
        } else if rng.gen_bool(0.15) {
            format!("{pick}{}", rng.gen_range(1..4))
        } else {
            pick.to_string()
        };
        self.apply_style(&with_suffix)
    }

    fn var(&mut self, concept: &str) -> String {
        let name = match (self.style, concept) {
            (NamingStyle::Terse, "input") => "src",
            (NamingStyle::Terse, "input2") => "src2",
            (NamingStyle::Terse, "output") => "dst",
            (NamingStyle::Terse, "count") => "n",
            (NamingStyle::Terse, "index") => "i",
            (NamingStyle::Terse, "local_index") => "li",
            (NamingStyle::Terse, "accumulator") => "acc",
            (NamingStyle::Terse, "width") => "w",
            (NamingStyle::Terse, "height") => "h",
            (NamingStyle::Terse, "scale") => "a",
            (NamingStyle::Prefixed, "input") => "pInput",
            (NamingStyle::Prefixed, "input2") => "pInputB",
            (NamingStyle::Prefixed, "output") => "pOutput",
            (NamingStyle::Prefixed, "count") => "nCount",
            (NamingStyle::Prefixed, "index") => "nIdx",
            (NamingStyle::Prefixed, "local_index") => "nLocalIdx",
            (NamingStyle::Prefixed, "accumulator") => "fAccum",
            (NamingStyle::Prefixed, "width") => "nWidth",
            (NamingStyle::Prefixed, "height") => "nHeight",
            (NamingStyle::Prefixed, "scale") => "fScale",
            (NamingStyle::Camel, "input") => "inputData",
            (NamingStyle::Camel, "input2") => "inputOther",
            (NamingStyle::Camel, "output") => "outputData",
            (NamingStyle::Camel, "count") => "numElements",
            (NamingStyle::Camel, "index") => "globalId",
            (NamingStyle::Camel, "local_index") => "localId",
            (NamingStyle::Camel, "accumulator") => "accumValue",
            (NamingStyle::Camel, "width") => "matrixWidth",
            (NamingStyle::Camel, "height") => "matrixHeight",
            (NamingStyle::Camel, "scale") => "scaleFactor",
            (_, "input") => "input",
            (_, "input2") => "input_b",
            (_, "output") => "output",
            (_, "count") => "num_elements",
            (_, "index") => "gid",
            (_, "local_index") => "lid",
            (_, "accumulator") => "sum",
            (_, "width") => "width",
            (_, "height") => "height",
            (_, "scale") => "alpha",
            (_, other) => other,
        };
        name.to_string()
    }

    fn local_buf(&mut self) -> String {
        match self.style {
            NamingStyle::Terse => "tmp".to_string(),
            NamingStyle::Prefixed => "pShared".to_string(),
            NamingStyle::Camel => "localBuffer".to_string(),
            NamingStyle::Snake => "scratch".to_string(),
        }
    }

    fn apply_style(&self, snake: &str) -> String {
        match self.style {
            NamingStyle::Snake | NamingStyle::Terse => snake.to_string(),
            NamingStyle::Camel => {
                let mut out = String::new();
                let mut upper = false;
                for c in snake.chars() {
                    if c == '_' {
                        upper = true;
                    } else if upper {
                        out.extend(c.to_uppercase());
                        upper = false;
                    } else {
                        out.push(c);
                    }
                }
                out
            }
            NamingStyle::Prefixed => format!("Do{}", {
                let mut out = String::new();
                let mut upper = true;
                for c in snake.chars() {
                    if c == '_' {
                        upper = true;
                    } else if upper {
                        out.extend(c.to_uppercase());
                        upper = false;
                    } else {
                        out.push(c);
                    }
                }
                out
            }),
        }
        .chars()
        .chain(if self.salt.is_multiple_of(7) {
            Some('2')
        } else {
            None
        })
        .collect()
    }
}

// ---------------------------------------------------------------------------
// expression snippets

fn unary_math(rng: &mut StdRng, elem: &str, operand: &str) -> String {
    if elem == "int" {
        return match rng.gen_range(0..4) {
            0 => format!("{operand} * 2"),
            1 => format!("{operand} + 1"),
            2 => format!("abs({operand})"),
            _ => format!("{operand} >> 1"),
        };
    }
    match rng.gen_range(0..8) {
        0 => format!("sqrt(fabs({operand}))"),
        1 => format!("{operand} * {operand}"),
        2 => format!("exp({operand})"),
        3 => format!("log(fabs({operand}) + 1.0f)"),
        4 => format!("sin({operand})"),
        5 => format!("{operand} * 2.5f + 1.0f"),
        6 => format!("fmax({operand}, 0.0f)"),
        _ => format!("1.0f / ({operand} + 1.0f)"),
    }
}

fn binary_math(rng: &mut StdRng, elem: &str, a: &str, b: &str) -> String {
    if elem == "int" {
        return match rng.gen_range(0..4) {
            0 => format!("{a} + {b}"),
            1 => format!("{a} - {b}"),
            2 => format!("{a} * {b}"),
            _ => format!("max({a}, {b})"),
        };
    }
    match rng.gen_range(0..7) {
        0 => format!("{a} + {b}"),
        1 => format!("{a} - {b}"),
        2 => format!("{a} * {b}"),
        3 => format!("mad({a}, {b}, 1.0f)"),
        4 => format!("fmin({a}, {b})"),
        5 => format!("{a} * {b} + {a}"),
        _ => format!("({a} + {b}) * 0.5f"),
    }
}

// ---------------------------------------------------------------------------
// kernel family templates

fn gen_map(rng: &mut StdRng, config: &KernelGenConfig, namer: &mut Namer, name: &str) -> String {
    let elem = config.elem_type;
    let input = namer.var("input");
    let output = namer.var("output");
    let count = namer.var("count");
    let gid = namer.var("index");
    let expr = unary_math(rng, elem, &format!("{input}[{gid}]"));
    let guarded = rng.gen_bool(config.guard_probability);
    let body = if guarded {
        format!("  if ({gid} < {count}) {{\n    {output}[{gid}] = {expr};\n  }}")
    } else {
        format!("  {output}[{gid}] = {expr};")
    };
    format!(
        "__kernel void {name}(__global {elem}* {input}, __global {elem}* {output}, const int {count}) {{\n  int {gid} = get_global_id(0);\n{body}\n}}\n"
    )
}

fn gen_zip(rng: &mut StdRng, config: &KernelGenConfig, namer: &mut Namer, name: &str) -> String {
    let elem = config.elem_type;
    let a = namer.var("input");
    let b = namer.var("input2");
    let c = namer.var("output");
    let count = namer.var("count");
    let gid = namer.var("index");
    let expr = binary_math(rng, elem, &format!("{a}[{gid}]"), &format!("{b}[{gid}]"));
    let guarded = rng.gen_bool(config.guard_probability);
    let body = if guarded {
        format!("  if ({gid} >= {count}) {{\n    return;\n  }}\n  {c}[{gid}] = {expr};")
    } else {
        format!("  {c}[{gid}] = {expr};")
    };
    format!(
        "__kernel void {name}(__global {elem}* {a}, __global {elem}* {b}, __global {elem}* {c}, const int {count}) {{\n  int {gid} = get_global_id(0);\n{body}\n}}\n"
    )
}

fn gen_saxpy(rng: &mut StdRng, config: &KernelGenConfig, namer: &mut Namer, name: &str) -> String {
    let elem = config.elem_type;
    let x = namer.var("input");
    let y = namer.var("output");
    let count = namer.var("count");
    let gid = namer.var("index");
    let alpha = namer.var("scale");
    let alpha_ty = if elem == "int" { "int" } else { elem };
    let use_mad = elem != "int" && rng.gen_bool(0.4);
    let expr = if use_mad {
        format!("mad({alpha}, {x}[{gid}], {y}[{gid}])")
    } else {
        format!("{alpha} * {x}[{gid}] + {y}[{gid}]")
    };
    format!(
        "__kernel void {name}(__global {elem}* {x}, __global {elem}* {y}, const {alpha_ty} {alpha}, const int {count}) {{\n  int {gid} = get_global_id(0);\n  if ({gid} < {count}) {{\n    {y}[{gid}] = {expr};\n  }}\n}}\n"
    )
}

fn gen_reduction(
    rng: &mut StdRng,
    config: &KernelGenConfig,
    namer: &mut Namer,
    name: &str,
) -> String {
    let elem = config.elem_type;
    let input = namer.var("input");
    let output = namer.var("output");
    let count = namer.var("count");
    let gid = namer.var("index");
    let lid = namer.var("local_index");
    let scratch = namer.local_buf();
    let init = if elem == "int" { "0" } else { "0.0f" };
    let combine = if rng.gen_bool(0.25) && elem != "int" {
        format!("fmax({scratch}[{lid}], {scratch}[{lid} + stride])")
    } else {
        format!("{scratch}[{lid}] + {scratch}[{lid} + stride]")
    };
    format!(
        "__kernel void {name}(__global {elem}* {input}, __global {elem}* {output}, __local {elem}* {scratch}, const int {count}) {{\n  int {gid} = get_global_id(0);\n  int {lid} = get_local_id(0);\n  {scratch}[{lid}] = ({gid} < {count}) ? {input}[{gid}] : {init};\n  barrier(CLK_LOCAL_MEM_FENCE);\n  for (int stride = get_local_size(0) / 2; stride > 0; stride >>= 1) {{\n    if ({lid} < stride) {{\n      {scratch}[{lid}] = {combine};\n    }}\n    barrier(CLK_LOCAL_MEM_FENCE);\n  }}\n  if ({lid} == 0) {{\n    {output}[get_group_id(0)] = {scratch}[0];\n  }}\n}}\n"
    )
}

fn gen_stencil1d(
    rng: &mut StdRng,
    config: &KernelGenConfig,
    namer: &mut Namer,
    name: &str,
) -> String {
    let elem = if config.elem_type == "int" {
        "float"
    } else {
        config.elem_type
    };
    let input = namer.var("input");
    let output = namer.var("output");
    let count = namer.var("count");
    let gid = namer.var("index");
    let radius = rng.gen_range(1..4);
    format!(
        "__kernel void {name}(__global {elem}* {input}, __global {elem}* {output}, const int {count}) {{\n  int {gid} = get_global_id(0);\n  if ({gid} >= {radius} && {gid} < {count} - {radius}) {{\n    {elem} total = 0.0f;\n    for (int k = -{radius}; k <= {radius}; k++) {{\n      total += {input}[{gid} + k];\n    }}\n    {output}[{gid}] = total / (2.0f * {radius}.0f + 1.0f);\n  }}\n}}\n"
    )
}

fn gen_stencil2d(
    _rng: &mut StdRng,
    config: &KernelGenConfig,
    namer: &mut Namer,
    name: &str,
) -> String {
    let elem = if config.elem_type == "int" {
        "float"
    } else {
        config.elem_type
    };
    let input = namer.var("input");
    let output = namer.var("output");
    let width = namer.var("width");
    let height = namer.var("height");
    format!(
        "__kernel void {name}(__global {elem}* {input}, __global {elem}* {output}, const int {width}, const int {height}) {{\n  int x = get_global_id(0);\n  int y = get_global_id(1);\n  if (x > 0 && x < {width} - 1 && y > 0 && y < {height} - 1) {{\n    int idx = y * {width} + x;\n    {elem} center = {input}[idx];\n    {elem} north = {input}[idx - {width}];\n    {elem} south = {input}[idx + {width}];\n    {elem} east = {input}[idx + 1];\n    {elem} west = {input}[idx - 1];\n    {output}[idx] = 0.2f * (center + north + south + east + west);\n  }}\n}}\n"
    )
}

fn gen_matmul(
    _rng: &mut StdRng,
    config: &KernelGenConfig,
    namer: &mut Namer,
    name: &str,
) -> String {
    let elem = if config.elem_type == "int" {
        "float"
    } else {
        config.elem_type
    };
    let a = namer.var("input");
    let b = namer.var("input2");
    let c = namer.var("output");
    let width = namer.var("width");
    let acc = namer.var("accumulator");
    format!(
        "__kernel void {name}(__global {elem}* {a}, __global {elem}* {b}, __global {elem}* {c}, const int {width}) {{\n  int row = get_global_id(1);\n  int col = get_global_id(0);\n  {elem} {acc} = 0.0f;\n  for (int k = 0; k < {width}; k++) {{\n    {acc} += {a}[row * {width} + k] * {b}[k * {width} + col];\n  }}\n  {c}[row * {width} + col] = {acc};\n}}\n"
    )
}

fn gen_matmul_tiled(
    _rng: &mut StdRng,
    config: &KernelGenConfig,
    namer: &mut Namer,
    name: &str,
) -> String {
    let elem = if config.elem_type == "int" {
        "float"
    } else {
        config.elem_type
    };
    let a = namer.var("input");
    let b = namer.var("input2");
    let c = namer.var("output");
    let width = namer.var("width");
    format!(
        "__kernel void {name}(__global {elem}* {a}, __global {elem}* {b}, __global {elem}* {c}, const int {width}) {{\n  __local {elem} tile_a[16][16];\n  __local {elem} tile_b[16][16];\n  int row = get_global_id(1);\n  int col = get_global_id(0);\n  int local_row = get_local_id(1);\n  int local_col = get_local_id(0);\n  {elem} acc = 0.0f;\n  for (int t = 0; t < {width} / 16; t++) {{\n    tile_a[local_row][local_col] = {a}[row * {width} + t * 16 + local_col];\n    tile_b[local_row][local_col] = {b}[(t * 16 + local_row) * {width} + col];\n    barrier(CLK_LOCAL_MEM_FENCE);\n    for (int k = 0; k < 16; k++) {{\n      acc += tile_a[local_row][k] * tile_b[k][local_col];\n    }}\n    barrier(CLK_LOCAL_MEM_FENCE);\n  }}\n  {c}[row * {width} + col] = acc;\n}}\n"
    )
}

fn gen_transpose(
    _rng: &mut StdRng,
    config: &KernelGenConfig,
    namer: &mut Namer,
    name: &str,
) -> String {
    let elem = config.elem_type;
    let input = namer.var("input");
    let output = namer.var("output");
    let width = namer.var("width");
    let height = namer.var("height");
    format!(
        "__kernel void {name}(__global {elem}* {input}, __global {elem}* {output}, const int {width}, const int {height}) {{\n  int x = get_global_id(0);\n  int y = get_global_id(1);\n  if (x < {width} && y < {height}) {{\n    {output}[x * {height} + y] = {input}[y * {width} + x];\n  }}\n}}\n"
    )
}

fn gen_histogram(
    rng: &mut StdRng,
    _config: &KernelGenConfig,
    namer: &mut Namer,
    name: &str,
) -> String {
    let input = namer.var("input");
    let count = namer.var("count");
    let gid = namer.var("index");
    let bins = [64, 128, 256][rng.gen_range(0..3usize)];
    format!(
        "__kernel void {name}(__global uint* {input}, __global uint* histogram, const int {count}) {{\n  int {gid} = get_global_id(0);\n  if ({gid} < {count}) {{\n    uint bin = {input}[{gid}] % {bins}u;\n    atomic_inc(&histogram[bin]);\n  }}\n}}\n"
    )
}

fn gen_scan(_rng: &mut StdRng, config: &KernelGenConfig, namer: &mut Namer, name: &str) -> String {
    let elem = config.elem_type;
    let input = namer.var("input");
    let output = namer.var("output");
    let scratch = namer.local_buf();
    let lid = namer.var("local_index");
    format!(
        "__kernel void {name}(__global {elem}* {input}, __global {elem}* {output}, __local {elem}* {scratch}) {{\n  int {lid} = get_local_id(0);\n  int n = get_local_size(0);\n  {scratch}[{lid}] = {input}[get_global_id(0)];\n  barrier(CLK_LOCAL_MEM_FENCE);\n  for (int offset = 1; offset < n; offset *= 2) {{\n    {elem} value = {scratch}[{lid}];\n    if ({lid} >= offset) {{\n      value += {scratch}[{lid} - offset];\n    }}\n    barrier(CLK_LOCAL_MEM_FENCE);\n    {scratch}[{lid}] = value;\n    barrier(CLK_LOCAL_MEM_FENCE);\n  }}\n  {output}[get_global_id(0)] = {scratch}[{lid}];\n}}\n"
    )
}

fn gen_dot(_rng: &mut StdRng, config: &KernelGenConfig, namer: &mut Namer, name: &str) -> String {
    let elem = if config.elem_type == "int" {
        "float"
    } else {
        config.elem_type
    };
    let a = namer.var("input");
    let b = namer.var("input2");
    let output = namer.var("output");
    let count = namer.var("count");
    let scratch = namer.local_buf();
    format!(
        "__kernel void {name}(__global {elem}* {a}, __global {elem}* {b}, __global {elem}* {output}, __local {elem}* {scratch}, const int {count}) {{\n  int gid = get_global_id(0);\n  int lid = get_local_id(0);\n  {elem} partial = 0.0f;\n  for (int i = gid; i < {count}; i += get_global_size(0)) {{\n    partial += {a}[i] * {b}[i];\n  }}\n  {scratch}[lid] = partial;\n  barrier(CLK_LOCAL_MEM_FENCE);\n  for (int stride = get_local_size(0) / 2; stride > 0; stride >>= 1) {{\n    if (lid < stride) {{\n      {scratch}[lid] += {scratch}[lid + stride];\n    }}\n    barrier(CLK_LOCAL_MEM_FENCE);\n  }}\n  if (lid == 0) {{\n    {output}[get_group_id(0)] = {scratch}[0];\n  }}\n}}\n"
    )
}

fn gen_gather(rng: &mut StdRng, config: &KernelGenConfig, namer: &mut Namer, name: &str) -> String {
    let elem = config.elem_type;
    let input = namer.var("input");
    let output = namer.var("output");
    let count = namer.var("count");
    let gid = namer.var("index");
    let stride = [7, 13, 17, 31][rng.gen_range(0..4usize)];
    format!(
        "__kernel void {name}(__global {elem}* {input}, __global int* indices, __global {elem}* {output}, const int {count}) {{\n  int {gid} = get_global_id(0);\n  if ({gid} < {count}) {{\n    int where = (indices[{gid}] * {stride}) % {count};\n    {output}[{gid}] = {input}[where];\n  }}\n}}\n"
    )
}

fn gen_vector_ops(
    rng: &mut StdRng,
    _config: &KernelGenConfig,
    namer: &mut Namer,
    name: &str,
) -> String {
    let input = namer.var("input");
    let output = namer.var("output");
    let count = namer.var("count");
    let gid = namer.var("index");
    let width = [4, 8, 16][rng.gen_range(0..3usize)];
    format!(
        "__kernel void {name}(__global float{width}* {input}, __global float{width}* {output}, const int {count}) {{\n  int {gid} = get_global_id(0);\n  if ({gid} < {count}) {{\n    float{width} v = {input}[{gid}];\n    {output}[{gid}] = v * v + (float{width})(1.0f);\n  }}\n}}\n"
    )
}

fn gen_branchy(
    rng: &mut StdRng,
    config: &KernelGenConfig,
    namer: &mut Namer,
    name: &str,
) -> String {
    let elem = if config.elem_type == "int" {
        "float"
    } else {
        config.elem_type
    };
    let input = namer.var("input");
    let output = namer.var("output");
    let count = namer.var("count");
    let gid = namer.var("index");
    let threshold = format!("{:.1}f", rng.gen_range(0.1..0.9));
    format!(
        "__kernel void {name}(__global {elem}* {input}, __global {elem}* {output}, const int {count}) {{\n  int {gid} = get_global_id(0);\n  if ({gid} >= {count}) {{\n    return;\n  }}\n  {elem} value = {input}[{gid}];\n  if (value > {threshold}) {{\n    {output}[{gid}] = sqrt(value);\n  }} else if (value < -{threshold}) {{\n    {output}[{gid}] = -value * 2.0f;\n  }} else {{\n    {output}[{gid}] = 0.0f;\n  }}\n}}\n"
    )
}

fn gen_nbody(
    _rng: &mut StdRng,
    _config: &KernelGenConfig,
    namer: &mut Namer,
    name: &str,
) -> String {
    let count = namer.var("count");
    format!(
        "__kernel void {name}(__global float4* positions, __global float4* accelerations, const int {count}) {{\n  int i = get_global_id(0);\n  float4 my_pos = positions[i];\n  float4 accel = (float4)(0.0f, 0.0f, 0.0f, 0.0f);\n  for (int j = 0; j < {count}; j++) {{\n    float4 other = positions[j];\n    float4 delta = other - my_pos;\n    float dist_sq = delta.x * delta.x + delta.y * delta.y + delta.z * delta.z + 0.0001f;\n    float inv_dist = rsqrt(dist_sq);\n    float strength = other.w * inv_dist * inv_dist * inv_dist;\n    accel += delta * strength;\n  }}\n  accelerations[i] = accel;\n}}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_frontend::{compile, CompileOptions};

    #[test]
    fn every_family_produces_compilable_code() {
        let mut rng = StdRng::seed_from_u64(7);
        for (family, _) in FAMILY_WEIGHTS {
            for naming in [
                NamingStyle::Snake,
                NamingStyle::Camel,
                NamingStyle::Terse,
                NamingStyle::Prefixed,
            ] {
                let config = KernelGenConfig {
                    naming,
                    elem_type: "float",
                    guard_probability: 0.5,
                };
                let kernel = generate_kernel_of(&mut rng, &config, *family);
                let r = compile(&kernel.source, &CompileOptions::default());
                assert!(
                    r.is_ok(),
                    "family {family:?} naming {naming:?} does not compile:\n{}\n{}",
                    kernel.source,
                    r.diagnostics
                );
                assert_eq!(r.kernels.len(), 1, "expected exactly one kernel");
            }
        }
    }

    #[test]
    fn population_is_deterministic() {
        let a = generate_population(42, 20);
        let b = generate_population(42, 20);
        assert_eq!(a.len(), 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
        }
    }

    #[test]
    fn population_is_diverse() {
        let kernels = generate_population(1, 200);
        let families: std::collections::HashSet<_> = kernels.iter().map(|k| k.family).collect();
        assert!(
            families.len() >= 10,
            "only {} families sampled",
            families.len()
        );
        let unique_sources: std::collections::HashSet<_> =
            kernels.iter().map(|k| &k.source).collect();
        assert!(unique_sources.len() > 150, "too many duplicate kernels");
    }

    #[test]
    fn int_element_type_works() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = KernelGenConfig {
            naming: NamingStyle::Snake,
            elem_type: "int",
            guard_probability: 1.0,
        };
        for family in [
            KernelFamily::Map,
            KernelFamily::Zip,
            KernelFamily::Saxpy,
            KernelFamily::Reduction,
        ] {
            let kernel = generate_kernel_of(&mut rng, &config, family);
            let r = compile(&kernel.source, &CompileOptions::default());
            assert!(
                r.is_ok(),
                "{family:?}:\n{}\n{}",
                kernel.source,
                r.diagnostics
            );
        }
    }
}
