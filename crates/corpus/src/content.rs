//! Raw "content files" as mined from repositories (§4.1).

use serde::{Deserialize, Serialize};

/// Why a content file was rejected by the rejection filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RejectReason {
    /// The file did not compile (parse or semantic errors other than
    /// undeclared identifiers).
    CompileError,
    /// The file failed only because of undeclared identifiers — the failure
    /// mode the shim header targets.
    UndeclaredIdentifiers,
    /// The file compiled but contains no `__kernel` function.
    NoKernel,
    /// The file compiled but every kernel has fewer than the minimum number of
    /// static instructions.
    TooFewInstructions,
    /// The rejection filter itself panicked on this candidate. Produced only
    /// by supervised filter stages (the synthesis service) that isolate a
    /// per-candidate panic into a typed verdict instead of letting one
    /// poisoned candidate take down the whole filter fan-out.
    FilterPanicked,
    /// Sampling of this candidate was aborted mid-kernel because the
    /// incremental prefix validator proved the emitted prefix unrecoverable
    /// (stray closing delimiter, illegal character, unterminated literal,
    /// pathological nesting). Produced only by the synthesis pipeline —
    /// mined content files are always complete texts — and counted as a
    /// rejection so `accepted + rejected == attempts` keeps holding.
    AbortedMidstream,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RejectReason::CompileError => "compile error",
            RejectReason::UndeclaredIdentifiers => "undeclared identifiers",
            RejectReason::NoKernel => "no kernel function",
            RejectReason::TooFewInstructions => "fewer than minimum static instructions",
            RejectReason::FilterPanicked => "filter panicked",
            RejectReason::AbortedMidstream => "aborted midstream",
        };
        f.write_str(s)
    }
}

/// A raw content file as produced by the miner: text that *potentially*
/// contains OpenCL code, plus provenance metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContentFile {
    /// Synthetic repository identifier (e.g. `github.com/user42/project-7`).
    pub repository: String,
    /// Path of the file within the repository.
    pub path: String,
    /// Raw file contents.
    pub text: String,
}

impl ContentFile {
    /// Construct a content file.
    pub fn new(
        repository: impl Into<String>,
        path: impl Into<String>,
        text: impl Into<String>,
    ) -> Self {
        ContentFile {
            repository: repository.into(),
            path: path.into(),
            text: text.into(),
        }
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.text.lines().count()
    }
}

/// A kernel that survived the rejection filter and code rewriting: part of the
/// final language corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusKernel {
    /// Rewritten, canonically formatted source of exactly one kernel function
    /// (plus any helper functions it needs).
    pub source: String,
    /// Repository the kernel came from.
    pub repository: String,
    /// Static instruction count of the kernel (post-rewrite).
    pub instructions: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_file_lines() {
        let f = ContentFile::new("github.com/a/b", "kernels/foo.cl", "a\nb\nc");
        assert_eq!(f.line_count(), 3);
        assert_eq!(f.repository, "github.com/a/b");
    }

    #[test]
    fn reject_reason_display() {
        assert_eq!(RejectReason::NoKernel.to_string(), "no kernel function");
        assert_eq!(
            RejectReason::UndeclaredIdentifiers.to_string(),
            "undeclared identifiers"
        );
    }
}
