//! Corpus assembly: mining → filtering → rewriting → a language corpus ready
//! for model training, plus the statistics reported in §4.1 of the paper.

use crate::content::{ContentFile, CorpusKernel, RejectReason};
use crate::filter::{filter_corpus, FilterConfig, FilterStats};
use crate::miner::{mine, mining_stats, MinerConfig, MiningStats};
use crate::rewriter::rewrite_file;
use clgen_wire::{Decoder, Encoder, WireError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Version of the corpus wire block written by [`Corpus::encode_into`].
pub const CORPUS_WIRE_VERSION: u32 = 1;

/// A fully assembled language corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    /// The per-kernel corpus entries (rewritten, canonical style).
    pub kernels: Vec<CorpusKernel>,
    /// Statistics gathered while building the corpus.
    pub stats: CorpusStats,
}

/// Statistics over the corpus construction pipeline, mirroring §4.1.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Repositories mined.
    pub repositories: usize,
    /// Raw content files mined.
    pub content_files: usize,
    /// Raw lines mined.
    pub raw_lines: usize,
    /// Content files accepted by the rejection filter.
    pub accepted_files: usize,
    /// Discard rate with the shim header enabled.
    pub discard_rate_with_shim: f64,
    /// Discard rate without the shim header (ablation).
    pub discard_rate_without_shim: f64,
    /// Number of distinct undeclared identifiers observed without the shim.
    pub distinct_undeclared_identifiers: usize,
    /// Fraction of undeclared-identifier occurrences covered by the most
    /// frequent 60 identifiers (the paper reports 50%).
    pub top60_undeclared_coverage: f64,
    /// Kernel functions in the final corpus.
    pub corpus_kernels: usize,
    /// Lines of code in the final corpus (rewritten).
    pub corpus_lines: usize,
    /// Distinct whitespace-delimited words before rewriting (bag-of-words
    /// vocabulary of accepted files).
    pub vocabulary_before: usize,
    /// Distinct words after rewriting.
    pub vocabulary_after: usize,
}

impl CorpusStats {
    /// Vocabulary reduction achieved by identifier rewriting
    /// (the paper reports 84%).
    pub fn vocabulary_reduction(&self) -> f64 {
        if self.vocabulary_before == 0 {
            0.0
        } else {
            1.0 - self.vocabulary_after as f64 / self.vocabulary_before as f64
        }
    }
}

/// Options for corpus construction.
#[derive(Debug, Clone, Default)]
pub struct CorpusOptions {
    /// Mining configuration.
    pub miner: MinerConfig,
    /// Filter configuration (shim on by default).
    pub filter: FilterConfig,
    /// Also run the no-shim filter to record the ablation discard rate.
    /// Disable to halve corpus construction time in tests.
    pub measure_no_shim_ablation: bool,
}

impl CorpusOptions {
    /// Options sized for unit tests.
    pub fn small(seed: u64) -> Self {
        CorpusOptions {
            miner: MinerConfig::small(seed),
            filter: FilterConfig::default(),
            measure_no_shim_ablation: false,
        }
    }
}

impl Corpus {
    /// Build a corpus by mining synthetic repositories and running the full
    /// filter + rewrite pipeline.
    pub fn build(options: &CorpusOptions) -> Corpus {
        let files = mine(&options.miner);
        Corpus::from_content_files(&files, options)
    }

    /// Build a corpus from pre-mined content files.
    pub fn from_content_files(files: &[ContentFile], options: &CorpusOptions) -> Corpus {
        let mining: MiningStats = mining_stats(files);
        let (verdicts, filter_stats) = filter_corpus(files, &options.filter);
        let no_shim_stats: Option<FilterStats> = if options.measure_no_shim_ablation {
            Some(filter_corpus(files, &FilterConfig::without_shim()).1)
        } else {
            None
        };

        let mut kernels = Vec::new();
        let mut corpus_lines = 0usize;
        let mut raw_words: BTreeSet<String> = BTreeSet::new();
        let mut rewritten_words: BTreeSet<String> = BTreeSet::new();
        for (file, verdict) in &verdicts {
            if !verdict.accepted() {
                continue;
            }
            for w in words(&file.text) {
                raw_words.insert(w);
            }
            let rewritten = rewrite_file(file, verdict);
            for k in &rewritten.kernels {
                for w in words(&k.source) {
                    rewritten_words.insert(w);
                }
                corpus_lines += k.source.lines().count();
            }
            kernels.extend(rewritten.kernels);
        }

        let undeclared_stats = no_shim_stats.as_ref().unwrap_or(&filter_stats);
        let mut undeclared_counts: Vec<usize> = undeclared_stats
            .undeclared_identifiers
            .values()
            .copied()
            .collect();
        undeclared_counts.sort_unstable_by(|a, b| b.cmp(a));
        let total_undeclared: usize = undeclared_counts.iter().sum();
        let top60: usize = undeclared_counts.iter().take(60).sum();
        let top60_coverage = if total_undeclared == 0 {
            0.0
        } else {
            top60 as f64 / total_undeclared as f64
        };

        let stats = CorpusStats {
            repositories: mining.repositories,
            content_files: mining.files,
            raw_lines: mining.lines,
            accepted_files: filter_stats.accepted,
            discard_rate_with_shim: filter_stats.discard_rate(),
            discard_rate_without_shim: no_shim_stats
                .as_ref()
                .map(FilterStats::discard_rate)
                .unwrap_or(f64::NAN),
            distinct_undeclared_identifiers: undeclared_stats.undeclared_identifiers.len(),
            top60_undeclared_coverage: top60_coverage,
            corpus_kernels: kernels.len(),
            corpus_lines,
            vocabulary_before: raw_words.len(),
            vocabulary_after: rewritten_words.len(),
        };
        Corpus { kernels, stats }
    }

    /// The concatenated corpus text used for language-model training: every
    /// kernel separated by a blank line, in a deterministic order.
    pub fn training_text(&self) -> String {
        let mut out = String::new();
        for k in &self.kernels {
            out.push_str(k.source.trim_end());
            out.push_str("\n\n");
        }
        out
    }

    /// Number of kernels in the corpus.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// True if the corpus contains no kernels.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Iterate over corpus kernel sources.
    pub fn sources(&self) -> impl Iterator<Item = &str> {
        self.kernels.iter().map(|k| k.source.as_str())
    }

    /// Append this corpus (kernels + construction statistics) to a
    /// checkpoint as a versioned block.
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.u32(CORPUS_WIRE_VERSION);
        enc.usize(self.kernels.len());
        for k in &self.kernels {
            enc.str(&k.source);
            enc.str(&k.repository);
            enc.usize(k.instructions);
        }
        let s = &self.stats;
        enc.usize(s.repositories);
        enc.usize(s.content_files);
        enc.usize(s.raw_lines);
        enc.usize(s.accepted_files);
        enc.f64(s.discard_rate_with_shim);
        enc.f64(s.discard_rate_without_shim);
        enc.usize(s.distinct_undeclared_identifiers);
        enc.f64(s.top60_undeclared_coverage);
        enc.usize(s.corpus_kernels);
        enc.usize(s.corpus_lines);
        enc.usize(s.vocabulary_before);
        enc.usize(s.vocabulary_after);
    }

    /// Decode a corpus written by [`Corpus::encode_into`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<Corpus, WireError> {
        let version = dec.u32()?;
        if version != CORPUS_WIRE_VERSION {
            return Err(WireError::UnsupportedVersion {
                found: version,
                supported: CORPUS_WIRE_VERSION,
            });
        }
        let count = dec.usize_bounded(8, "corpus kernel count")?;
        let mut kernels = Vec::with_capacity(count);
        for _ in 0..count {
            let source = dec.str()?.to_string();
            let repository = dec.str()?.to_string();
            let instructions = dec.usize("instruction count")?;
            kernels.push(CorpusKernel {
                source,
                repository,
                instructions,
            });
        }
        let stats = CorpusStats {
            repositories: dec.usize("repositories")?,
            content_files: dec.usize("content files")?,
            raw_lines: dec.usize("raw lines")?,
            accepted_files: dec.usize("accepted files")?,
            discard_rate_with_shim: dec.f64()?,
            discard_rate_without_shim: dec.f64()?,
            distinct_undeclared_identifiers: dec.usize("undeclared identifiers")?,
            top60_undeclared_coverage: dec.f64()?,
            corpus_kernels: dec.usize("corpus kernels")?,
            corpus_lines: dec.usize("corpus lines")?,
            vocabulary_before: dec.usize("vocabulary before")?,
            vocabulary_after: dec.usize("vocabulary after")?,
        };
        Ok(Corpus { kernels, stats })
    }
}

/// Split text into identifier-ish words (bag-of-words vocabulary).
fn words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            current.push(c);
        } else if !current.is_empty() {
            out.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Convenience re-export so callers can reason about rejection categories.
pub type Rejection = RejectReason;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_corpus() {
        let corpus = Corpus::build(&CorpusOptions::small(13));
        assert!(!corpus.is_empty(), "corpus should contain kernels");
        assert!(corpus.stats.accepted_files > 0);
        assert!(corpus.stats.corpus_kernels >= corpus.stats.accepted_files);
        assert!(corpus.stats.corpus_lines > 0);
        // every corpus kernel is standalone-compilable
        for src in corpus.sources() {
            assert!(
                cl_frontend::parse_and_check(src).is_ok(),
                "not self contained:\n{src}"
            );
        }
    }

    #[test]
    fn vocabulary_shrinks_after_rewriting() {
        let corpus = Corpus::build(&CorpusOptions::small(29));
        assert!(
            corpus.stats.vocabulary_after < corpus.stats.vocabulary_before,
            "rewriting should shrink the vocabulary: {} -> {}",
            corpus.stats.vocabulary_before,
            corpus.stats.vocabulary_after
        );
        assert!(corpus.stats.vocabulary_reduction() > 0.1);
    }

    #[test]
    fn training_text_is_nonempty_and_separated() {
        let corpus = Corpus::build(&CorpusOptions::small(5));
        let text = corpus.training_text();
        assert!(text.contains("__kernel"));
        assert!(text.contains("\n\n"));
    }

    #[test]
    fn ablation_records_both_discard_rates() {
        let mut options = CorpusOptions::small(41);
        options.miner.repositories = 30;
        options.measure_no_shim_ablation = true;
        let corpus = Corpus::build(&options);
        assert!(
            corpus.stats.discard_rate_with_shim <= corpus.stats.discard_rate_without_shim + 1e-9
        );
        assert!(corpus.stats.discard_rate_without_shim.is_finite());
    }

    #[test]
    fn corpus_wire_roundtrip() {
        let corpus = Corpus::build(&CorpusOptions::small(17));
        let mut enc = Encoder::new();
        corpus.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = Corpus::decode_from(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back.len(), corpus.len());
        assert_eq!(back.training_text(), corpus.training_text());
        assert_eq!(back.stats.corpus_kernels, corpus.stats.corpus_kernels);
        assert_eq!(
            back.stats.discard_rate_with_shim.to_bits(),
            corpus.stats.discard_rate_with_shim.to_bits()
        );
    }

    #[test]
    fn words_tokenizer() {
        assert_eq!(words("int x_1 = y;"), vec!["int", "x_1", "y"]);
        assert_eq!(words(""), Vec::<String>::new());
    }
}
