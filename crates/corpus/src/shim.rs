//! The shim header (Listing 1 of the paper).
//!
//! Isolating OpenCL device code from its host project leaves many common
//! project-specific type aliases and constants undefined; the paper found
//! that 50% of undeclared-identifier errors in the GitHub dataset were caused
//! by only 60 unique identifiers, and fixed them with a "shim" header of
//! inferred typedefs and constants. Injecting the shim reduced the discard
//! rate from 40% to 32%.
//!
//! This module provides the equivalent shim for our frontend: a header of
//! inferred type aliases and constants that the rejection filter includes
//! (virtually) before compiling each content file.

/// Name under which the shim is registered with the preprocessor.
pub const SHIM_INCLUDE_NAME: &str = "clgen-shim.h";

/// Inferred type aliases: (alias, underlying type).
pub const SHIM_TYPEDEFS: &[(&str, &str)] = &[
    ("FLOAT_T", "float"),
    ("FLOAT_TYPE", "float"),
    ("FPTYPE", "float"),
    ("DTYPE", "float"),
    ("DATA_TYPE", "float"),
    ("DATATYPE", "float"),
    ("VALUE_TYPE", "float"),
    ("real", "float"),
    ("real_t", "float"),
    ("REAL", "float"),
    ("Real", "float"),
    ("scalar_t", "float"),
    ("INDEX_TYPE", "unsigned int"),
    ("index_t", "unsigned int"),
    ("uint_t", "unsigned int"),
    ("int_t", "int"),
    ("T", "float"),
    ("TYPE", "float"),
    ("KEY_TYPE", "unsigned int"),
    ("VAL_TYPE", "float"),
    ("hmc_float", "float"),
    ("hmc_complex", "float2"),
    ("cl_float_t", "float"),
    ("elem_t", "float"),
    ("WeightType", "float"),
    ("node_t", "int"),
    ("edge_t", "int"),
    ("vertex_t", "int"),
    ("mask_t", "unsigned int"),
    ("cfloat", "float2"),
    ("Complex", "float2"),
    ("POSVECTYPE", "float4"),
    ("FORCEVECTYPE", "float4"),
    ("VECTYPE", "float4"),
    ("FLOAT4", "float4"),
    ("INT4", "int4"),
    ("UINT4", "uint4"),
    ("uchar_t", "uchar"),
    ("BitmapType", "unsigned int"),
];

/// Inferred constants: (name, value text).
pub const SHIM_CONSTANTS: &[(&str, &str)] = &[
    ("WG_SIZE", "128"),
    ("WGSIZE", "128"),
    ("WORKGROUP_SIZE", "128"),
    ("GROUP_SIZE", "128"),
    ("LOCAL_SIZE", "128"),
    ("LOCAL_WORK_SIZE", "128"),
    ("BLOCK_SIZE", "64"),
    ("BLOCKSIZE", "64"),
    ("BLOCK_DIM", "16"),
    ("BLOCK_X", "16"),
    ("BLOCK_Y", "16"),
    ("TILE_SIZE", "16"),
    ("TILE_DIM", "16"),
    ("TILE_WIDTH", "16"),
    ("WARP_SIZE", "32"),
    ("WAVE_SIZE", "64"),
    ("SIMD_WIDTH", "16"),
    ("VECTOR_SIZE", "4"),
    ("UNROLL_FACTOR", "4"),
    ("N", "1024"),
    ("NUM", "1024"),
    ("SIZE", "1024"),
    ("DATA_SIZE", "1024"),
    ("ARRAY_SIZE", "1024"),
    ("LENGTH", "1024"),
    ("WIDTH", "256"),
    ("HEIGHT", "256"),
    ("DEPTH", "64"),
    ("COLS", "256"),
    ("ROWS", "256"),
    ("RADIUS", "4"),
    ("STEPS", "16"),
    ("ITERATIONS", "16"),
    ("EPSILON", "1e-6f"),
    ("ALPHA", "1.5f"),
    ("BETA", "0.5f"),
    ("GAMMA", "0.9f"),
    ("OMEGA", "1.2f"),
    ("SCALE", "2.0f"),
    ("FACTOR", "2.0f"),
    ("THRESHOLD", "0.5f"),
    ("DELTA", "0.01f"),
    ("DT", "0.01f"),
    ("DX", "0.1f"),
    ("PI", "3.14159265f"),
    ("M_PI_VALUE", "3.14159265f"),
    ("TWOPI", "6.2831853f"),
    ("E_VALUE", "2.7182818f"),
    ("MAX_ITER", "256"),
    ("NUM_BINS", "256"),
    ("HISTOGRAM_SIZE", "256"),
    ("BINS", "256"),
    ("KERNEL_RADIUS", "3"),
    ("FILTER_SIZE", "7"),
    ("MASK_WIDTH", "5"),
    ("PADDING", "1"),
    ("OFFSET", "0"),
    ("STRIDE", "1"),
    ("BATCH", "4"),
    ("CHANNELS", "3"),
];

/// Render the shim header as preprocessable OpenCL C text.
pub fn shim_header() -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("/* CLgen shim: inferred types and constants for GitHub OpenCL code. */\n");
    out.push_str("#define cl_clang_storage_class_specifiers\n");
    out.push_str("#define cl_khr_fp64\n\n");
    out.push_str("/* Inferred types */\n");
    for (alias, ty) in SHIM_TYPEDEFS {
        out.push_str(&format!("typedef {ty} {alias};\n"));
    }
    out.push_str("\n/* Inferred constants */\n");
    for (name, value) in SHIM_CONSTANTS {
        out.push_str(&format!("#define {name} {value}\n"));
    }
    out
}

/// The list of identifier names the shim defines (types and constants).
pub fn shim_identifiers() -> Vec<&'static str> {
    SHIM_TYPEDEFS
        .iter()
        .map(|(alias, _)| *alias)
        .chain(SHIM_CONSTANTS.iter().map(|(name, _)| *name))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_frontend::{compile, CompileOptions, PreprocessOptions};

    #[test]
    fn shim_header_is_parseable() {
        let header = shim_header();
        let r = compile(&header, &CompileOptions::default());
        assert!(
            r.is_ok(),
            "shim header does not compile:\n{}",
            r.diagnostics
        );
    }

    #[test]
    fn shim_has_many_identifiers() {
        // The paper's shim covers 60 identifiers responsible for half of all
        // undeclared-identifier errors; ours is of comparable size.
        assert!(shim_identifiers().len() >= 60);
    }

    #[test]
    fn shim_fixes_undeclared_identifiers() {
        let src = "#include <clgen-shim.h>\n__kernel void A(__global FLOAT_T* a) { a[get_global_id(0)] = ALPHA * BLOCK_SIZE; }";
        let options = CompileOptions {
            preprocess: PreprocessOptions::new().include(SHIM_INCLUDE_NAME, &shim_header()),
            ..Default::default()
        };
        let r = compile(src, &options);
        assert!(r.is_ok(), "{}", r.diagnostics);
    }

    #[test]
    fn no_duplicate_shim_names() {
        let mut names = shim_identifiers();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate identifiers in shim");
    }
}
