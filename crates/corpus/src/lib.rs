//! # clgen-corpus
//!
//! The OpenCL language-corpus pipeline of the CLgen paper (§4.1): a synthetic
//! GitHub [`miner`], the inferred-identifier [`shim`] header, the rejection
//! [`filter`] (compile check + minimum static instruction count), the code
//! [`rewriter`] (macro expansion, comment removal, identifier normalisation,
//! canonical style) and [`corpus`] assembly with the statistics the paper
//! reports (discard rates, vocabulary reduction, corpus size). The
//! [`encoding`] module provides the character vocabulary used by the language
//! model, and [`kernelgen`] is the generator of human-style kernels that
//! stands in for GitHub-hosted code (see DESIGN.md for the substitution
//! rationale).
//!
//! ```
//! use clgen_corpus::{Corpus, CorpusOptions};
//!
//! let corpus = Corpus::build(&CorpusOptions::small(42));
//! assert!(corpus.len() > 0);
//! let text = corpus.training_text();
//! assert!(text.contains("__kernel"));
//! ```

#![warn(missing_docs)]

pub mod content;
pub mod corpus;
pub mod encoding;
pub mod filter;
pub mod kernelgen;
pub mod miner;
pub mod rewriter;
pub mod shim;

pub use content::{ContentFile, CorpusKernel, RejectReason};
pub use corpus::{Corpus, CorpusOptions, CorpusStats};
pub use encoding::Vocabulary;
pub use filter::{filter_source, FilterConfig, FilterStats, FilterVerdict};
pub use kernelgen::{generate_population, GeneratedKernel, KernelFamily};
pub use miner::{mine, MinerConfig};
pub use shim::shim_header;
