//! Character-level vocabulary and encoding for language modelling (§4.2).
//!
//! The paper trains a character-level LSTM over the corpus with a 1-of-K coded
//! vocabulary. This module builds that vocabulary from corpus text and
//! provides encode/decode between text and index sequences, plus the special
//! start/end-of-kernel markers used when assembling training batches.

use clgen_wire::{Decoder, Encoder, WireError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Index type for vocabulary entries.
pub type TokenId = u32;

/// A character vocabulary with a reserved padding/unknown entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocabulary {
    chars: Vec<char>,
    index: BTreeMap<char, TokenId>,
}

/// Id reserved for characters outside the vocabulary.
pub const UNKNOWN_ID: TokenId = 0;

impl Vocabulary {
    /// Build a vocabulary from a corpus text. Id 0 is reserved for unknown
    /// characters; all characters present in `text` get consecutive ids in
    /// sorted order (deterministic across runs).
    pub fn from_text(text: &str) -> Vocabulary {
        let mut set: Vec<char> = text.chars().collect();
        set.sort_unstable();
        set.dedup();
        Vocabulary::from_alphabet(set)
    }

    /// Rebuild a vocabulary from an explicit alphabet, **preserving its
    /// order**: `alphabet[i]` gets id `i + 1` (id 0 stays the unknown entry).
    /// This is the checkpoint-loading constructor — ids must match the
    /// vocabulary the model was trained with exactly, so the alphabet is
    /// *not* re-sorted or deduplicated.
    pub fn from_alphabet(alphabet: impl IntoIterator<Item = char>) -> Vocabulary {
        let mut chars = vec!['\u{FFFD}'];
        chars.extend(alphabet);
        let index = chars
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, c)| (*c, i as TokenId))
            .collect();
        Vocabulary { chars, index }
    }

    /// Append this vocabulary to a checkpoint (the alphabet in id order).
    pub fn encode_into(&self, enc: &mut Encoder) {
        let alphabet: String = self.chars[1..].iter().collect();
        enc.str(&alphabet);
    }

    /// Decode a vocabulary written by [`Vocabulary::encode_into`]. The
    /// decoded vocabulary assigns every character the same id it had when
    /// saved.
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<Vocabulary, WireError> {
        let alphabet = dec.str()?;
        Ok(Vocabulary::from_alphabet(alphabet.chars()))
    }

    /// Number of entries (including the unknown entry).
    pub fn len(&self) -> usize {
        self.chars.len()
    }

    /// True if the vocabulary only contains the unknown entry.
    pub fn is_empty(&self) -> bool {
        self.chars.len() <= 1
    }

    /// Encode a character.
    pub fn encode_char(&self, c: char) -> TokenId {
        self.index.get(&c).copied().unwrap_or(UNKNOWN_ID)
    }

    /// Decode an id back to a character (unknown ids decode to `\u{FFFD}`).
    pub fn decode_char(&self, id: TokenId) -> char {
        self.chars.get(id as usize).copied().unwrap_or('\u{FFFD}')
    }

    /// Encode a string into ids.
    pub fn encode(&self, text: &str) -> Vec<TokenId> {
        text.chars().map(|c| self.encode_char(c)).collect()
    }

    /// Decode a sequence of ids into a string (unknown ids are skipped).
    pub fn decode(&self, ids: &[TokenId]) -> String {
        ids.iter()
            .filter(|&&id| id != UNKNOWN_ID)
            .map(|&id| self.decode_char(id))
            .collect()
    }

    /// True if every character of `text` is representable.
    pub fn covers(&self, text: &str) -> bool {
        text.chars().all(|c| self.index.contains_key(&c))
    }

    /// All characters in the vocabulary (excluding the unknown slot).
    pub fn alphabet(&self) -> &[char] {
        &self.chars[1..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_encoding() {
        let text = "__kernel void A(__global float* a) {\n  a[0] = 1.0f;\n}\n";
        let vocab = Vocabulary::from_text(text);
        let ids = vocab.encode(text);
        assert_eq!(vocab.decode(&ids), text);
        assert!(vocab.covers(text));
    }

    #[test]
    fn unknown_characters_map_to_reserved_id() {
        let vocab = Vocabulary::from_text("abc");
        assert_eq!(vocab.encode_char('z'), UNKNOWN_ID);
        assert!(vocab.encode_char('a') != UNKNOWN_ID);
        assert!(!vocab.covers("xyz"));
    }

    #[test]
    fn vocabulary_is_deterministic_and_compact() {
        let a = Vocabulary::from_text("kernel kernel kernel");
        let b = Vocabulary::from_text("kernel kernel kernel");
        assert_eq!(a, b);
        // ' ', 'e', 'k', 'l', 'n', 'r' + unknown
        assert_eq!(a.len(), 7);
        assert_eq!(a.alphabet().len(), 6);
    }

    #[test]
    fn wire_roundtrip_preserves_every_id() {
        let text = "__kernel void A(__global float* a) {\n  a[0] = 1.0f;\n}\n";
        let vocab = Vocabulary::from_text(text);
        let mut enc = Encoder::new();
        vocab.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = Vocabulary::decode_from(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, vocab);
        for c in text.chars() {
            assert_eq!(back.encode_char(c), vocab.encode_char(c));
        }
    }

    #[test]
    fn opencl_corpus_vocabulary_is_small() {
        // A realistic rewritten corpus uses well under 100 distinct characters,
        // which keeps the softmax of the character LSTM small.
        let sample = "__kernel void A(__global float* a, const int b) {\n  int c = get_global_id(0);\n  if (c < b) {\n    a[c] = a[c] * 2.5f + 1.0f;\n  }\n}\n";
        let vocab = Vocabulary::from_text(sample);
        assert!(vocab.len() < 100);
    }
}
