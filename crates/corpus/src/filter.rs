//! The rejection filter (§4.1).
//!
//! "The rejection filter accepts as input a content file and returns whether
//! or not it contains compilable, executable OpenCL code. To do this we
//! attempt to compile the input [...] and perform static analysis to ensure a
//! minimum static instruction count of three."
//!
//! Our implementation compiles with the `cl-frontend` crate instead of the
//! NVIDIA PTX toolchain; the decision procedure and the shim-header mechanism
//! are the same.

use crate::content::{ContentFile, RejectReason};
use crate::shim::{shim_header, SHIM_INCLUDE_NAME};
use cl_frontend::error::DiagnosticKind;
use cl_frontend::{compile, CompileOptions, CompileResult, PreprocessOptions};
use std::collections::HashMap;

/// Configuration of the rejection filter.
#[derive(Debug, Clone)]
pub struct FilterConfig {
    /// Whether the shim header is injected before compilation.
    pub use_shim: bool,
    /// Minimum static instruction count a kernel must reach (the paper uses 3).
    pub min_instructions: usize,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            use_shim: true,
            min_instructions: 3,
        }
    }
}

impl FilterConfig {
    /// Filter configuration without the shim header (for the ablation in the
    /// corpus statistics experiment).
    pub fn without_shim() -> Self {
        FilterConfig {
            use_shim: false,
            min_instructions: 3,
        }
    }
}

/// The verdict of the rejection filter on one content file.
#[derive(Debug, Clone)]
pub struct FilterVerdict {
    /// `Ok(())` if accepted, otherwise the reason for rejection.
    pub decision: Result<(), RejectReason>,
    /// The frontend result (kept so downstream stages need not recompile).
    pub compile: CompileResult,
}

impl FilterVerdict {
    /// True if the content file was accepted.
    pub fn accepted(&self) -> bool {
        self.decision.is_ok()
    }
}

/// Compile options matching a filter configuration. The shim is also made
/// available as a virtual include so that files which explicitly
/// `#include <clgen-shim.h>` resolve it.
pub fn compile_options(config: &FilterConfig) -> CompileOptions {
    let mut pp = PreprocessOptions::new();
    if config.use_shim {
        pp = pp.include(SHIM_INCLUDE_NAME, &shim_header());
    }
    CompileOptions {
        preprocess: pp,
        extra_type_names: Vec::new(),
    }
}

/// Run the rejection filter on a single source text.
///
/// When the shim is enabled it is textually injected ahead of the content file
/// (the equivalent of the paper's forced `-include` of the shim header), so
/// project-specific aliases such as `FLOAT_T` or `WG_SIZE` resolve.
pub fn filter_source(source: &str, config: &FilterConfig) -> FilterVerdict {
    let options = compile_options(config);
    let input = if config.use_shim {
        format!("{}\n{}", shim_header(), source)
    } else {
        source.to_string()
    };
    let compile = compile(&input, &options);
    let decision = decide(&compile, config);
    FilterVerdict { decision, compile }
}

/// Run the rejection filter on a content file.
pub fn filter_content_file(file: &ContentFile, config: &FilterConfig) -> FilterVerdict {
    filter_source(&file.text, config)
}

fn decide(compile: &CompileResult, config: &FilterConfig) -> Result<(), RejectReason> {
    if compile.diagnostics.has_errors() {
        // Classify: if *all* error diagnostics are undeclared identifiers /
        // unknown types, the shim is the missing piece.
        let undeclared = compile
            .diagnostics
            .count_kind(DiagnosticKind::UndeclaredIdentifier)
            + compile.diagnostics.count_kind(DiagnosticKind::UnknownType);
        let total_errors = compile.diagnostics.error_count();
        if undeclared > 0 && undeclared == total_errors {
            return Err(RejectReason::UndeclaredIdentifiers);
        }
        return Err(RejectReason::CompileError);
    }
    if compile.kernels.is_empty() {
        return Err(RejectReason::NoKernel);
    }
    if compile.max_kernel_instructions() < config.min_instructions {
        return Err(RejectReason::TooFewInstructions);
    }
    Ok(())
}

/// Aggregate filtering statistics over a corpus of content files, reproducing
/// the discard-rate numbers of §4.1.
#[derive(Debug, Clone, Default)]
pub struct FilterStats {
    /// Total content files examined.
    pub total: usize,
    /// Files accepted.
    pub accepted: usize,
    /// Rejections by reason.
    pub rejected: HashMap<RejectReason, usize>,
    /// Undeclared identifier → number of files it appeared in (over rejected
    /// files only). Drives the "60 unique identifiers cause 50% of failures"
    /// analysis that motivated the shim.
    pub undeclared_identifiers: HashMap<String, usize>,
    /// Total source lines over accepted files.
    pub accepted_lines: usize,
}

impl FilterStats {
    /// Fraction of files discarded (0.0 - 1.0).
    pub fn discard_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            1.0 - self.accepted as f64 / self.total as f64
        }
    }

    /// Number of rejections with the given reason.
    pub fn rejected_because(&self, reason: RejectReason) -> usize {
        self.rejected.get(&reason).copied().unwrap_or(0)
    }
}

/// Run the rejection filter over a whole corpus and gather statistics.
pub fn filter_corpus(
    files: &[ContentFile],
    config: &FilterConfig,
) -> (Vec<(ContentFile, FilterVerdict)>, FilterStats) {
    let mut stats = FilterStats {
        total: files.len(),
        ..Default::default()
    };
    let mut results = Vec::with_capacity(files.len());
    for file in files {
        let verdict = filter_content_file(file, config);
        match verdict.decision {
            Ok(()) => {
                stats.accepted += 1;
                stats.accepted_lines += file.line_count();
            }
            Err(reason) => {
                *stats.rejected.entry(reason).or_insert(0) += 1;
                for name in verdict.compile.undeclared.keys() {
                    *stats
                        .undeclared_identifiers
                        .entry(name.clone())
                        .or_insert(0) += 1;
                }
            }
        }
        results.push((file.clone(), verdict));
    }
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::{mine, MinerConfig};

    #[test]
    fn accepts_valid_kernel() {
        let v = filter_source(
            "__kernel void A(__global float* a, const int n) { int i = get_global_id(0); if (i < n) { a[i] = a[i] * 2.0f; } }",
            &FilterConfig::default(),
        );
        assert!(v.accepted());
    }

    #[test]
    fn rejects_host_code() {
        let v = filter_source("int main() { return 0; }", &FilterConfig::default());
        assert!(!v.accepted());
    }

    #[test]
    fn rejects_no_kernel() {
        let v = filter_source(
            "inline float sq(float x) { return x * x; }",
            &FilterConfig::default(),
        );
        assert_eq!(v.decision, Err(RejectReason::NoKernel));
    }

    #[test]
    fn rejects_trivial_kernel() {
        let v = filter_source(
            "__kernel void A(__global float* a) { }",
            &FilterConfig::default(),
        );
        assert_eq!(v.decision, Err(RejectReason::TooFewInstructions));
    }

    #[test]
    fn shim_rescues_project_typedefs() {
        let src = "__kernel void A(__global FLOAT_T* data, const int n) { int i = get_global_id(0); if (i < n) { data[i] = data[i] * 2.0f + WG_SIZE; } }";
        let without = filter_source(src, &FilterConfig::without_shim());
        let with = filter_source(src, &FilterConfig::default());
        assert!(!without.accepted());
        assert_eq!(without.decision, Err(RejectReason::UndeclaredIdentifiers));
        assert!(with.accepted(), "{}", with.compile.diagnostics);
    }

    #[test]
    fn shim_does_not_rescue_unknown_identifiers() {
        let src = "__kernel void A(__global float* data) { data[get_global_id(0)] = MY_PROJECT_EPS * 2.0f; }";
        let with = filter_source(src, &FilterConfig::default());
        assert!(!with.accepted());
    }

    #[test]
    fn corpus_discard_rates_match_paper_shape() {
        // Paper: 40% discarded without the shim, 32% with it. We check the
        // qualitative shape on a moderately sized synthetic corpus: the shim
        // strictly reduces the discard rate and both rates are in a plausible
        // band around the paper's numbers.
        let files = mine(&MinerConfig {
            repositories: 100,
            files_per_repo: (1, 4),
            seed: 77,
        });
        let (_, with_shim) = filter_corpus(&files, &FilterConfig::default());
        let (_, without_shim) = filter_corpus(&files, &FilterConfig::without_shim());
        assert!(
            with_shim.discard_rate() < without_shim.discard_rate(),
            "shim should reduce the discard rate: {} vs {}",
            with_shim.discard_rate(),
            without_shim.discard_rate()
        );
        assert!(
            without_shim.discard_rate() > 0.25 && without_shim.discard_rate() < 0.55,
            "without-shim discard rate {} out of expected band",
            without_shim.discard_rate()
        );
        assert!(
            with_shim.discard_rate() > 0.15 && with_shim.discard_rate() < 0.45,
            "with-shim discard rate {} out of expected band",
            with_shim.discard_rate()
        );
    }

    #[test]
    fn undeclared_identifier_statistics_collected() {
        let files = mine(&MinerConfig {
            repositories: 80,
            files_per_repo: (2, 4),
            seed: 3,
        });
        let (_, stats) = filter_corpus(&files, &FilterConfig::without_shim());
        assert!(
            !stats.undeclared_identifiers.is_empty(),
            "expected undeclared identifiers to be recorded"
        );
    }
}
