//! Synthetic GitHub miner.
//!
//! The paper's search engine scrapes GitHub for files that *potentially*
//! contain OpenCL device code, yielding a noisy dataset: device code tangled
//! with host code, heavy macro use, project-specific type aliases that are
//! undefined once the device code is isolated, files with no kernels, and
//! files whose kernels are trivially small. This module generates a corpus of
//! raw [`ContentFile`]s with the same mix of pathologies so that the rejection
//! filter, shim header and code rewriter operate on realistic input.
//!
//! The pathology rates are chosen so that the headline corpus statistics of
//! §4.1 are reproduced: roughly 40% of files are discarded without the shim
//! and roughly 32% with it.

use crate::content::ContentFile;
use crate::kernelgen::{self, KernelGenConfig, NamingStyle};
use crate::shim;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration for the synthetic miner.
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// Number of synthetic repositories to "mine".
    pub repositories: usize,
    /// Minimum and maximum number of content files per repository.
    pub files_per_repo: (usize, usize),
    /// RNG seed (the miner is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for MinerConfig {
    fn default() -> Self {
        // Defaults scaled down from the paper's 793 repositories / 8078 files
        // to keep experiment turnaround on a laptop reasonable.
        MinerConfig {
            repositories: 120,
            files_per_repo: (1, 8),
            seed: 0xC161,
        }
    }
}

impl MinerConfig {
    /// A small configuration for unit tests.
    pub fn small(seed: u64) -> Self {
        MinerConfig {
            repositories: 12,
            files_per_repo: (1, 4),
            seed,
        }
    }
}

/// The kind of content a synthetic file holds. Weights approximate the mix the
/// paper describes for GitHub-scraped OpenCL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FileKind {
    /// Clean standalone device code.
    CleanKernels,
    /// Device code that relies on project-specific typedefs/constants which
    /// the shim header can supply.
    NeedsShim,
    /// Device code that relies on identifiers even the shim does not define.
    NeedsUnknownIdentifiers,
    /// Host-side OpenCL C/C++ code wrongly picked up by the scraper.
    HostCode,
    /// A header-like file with declarations but no kernel definition.
    NoKernel,
    /// Kernels that compile but are trivially small.
    TrivialKernel,
    /// Device code truncated mid-file (e.g. bad download).
    Truncated,
}

fn pick_kind(rng: &mut StdRng) -> FileKind {
    // Tuned so that ~40% of files are rejected without the shim and ~32% with
    // it (the shim rescues the `NeedsShim` class, ~8% of files).
    let roll = rng.gen_range(0..100);
    match roll {
        0..=59 => FileKind::CleanKernels,
        60..=67 => FileKind::NeedsShim,
        68..=74 => FileKind::NeedsUnknownIdentifiers,
        75..=82 => FileKind::HostCode,
        83..=89 => FileKind::NoKernel,
        90..=95 => FileKind::TrivialKernel,
        _ => FileKind::Truncated,
    }
}

/// Mine a synthetic corpus of raw content files.
pub fn mine(config: &MinerConfig) -> Vec<ContentFile> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut files = Vec::new();
    for repo_idx in 0..config.repositories {
        let repo = format!("github.com/user{:03}/{}", repo_idx, repo_name(&mut rng));
        let project_style = match rng.gen_range(0..4) {
            0 => NamingStyle::Snake,
            1 => NamingStyle::Camel,
            2 => NamingStyle::Terse,
            _ => NamingStyle::Prefixed,
        };
        let n_files = rng.gen_range(config.files_per_repo.0..=config.files_per_repo.1);
        for file_idx in 0..n_files {
            let kind = pick_kind(&mut rng);
            let text = render_file(&mut rng, kind, project_style);
            let path = format!("{}/{}", dir_name(&mut rng), file_name(&mut rng, file_idx));
            files.push(ContentFile::new(repo.clone(), path, text));
        }
    }
    files
}

fn repo_name(rng: &mut StdRng) -> String {
    let adjectives = [
        "fast", "parallel", "tiny", "open", "gpu", "hetero", "turbo", "deep", "sparse",
    ];
    let nouns = [
        "solver", "bench", "fluid", "nn", "cl-kit", "raytrace", "miner", "dsp", "sim", "linalg",
    ];
    format!(
        "{}-{}",
        adjectives[rng.gen_range(0..adjectives.len())],
        nouns[rng.gen_range(0..nouns.len())]
    )
}

fn dir_name(rng: &mut StdRng) -> String {
    let dirs = [
        "src",
        "kernels",
        "cl",
        "opencl",
        "src/device",
        "gpu",
        "lib/kernels",
    ];
    dirs[rng.gen_range(0..dirs.len())].to_string()
}

fn file_name(rng: &mut StdRng, idx: usize) -> String {
    let stems = [
        "kernels", "compute", "device", "math", "core", "ops", "physics", "filters",
    ];
    let ext = if rng.gen_bool(0.85) { "cl" } else { "ocl" };
    format!("{}_{idx}.{ext}", stems[rng.gen_range(0..stems.len())])
}

fn render_file(rng: &mut StdRng, kind: FileKind, naming: NamingStyle) -> String {
    match kind {
        FileKind::CleanKernels => render_clean(rng, naming, false, false),
        FileKind::NeedsShim => render_clean(rng, naming, true, false),
        FileKind::NeedsUnknownIdentifiers => render_clean(rng, naming, false, true),
        FileKind::HostCode => render_host_code(rng),
        FileKind::NoKernel => render_header_only(rng),
        FileKind::TrivialKernel => render_trivial(rng, naming),
        FileKind::Truncated => {
            let full = render_clean(rng, naming, false, false);
            let cut = full.len() * rng.gen_range(30..70usize) / 100;
            full[..cut].to_string()
        }
    }
}

/// Render a file of 1-4 kernels with repository-level noise. When
/// `use_shim_idents` is set, data types / workgroup constants are spelled with
/// shim-covered identifiers *without* defining them (they were defined in the
/// host project). When `use_unknown_idents` is set, identifiers that not even
/// the shim covers are used.
fn render_clean(
    rng: &mut StdRng,
    naming: NamingStyle,
    use_shim_idents: bool,
    use_unknown_idents: bool,
) -> String {
    let mut out = String::new();
    if rng.gen_bool(0.4) {
        out.push_str(license_header(rng));
    }
    if rng.gen_bool(0.5) {
        out.push_str("#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n\n");
    }
    // project-local macros, sometimes used below
    let defines_own_macros = rng.gen_bool(0.35) && !use_shim_idents;
    if defines_own_macros {
        out.push_str("#define BLOCK 64\n#define SCALE_FACTOR 1.5f\n\n");
    }
    let elem_type: &'static str = if use_shim_idents {
        ["FLOAT_T", "DTYPE", "real_t", "VALUE_TYPE"][rng.gen_range(0..4usize)]
    } else if rng.gen_bool(0.85) {
        "float"
    } else {
        "int"
    };
    let n_kernels = rng.gen_range(1..=4);
    let config = KernelGenConfig {
        naming,
        elem_type: "float",
        guard_probability: 0.7,
    };
    for i in 0..n_kernels {
        if rng.gen_bool(0.5) {
            out.push_str(comment_block(rng));
        }
        let mut kernel = kernelgen::generate_kernel(rng, &config).source;
        // Re-spell the float element type with the project alias if needed.
        if use_shim_idents || elem_type != "float" {
            kernel = kernel.replace("__global float*", &format!("__global {elem_type}*"));
            kernel = kernel.replace("__local float*", &format!("__local {elem_type}*"));
        }
        if use_shim_idents && rng.gen_bool(0.6) {
            // Reference a workgroup-size constant assumed to come from the host build.
            let constant =
                ["WG_SIZE", "BLOCK_SIZE", "TILE_SIZE", "LOCAL_SIZE"][rng.gen_range(0..4usize)];
            kernel = kernel.replace("get_local_size(0)", constant);
        }
        if use_unknown_idents && i == 0 {
            // An identifier neither defined locally nor covered by the shim.
            let unknown = [
                "NUM_PARTICLES_PER_CELL",
                "kSimulationRate",
                "g_solver_params",
                "MY_PROJECT_EPS",
            ][rng.gen_range(0..4usize)];
            kernel = kernel.replace(
                "get_global_id(0);",
                &format!("get_global_id(0) + {unknown};"),
            );
        }
        out.push_str(&kernel);
        out.push('\n');
    }
    out
}

fn render_host_code(rng: &mut StdRng) -> String {
    let variant = rng.gen_range(0..3);
    match variant {
        0 => "#include <CL/cl.h>\n#include <stdio.h>\n\nint main(int argc, char** argv) {\n  cl_platform_id platform;\n  clGetPlatformIDs(1, &platform, NULL);\n  printf(\"platforms: %d\\n\", 1);\n  return 0;\n}\n".to_string(),
        1 => "// OpenCL host wrapper\n#include <vector>\n#include <string>\n\nclass DeviceContext {\n public:\n  DeviceContext() : ready_(false) {}\n  bool init(const std::string& name);\n private:\n  bool ready_;\n};\n".to_string(),
        _ => "const char* kernel_source = \"__kernel void A(__global float* a) { a[0] = 1.0f; }\";\n\nstatic int build_program(void* ctx) {\n  /* builds the embedded kernel string */\n  return ctx != 0;\n}\n".to_string(),
    }
}

fn render_header_only(rng: &mut StdRng) -> String {
    let variant = rng.gen_range(0..2);
    if variant == 0 {
        "/* common device declarations */\n#ifndef COMMON_CL_H\n#define COMMON_CL_H\n\ntypedef float scalar_t;\n#define MAX_NEIGHBOURS 27\n\nfloat3 wrap_position(float3 p, float3 box);\n\n#endif\n".to_string()
    } else {
        "// Utility functions shared by kernels\ninline float squared(float x) { return x * x; }\ninline float cube(float x) { return x * x * x; }\n".to_string()
    }
}

fn render_trivial(rng: &mut StdRng, _naming: NamingStyle) -> String {
    let variant = rng.gen_range(0..3);
    match variant {
        0 => "__kernel void noop(__global float* data) {\n}\n".to_string(),
        1 => "__kernel void set_flag(__global int* flag) {\n  *flag = 1;\n}\n".to_string(),
        _ => "// placeholder kernel, to be implemented\n__kernel void todo(__global float* out) {\n  out[0] = 0.0f;\n}\n".to_string(),
    }
}

fn license_header(rng: &mut StdRng) -> &'static str {
    const HEADERS: &[&str] = &[
        "/*\n * Copyright (c) 2014 The Project Authors.\n * Licensed under the MIT license.\n */\n\n",
        "// SPDX-License-Identifier: Apache-2.0\n// Part of the compute kernels module.\n\n",
        "/*==============================\n  Device kernels\n  Author: research group\n ==============================*/\n\n",
    ];
    HEADERS[rng.gen_range(0..HEADERS.len())]
}

fn comment_block(rng: &mut StdRng) -> &'static str {
    const COMMENTS: &[&str] = &[
        "// Process one element per work item.\n",
        "/* The work-group size must divide the problem size. */\n",
        "// TODO: vectorise this loop\n",
        "/** Computes the per-element update used by the outer solver loop. */\n",
        "// NB: assumes row-major layout\n",
    ];
    COMMENTS[rng.gen_range(0..COMMENTS.len())]
}

/// Summary statistics of a mined corpus, mirroring the numbers reported in
/// §4.1 of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MiningStats {
    /// Number of repositories mined.
    pub repositories: usize,
    /// Number of content files.
    pub files: usize,
    /// Total lines across all content files.
    pub lines: usize,
}

/// Compute corpus-level statistics for a set of content files.
pub fn mining_stats(files: &[ContentFile]) -> MiningStats {
    let mut repos: Vec<&str> = files.iter().map(|f| f.repository.as_str()).collect();
    repos.sort_unstable();
    repos.dedup();
    MiningStats {
        repositories: repos.len(),
        files: files.len(),
        lines: files.iter().map(ContentFile::line_count).sum(),
    }
}

/// Convenience: the shim identifiers most often needed by mined files. Used in
/// corpus statistics to show which aliases the shim actually rescues.
pub fn shim_alias_pool() -> Vec<&'static str> {
    shim::shim_identifiers()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mining_is_deterministic() {
        let a = mine(&MinerConfig::small(9));
        let b = mine(&MinerConfig::small(9));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.repository, y.repository);
        }
    }

    #[test]
    fn mining_produces_requested_scale() {
        let config = MinerConfig {
            repositories: 20,
            files_per_repo: (1, 5),
            seed: 1,
        };
        let files = mine(&config);
        let stats = mining_stats(&files);
        assert_eq!(stats.repositories, 20);
        assert!(stats.files >= 20);
        assert!(stats.files <= 100);
        assert!(stats.lines > 200);
    }

    #[test]
    fn corpus_contains_noise_and_signal() {
        let files = mine(&MinerConfig {
            repositories: 60,
            files_per_repo: (2, 5),
            seed: 5,
        });
        let with_kernel = files.iter().filter(|f| f.text.contains("__kernel")).count();
        let with_comments = files
            .iter()
            .filter(|f| f.text.contains("//") || f.text.contains("/*"))
            .count();
        let host_code = files
            .iter()
            .filter(|f| f.text.contains("int main") || f.text.contains("class "))
            .count();
        assert!(
            with_kernel > files.len() / 2,
            "most files should contain kernels"
        );
        assert!(
            with_comments > files.len() / 4,
            "comments should be present"
        );
        assert!(host_code > 0, "some host code should be mis-scraped");
    }

    #[test]
    fn some_files_need_the_shim() {
        let files = mine(&MinerConfig {
            repositories: 80,
            files_per_repo: (2, 5),
            seed: 11,
        });
        let needs_shim = files
            .iter()
            .filter(|f| {
                f.text.contains("FLOAT_T") || f.text.contains("DTYPE") || f.text.contains("WG_SIZE")
            })
            .count();
        assert!(
            needs_shim > 0,
            "shim-dependent files should appear in the corpus"
        );
    }
}
