//! The code rewriting stage of the corpus pipeline (§4.1).
//!
//! For each accepted content file this stage:
//!
//! 1. pre-processes the source (macros expanded, comments and conditional
//!    compilation removed),
//! 2. rewrites identifiers into the compact `a, b, c... / A, B, C...` series,
//!    preserving language built-ins,
//! 3. re-prints the code in a single canonical style, and
//! 4. splits the file into per-kernel corpus entries: each entry is one
//!    `__kernel` function plus the typedefs, globals and helper functions it
//!    (transitively) references, so every corpus entry compiles standalone.

use crate::content::{ContentFile, CorpusKernel};
use crate::filter::{filter_content_file, FilterConfig, FilterVerdict};
use cl_frontend::analyze_kernels;
use cl_frontend::ast::{Item, TranslationUnit};
use cl_frontend::printer::print_unit;
use cl_frontend::rewrite::rewrite_identifiers;

/// The result of rewriting one content file.
#[derive(Debug, Clone)]
pub struct RewrittenFile {
    /// Per-kernel corpus entries extracted from the file.
    pub kernels: Vec<CorpusKernel>,
    /// Number of source lines before rewriting (raw content file).
    pub lines_before: usize,
    /// Number of source lines after rewriting (sum over extracted kernels).
    pub lines_after: usize,
}

/// Rewrite one already-accepted content file into corpus kernels.
///
/// `verdict` must come from [`filter_content_file`] with the same
/// configuration; its compile result is reused to avoid recompiling.
pub fn rewrite_file(file: &ContentFile, verdict: &FilterVerdict) -> RewrittenFile {
    let unit = verdict.compile.unit.clone();
    rewrite_unit_to_kernels(unit, &file.repository, file.line_count())
}

/// Names a prelude item introduces (used for the reachability pass).
fn item_names(item: &Item) -> Vec<String> {
    match item {
        Item::Function(f) => vec![f.name.clone()],
        Item::Typedef { name, .. } => vec![name.clone()],
        Item::Struct(s) => vec![s.name.clone()],
        Item::GlobalVar(d) => d.vars.iter().map(|v| v.name.clone()).collect(),
    }
}

/// Whole-word occurrence check (identifiers only).
fn contains_word(haystack: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return false;
    }
    let bytes = haystack.as_bytes();
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let begin = start + pos;
        let end = begin + needle.len();
        let before_ok =
            begin == 0 || !(bytes[begin - 1].is_ascii_alphanumeric() || bytes[begin - 1] == b'_');
        let after_ok =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if before_ok && after_ok {
            return true;
        }
        start = end;
    }
    false
}

/// Rewrite an arbitrary translation unit into per-kernel corpus entries.
pub fn rewrite_unit_to_kernels(
    mut unit: TranslationUnit,
    repository: &str,
    lines_before: usize,
) -> RewrittenFile {
    rewrite_identifiers(&mut unit);
    // Candidate prelude items (everything that is not a kernel definition),
    // pre-printed for the textual reachability pass.
    let prelude: Vec<(Vec<String>, Item, String)> = unit
        .items
        .iter()
        .filter(|item| match item {
            Item::Function(f) => !f.is_kernel && f.is_definition(),
            Item::Typedef { .. } | Item::Struct(_) | Item::GlobalVar(_) => true,
        })
        .map(|item| {
            let mut single = TranslationUnit::default();
            single.items.push(item.clone());
            (item_names(item), item.clone(), print_unit(&single))
        })
        .collect();
    let counts = analyze_kernels(&unit);
    let mut kernels = Vec::new();
    let mut lines_after = 0;
    for item in &unit.items {
        let Item::Function(f) = item else { continue };
        if !f.is_kernel || !f.is_definition() {
            continue;
        }
        let kernel_text = {
            let mut single = TranslationUnit::default();
            single.items.push(Item::Function(f.clone()));
            print_unit(&single)
        };
        // Reachability: include a prelude item if any of its names occur in the
        // kernel text or in the text of an already-included prelude item.
        let mut included = vec![false; prelude.len()];
        let mut reachable_text = kernel_text.clone();
        loop {
            let mut changed = false;
            for (idx, (names, _, text)) in prelude.iter().enumerate() {
                if included[idx] {
                    continue;
                }
                if names.iter().any(|n| contains_word(&reachable_text, n)) {
                    included[idx] = true;
                    reachable_text.push_str(text);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut mini = TranslationUnit::default();
        for (idx, (_, item, _)) in prelude.iter().enumerate() {
            if included[idx] {
                mini.items.push(item.clone());
            }
        }
        mini.items.push(Item::Function(f.clone()));
        let source = print_unit(&mini);
        lines_after += source.lines().count();
        let instructions = counts
            .iter()
            .find(|(name, _)| name == &f.name)
            .map(|(_, c)| c.instructions)
            .unwrap_or(0);
        kernels.push(CorpusKernel {
            source,
            repository: repository.to_string(),
            instructions,
        });
    }
    RewrittenFile {
        kernels,
        lines_before,
        lines_after,
    }
}

/// Run filter + rewrite over one content file. Returns `None` if the file is
/// rejected.
pub fn process_content_file(file: &ContentFile, config: &FilterConfig) -> Option<RewrittenFile> {
    let verdict = filter_content_file(file, config);
    if !verdict.accepted() {
        return None;
    }
    Some(rewrite_file(file, &verdict))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(text: &str) -> ContentFile {
        ContentFile::new("github.com/test/repo", "kernels.cl", text)
    }

    #[test]
    fn rewrites_single_kernel_file() {
        let f = file(
            "// comment\n#define SCALE 2.0f\n__kernel void multiply(__global float* data, const int count) {\n  int tid = get_global_id(0);\n  if (tid < count) { data[tid] *= SCALE; }\n}\n",
        );
        let config = FilterConfig::default();
        let out = process_content_file(&f, &config).expect("file should be accepted");
        assert_eq!(out.kernels.len(), 1);
        let src = &out.kernels[0].source;
        assert!(src.contains("__kernel void"), "{src}");
        assert!(!src.contains("SCALE"), "macro should be expanded: {src}");
        assert!(!src.contains("tid"), "identifiers should be renamed: {src}");
        assert!(!src.contains("//"), "comments should be stripped: {src}");
        assert!(out.kernels[0].instructions >= 3);
    }

    #[test]
    fn splits_multi_kernel_file_and_stays_self_contained() {
        let f = file(
            "inline float sq(float x) { return x * x; }\n\
             __kernel void first(__global float* a) { a[get_global_id(0)] = sq(a[get_global_id(0)]); }\n\
             __kernel void second(__global float* b, const int n) { int i = get_global_id(0); if (i < n) { b[i] = b[i] + 1.0f; } }\n",
        );
        let out = process_content_file(&f, &FilterConfig::default()).expect("accepted");
        assert_eq!(out.kernels.len(), 2);
        // The helper is pulled into the kernel that uses it, and only that one.
        let uses_helper: Vec<bool> = out
            .kernels
            .iter()
            .map(|k| k.source.contains("inline float"))
            .collect();
        assert_eq!(uses_helper.iter().filter(|b| **b).count(), 1, "{out:?}");
        for k in &out.kernels {
            let check = cl_frontend::parse_and_check(&k.source);
            assert!(
                check.is_ok(),
                "corpus kernel is not self-contained:\n{}",
                k.source
            );
        }
    }

    #[test]
    fn shim_typedefs_only_included_when_referenced() {
        let f = file(
            "__kernel void scale(__global FLOAT_T* data, const int n) {\n  int i = get_global_id(0);\n  if (i < n) { data[i] = data[i] * 2.0f + WG_SIZE; }\n}\n",
        );
        let out = process_content_file(&f, &FilterConfig::default()).expect("accepted with shim");
        assert_eq!(out.kernels.len(), 1);
        let src = &out.kernels[0].source;
        // WG_SIZE is a macro and is expanded; FLOAT_T is a typedef which is
        // renamed and kept, but the 37 other shim typedefs must not leak in.
        assert!(
            !src.contains("WG_SIZE"),
            "constants should be macro-expanded:\n{src}"
        );
        assert!(
            !src.contains("INDEX_TYPE"),
            "unreferenced shim typedef leaked:\n{src}"
        );
        assert!(
            src.matches("typedef").count() <= 2,
            "too many typedefs leaked:\n{src}"
        );
        let check = cl_frontend::parse_and_check(src);
        assert!(check.is_ok(), "corpus kernel is not self-contained:\n{src}");
    }

    #[test]
    fn rejected_files_return_none() {
        let f = file("int main() { return 0; }");
        assert!(process_content_file(&f, &FilterConfig::default()).is_none());
    }

    #[test]
    fn rewriting_reduces_size() {
        let f = file(
            "/* A long license header\n * spanning several lines\n * with lots of text.\n */\n\n\
             // Element-wise vector addition with verbose names.\n\
             __kernel void vector_addition_kernel(__global float* first_input_vector, __global float* second_input_vector, __global float* output_result_vector, const int number_of_elements) {\n\
                int global_thread_index = get_global_id(0);\n\
                if (global_thread_index < number_of_elements) {\n\
                    output_result_vector[global_thread_index] = first_input_vector[global_thread_index] + second_input_vector[global_thread_index];\n\
                }\n\
             }\n",
        );
        let out = process_content_file(&f, &FilterConfig::default()).expect("accepted");
        let total_chars: usize = out.kernels.iter().map(|k| k.source.len()).sum();
        assert!(
            total_chars < f.text.len(),
            "rewritten corpus should be smaller than the raw file"
        );
    }

    #[test]
    fn contains_word_is_boundary_aware() {
        assert!(contains_word("float T0 = x;", "T0"));
        assert!(!contains_word("float T01 = x;", "T0"));
        assert!(!contains_word("floatT0", "T0"));
        assert!(contains_word("a(T0)", "T0"));
    }
}
