//! Table 1: performance of the Grewe et al. model relative to the oracle when
//! trained on one benchmark suite and tested on another (AMD platform).
//!
//! The paper's headline observation — heuristics learned on one suite fail to
//! generalise to other suites — should reproduce in shape: the off-diagonal
//! entries are far from 100%, with wide variation.

use cldrive::Platform;
use experiments::{build_suite_dataset, print_table, DatasetConfig};
use grewe_features::FeatureSet;
use predictive::{cross_suite, TreeConfig};
use suites::Suite;

fn main() {
    let platform = Platform::amd();
    let config = DatasetConfig {
        feature_set: FeatureSet::Grewe,
        ..Default::default()
    };
    eprintln!("building suite dataset on the AMD platform...");
    let dataset = build_suite_dataset(&platform, &config);
    eprintln!(
        "dataset: {} examples over {} suites",
        dataset.len(),
        dataset.suites().len()
    );

    let suite_names: Vec<String> = Suite::all()
        .iter()
        .map(|s| s.short_name().to_string())
        .collect();
    let mut headers: Vec<&str> = vec!["train \\ test"];
    let header_strings: Vec<String> = suite_names.clone();
    headers.extend(header_strings.iter().map(String::as_str));

    let tree = TreeConfig::default();
    let mut rows = Vec::new();
    let mut off_diagonal = Vec::new();
    for train in &suite_names {
        let mut row = vec![train.clone()];
        for test in &suite_names {
            if train == test {
                row.push("-".into());
                continue;
            }
            match cross_suite(&dataset, train, test, &tree) {
                Some(metrics) => {
                    let perf = metrics.performance_vs_oracle();
                    off_diagonal.push(perf);
                    row.push(format!("{:.1}%", perf * 100.0));
                }
                None => row.push("n/a".into()),
            }
        }
        rows.push(row);
    }
    print_table(
        "Table 1: cross-suite performance relative to the oracle (AMD GPU)",
        &headers,
        &rows,
    );
    if !off_diagonal.is_empty() {
        let mean = off_diagonal.iter().sum::<f64>() / off_diagonal.len() as f64;
        let min = off_diagonal.iter().cloned().fold(f64::INFINITY, f64::min);
        println!("\nOff-diagonal mean: {:.1}% (paper: ~40-50% typical), worst case {:.1}% (paper: 11.5%).", mean * 100.0, min * 100.0);
        println!("Cross-suite training leaves large fractions of the optimal performance on the table, as in the paper.");
    }
}
