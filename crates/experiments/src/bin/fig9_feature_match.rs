//! Figure 9: the number of kernels whose static code features exactly match a
//! benchmark kernel, as a function of how many kernels are taken from each
//! source (GitHub-style corpus, CLSmith, CLgen).
//!
//! The paper finds that more than a third of 10,000 CLgen kernels match a
//! benchmark's static features while only 0.53% of CLSmith kernels do, and
//! the GitHub corpus is finite. The reproduction checks the ordering
//! CLgen >> CLSmith and CLgen ~ GitHub at equal counts.

use clgen::{ArgumentSpec, ClgenBuilder, SamplerConfig};
use clsmith::ClsmithConfig;
use experiments::{data::static_features_of_sources, print_table, scaled, SyntheticConfig};
use std::collections::HashSet;
use suites::all_benchmarks;

fn match_count(
    features: &[grewe_features::StaticFeatures],
    benchmark_keys: &HashSet<(u64, u64, u64, u64, u64)>,
) -> usize {
    features
        .iter()
        .filter(|f| benchmark_keys.contains(&f.match_key_with_branches()))
        .count()
}

fn main() {
    // Static feature keys (including the branch feature, §8.3) of the benchmarks.
    let benchmark_sources: Vec<String> =
        all_benchmarks().iter().map(|b| b.source.clone()).collect();
    let benchmark_features =
        static_features_of_sources(benchmark_sources.iter().map(String::as_str));
    let benchmark_keys: HashSet<_> = benchmark_features
        .iter()
        .map(|f| f.match_key_with_branches())
        .collect();
    eprintln!(
        "{} benchmark kernels, {} distinct feature keys",
        benchmark_features.len(),
        benchmark_keys.len()
    );

    let total = scaled(1000, 100);
    let checkpoints: Vec<usize> = vec![total / 10, total / 4, total / 2, total];

    // CLgen kernels, through the staged pipeline.
    let synth_config = SyntheticConfig::default();
    let stage = ClgenBuilder::with_options(synth_config.clgen.clone())
        .build_corpus()
        .expect("corpus construction failed");
    let model = stage.train().expect("model training failed");
    eprintln!("sampling {total} CLgen kernels...");
    let sampler = model.sampler(
        SamplerConfig::new(synth_config.clgen.seed)
            .with_spec(ArgumentSpec::paper_default())
            .with_sample(synth_config.clgen.sample)
            .with_max_attempts(total * 30),
    );
    let clgen_report = sampler.synthesize(total);
    let clgen_features =
        static_features_of_sources(clgen_report.kernels.iter().map(|k| k.source.as_str()));

    // CLSmith kernels.
    eprintln!("generating {total} CLSmith kernels...");
    let clsmith_kernels = clsmith::generate_population(0xC15, total, &ClsmithConfig::default());
    let clsmith_features =
        static_features_of_sources(clsmith_kernels.iter().map(|k| k.source.as_str()));

    // "GitHub" corpus kernels (the synthetic miner population, rewritten).
    eprintln!("building GitHub-style corpus...");
    let github_features = static_features_of_sources(stage.corpus().sources());

    let mut rows = Vec::new();
    for &n in &checkpoints {
        let clgen_n = match_count(
            &clgen_features[..n.min(clgen_features.len())],
            &benchmark_keys,
        );
        let clsmith_n = match_count(
            &clsmith_features[..n.min(clsmith_features.len())],
            &benchmark_keys,
        );
        let github_n = match_count(
            &github_features[..n.min(github_features.len())],
            &benchmark_keys,
        );
        rows.push(vec![
            n.to_string(),
            format!(
                "{github_n} ({} kernels available)",
                github_features.len().min(n)
            ),
            clsmith_n.to_string(),
            clgen_n.to_string(),
        ]);
    }
    print_table(
        "Figure 9: kernels with static features matching a benchmark, by source",
        &["#kernels sampled", "GitHub", "CLSmith", "CLgen"],
        &rows,
    );
    let clgen_rate =
        match_count(&clgen_features, &benchmark_keys) as f64 / clgen_features.len().max(1) as f64;
    let clsmith_rate = match_count(&clsmith_features, &benchmark_keys) as f64
        / clsmith_features.len().max(1) as f64;
    println!(
        "\nMatch rates: CLgen {:.1}%, CLSmith {:.2}% (paper: >33% vs 0.53%).",
        clgen_rate * 100.0,
        clsmith_rate * 100.0
    );
    println!(
        "GitHub corpus is finite ({} kernels); CLgen sampling is unbounded.",
        github_features.len()
    );
}
