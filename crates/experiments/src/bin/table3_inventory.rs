//! Table 3: the benchmark inventory (suites, benchmark counts, kernel counts).
//!
//! The paper uses 71 benchmarks / 256 kernels from the seven suites; this
//! reproduction ships a reduced-but-representative population (see DESIGN.md),
//! and this binary prints the actual inventory so EXPERIMENTS.md can record
//! the paper-vs-reproduction comparison.

use experiments::print_table;
use suites::{inventory, NPB_CLASSES};

fn main() {
    let inv = inventory();
    let rows: Vec<Vec<String>> = inv
        .iter()
        .map(|(suite, benchmarks, kernels)| {
            vec![
                suite.short_name().to_string(),
                benchmarks.to_string(),
                kernels.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 3: benchmark inventory (this reproduction)",
        &["suite", "#benchmarks", "#kernels"],
        &rows,
    );
    let total_b: usize = inv.iter().map(|(_, b, _)| b).sum();
    let total_k: usize = inv.iter().map(|(_, _, k)| k).sum();
    println!(
        "\nTotal: {total_b} benchmarks, {total_k} kernels (paper: 71 benchmarks, 256 kernels)."
    );
    println!(
        "NPB dataset classes: {:?}",
        NPB_CLASSES.iter().map(|(c, _)| *c).collect::<Vec<_>>()
    );
}
