//! Figure 8: speedups of the *extended* model (raw features + branch counts,
//! trained with CLgen synthetic benchmarks) over the original Grewe et al.
//! model, evaluated across all seven benchmark suites on both platforms.
//!
//! Paper: 3.56x on AMD and 5.04x on NVIDIA (geometric means across a large
//! test set). The reproduction checks that the extended feature set plus
//! synthetic training data outperforms the original model on both platforms.

use cldrive::Platform;
use experiments::{
    build_suite_dataset, build_synthetic_dataset, print_table, scaled, synthesize_kernels,
    DatasetConfig, SyntheticConfig,
};
use grewe_features::FeatureSet;
use predictive::{aggregate, geomean_speedup, leave_one_out, TreeConfig};

fn main() {
    let mut synth_config = SyntheticConfig::default();
    synth_config.target_kernels = scaled(300, 30);
    synth_config.max_attempts = synth_config.target_kernels * 25;
    eprintln!(
        "synthesizing {} CLgen kernels...",
        synth_config.target_kernels
    );
    let kernels = synthesize_kernels(&synth_config);
    eprintln!("accepted {} synthetic kernels", kernels.len());

    let tree = TreeConfig::default();
    let mut summary = Vec::new();
    for platform in [Platform::amd(), Platform::nvidia()] {
        eprintln!(
            "building {} datasets (Grewe + extended features)...",
            platform.name
        );
        let grewe_cfg = DatasetConfig {
            feature_set: FeatureSet::Grewe,
            ..Default::default()
        };
        let ext_cfg = DatasetConfig {
            feature_set: FeatureSet::Extended,
            ..Default::default()
        };
        let grewe_data = build_suite_dataset(&platform, &grewe_cfg);
        let ext_data = build_suite_dataset(&platform, &ext_cfg);
        let synth_ext = build_synthetic_dataset(
            &kernels,
            &platform,
            FeatureSet::Extended,
            &synth_config.dataset_sizes,
        );

        // Original model: Grewe features, no synthetic training data.
        let original = leave_one_out(&grewe_data, None, &tree);
        // Extended model: raw+branch features, synthetic benchmarks added.
        let extended = leave_one_out(&ext_data, Some(&synth_ext), &tree);

        let mut per_suite = Vec::new();
        for suite in grewe_data.suites() {
            let orig: Vec<_> = original
                .iter()
                .filter(|r| r.suite == suite)
                .cloned()
                .collect();
            let ext: Vec<_> = extended
                .iter()
                .filter(|r| r.suite == suite)
                .cloned()
                .collect();
            per_suite.push(vec![
                suite.clone(),
                format!("{:.2}x", geomean_speedup(&orig)),
                format!("{:.2}x", geomean_speedup(&ext)),
                format!("{:.1}%", aggregate(&ext).performance_vs_oracle() * 100.0),
            ]);
        }
        print_table(
            &format!(
                "Figure 8 ({}): per-suite speedup over best static mapping",
                platform.name
            ),
            &[
                "suite",
                "Grewe et al.",
                "extended + CLgen",
                "ext. % of oracle",
            ],
            &per_suite,
        );
        let orig_avg = geomean_speedup(&original);
        let ext_avg = geomean_speedup(&extended);
        summary.push(vec![
            platform.name.clone(),
            format!("{orig_avg:.2}x"),
            format!("{ext_avg:.2}x"),
            format!("{:.2}x", ext_avg / orig_avg.max(1e-9)),
        ]);
    }
    print_table(
        "Figure 8 summary (paper reports extended model outperforming Grewe et al. by 3.56x on AMD, 5.04x on NVIDIA)",
        &["platform", "Grewe et al.", "extended + CLgen", "relative improvement"],
        &summary,
    );
}
