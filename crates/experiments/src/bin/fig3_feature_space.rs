//! Figure 3: a two-dimensional PCA projection of the Grewe et al. feature
//! space over the Parboil suite (NVIDIA platform), marking which benchmarks
//! the leave-one-out model predicts correctly. Adding observations close to
//! the mispredicted outliers (here: CLgen synthetic kernels) corrects them.

use cldrive::Platform;
use experiments::{
    build_suite_dataset, build_synthetic_dataset, print_table, scaled, synthesize_kernels,
    DatasetConfig, SyntheticConfig,
};
use grewe_features::{FeatureSet, Pca};
use predictive::{leave_one_out, TreeConfig};

fn main() {
    let platform = Platform::nvidia();
    let config = DatasetConfig {
        feature_set: FeatureSet::Grewe,
        ..Default::default()
    };
    eprintln!("building suite dataset on the NVIDIA platform...");
    let dataset = build_suite_dataset(&platform, &config);
    let parboil = dataset.of_suite("Parboil");

    // Fit PCA on the Parboil feature rows.
    let rows: Vec<Vec<f64>> = parboil
        .examples
        .iter()
        .map(|e| e.features.clone())
        .collect();
    let (_, projected) = Pca::fit_transform(&rows, 2);

    // (a) leave-one-out predictions using the rest of the suites as training data.
    let tree = TreeConfig::default();
    let baseline = leave_one_out(&dataset, None, &tree);
    let correct_of =
        |results: &[predictive::BenchmarkResult]| -> std::collections::HashMap<String, bool> {
            results
                .iter()
                .map(|r| (r.benchmark.clone(), r.metrics.accuracy > 0.5))
                .collect()
        };
    let base_correct = correct_of(&baseline);

    // (b) with additional neighbouring observations from CLgen.
    let mut synth_config = SyntheticConfig::default();
    synth_config.target_kernels = scaled(120, 20);
    synth_config.max_attempts = synth_config.target_kernels * 25;
    eprintln!(
        "synthesizing {} CLgen kernels for the augmentation...",
        synth_config.target_kernels
    );
    let kernels = synthesize_kernels(&synth_config);
    let synth = build_synthetic_dataset(
        &kernels,
        &platform,
        FeatureSet::Grewe,
        &synth_config.dataset_sizes,
    );
    eprintln!("augmentation: {} synthetic examples", synth.len());
    let augmented = leave_one_out(&dataset, Some(&synth), &tree);
    let aug_correct = correct_of(&augmented);

    let mut rows_out = Vec::new();
    for (example, point) in parboil.examples.iter().zip(&projected) {
        if !rows_out
            .iter()
            .any(|r: &Vec<String>| r[0] == example.benchmark)
        {
            rows_out.push(vec![
                example.benchmark.clone(),
                format!("{:+.2}", point[0]),
                format!("{:+.2}", point[1]),
                if *base_correct.get(&example.benchmark).unwrap_or(&false) {
                    "correct"
                } else {
                    "INCORRECT"
                }
                .into(),
                if *aug_correct.get(&example.benchmark).unwrap_or(&false) {
                    "correct"
                } else {
                    "INCORRECT"
                }
                .into(),
            ]);
        }
    }
    print_table(
        "Figure 3: Parboil feature space (PCA projection, NVIDIA platform)",
        &[
            "benchmark",
            "PC1",
            "PC2",
            "(a) baseline",
            "(b) with added observations",
        ],
        &rows_out,
    );
    let base_wrong = rows_out.iter().filter(|r| r[3] == "INCORRECT").count();
    let aug_wrong = rows_out.iter().filter(|r| r[4] == "INCORRECT").count();
    println!("\nMispredicted Parboil benchmarks: {base_wrong} before augmentation, {aug_wrong} after (paper: 2 outliers corrected).");
}
