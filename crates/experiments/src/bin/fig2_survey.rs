//! Figure 2: the average number of benchmarks used in GPGPU research papers,
//! organised by benchmark-suite origin.
//!
//! This figure is survey data (25 papers from CGO/HiPC/PACT/PPoPP 2013-2016),
//! not a computational result, so the reproduction re-emits the survey
//! numbers: the seven most frequently used suites account for 92% of results
//! and the average paper uses 17 benchmarks.

use experiments::print_table;

/// Average number of benchmarks used per paper, by suite of origin, as read
/// from Figure 2 of the paper.
const SURVEY: &[(&str, f64)] = &[
    ("Rodinia", 6.2),
    ("NVIDIA SDK", 3.5),
    ("AMD SDK", 2.6),
    ("Parboil", 2.5),
    ("NAS", 1.6),
    ("Polybench", 1.5),
    ("SHOC", 1.0),
    ("Ad-hoc", 0.9),
    ("ISPASS", 0.6),
    ("Ploybench", 0.5),
    ("Lonestar", 0.4),
    ("SPEC-Viewperf", 0.3),
    ("MARS", 0.2),
    ("GPGPUsim", 0.2),
];

fn main() {
    let rows: Vec<Vec<String>> = SURVEY
        .iter()
        .map(|(suite, avg)| vec![suite.to_string(), format!("{avg:.1}")])
        .collect();
    print_table(
        "Figure 2: benchmarks used per GPGPU paper (survey)",
        &["suite", "avg. benchmarks/paper"],
        &rows,
    );
    let top7: f64 = SURVEY.iter().take(7).map(|(_, v)| v).sum();
    let total: f64 = SURVEY.iter().map(|(_, v)| v).sum();
    println!(
        "\nThe 7 most used suites account for {:.0}% of results (paper: 92%).",
        top7 / total * 100.0
    );
    println!(
        "Average benchmarks per paper: {:.0} (paper: 17).",
        total.ceil()
    );
}
