//! §4.1 corpus statistics: mining scale, rejection-filter discard rates with
//! and without the shim header, the undeclared-identifier analysis that
//! motivates the shim (Listing 1), and the vocabulary reduction achieved by
//! the code rewriter (Figure 5).

use clgen_corpus::{Corpus, CorpusOptions, MinerConfig};
use experiments::{print_table, scaled};

fn main() {
    let options = CorpusOptions {
        miner: MinerConfig {
            repositories: scaled(250, 40),
            files_per_repo: (1, 8),
            seed: 0xC161,
        },
        measure_no_shim_ablation: true,
        ..Default::default()
    };
    let corpus = Corpus::build(&options);
    let s = &corpus.stats;
    let rows = vec![
        vec![
            "repositories mined".into(),
            s.repositories.to_string(),
            "793".into(),
        ],
        vec![
            "content files".into(),
            s.content_files.to_string(),
            "8078".into(),
        ],
        vec!["raw lines".into(), s.raw_lines.to_string(), "2.8M".into()],
        vec![
            "discard rate (no shim)".into(),
            format!("{:.1}%", s.discard_rate_without_shim * 100.0),
            "40%".into(),
        ],
        vec![
            "discard rate (with shim)".into(),
            format!("{:.1}%", s.discard_rate_with_shim * 100.0),
            "32%".into(),
        ],
        vec![
            "distinct undeclared identifiers".into(),
            s.distinct_undeclared_identifiers.to_string(),
            "-".into(),
        ],
        vec![
            "top-60 undeclared coverage".into(),
            format!("{:.0}%", s.top60_undeclared_coverage * 100.0),
            "50%".into(),
        ],
        vec![
            "corpus kernels".into(),
            s.corpus_kernels.to_string(),
            "9487".into(),
        ],
        vec![
            "corpus lines".into(),
            s.corpus_lines.to_string(),
            "1.3M".into(),
        ],
        vec![
            "vocabulary reduction".into(),
            format!("{:.0}%", s.vocabulary_reduction() * 100.0),
            "84%".into(),
        ],
    ];
    print_table(
        "Corpus statistics (§4.1, Listing 1, Figure 5)",
        &["statistic", "measured", "paper"],
        &rows,
    );
    println!(
        "\nShim injection reduces the discard rate by {:.1} percentage points (paper: 8).",
        (s.discard_rate_without_shim - s.discard_rate_with_shim) * 100.0
    );
}
