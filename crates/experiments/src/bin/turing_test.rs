//! §6.1: likeness of synthesized code to hand-written code.
//!
//! The paper runs a double-blind human study: 15 OpenCL developers judging
//! whether kernels are human- or machine-written. CLgen output is judged at
//! chance level (52% accuracy) while the CLSmith control group is spotted
//! almost always (96%). We cannot run a human study, so this binary trains a
//! *machine* judge — a decision tree over code-style features — under the
//! same protocol: if even a trained discriminator cannot separate CLgen code
//! from the (rewritten) human corpus while easily separating CLSmith, the
//! paper's qualitative finding is reproduced.

use clgen::{ArgumentSpec, ClgenBuilder, SamplerConfig};
use clsmith::ClsmithConfig;
use experiments::{print_table, scaled, SyntheticConfig};
use predictive::{DecisionTree, TreeConfig};

/// Style features of one kernel source: argument count, loop count, arithmetic
/// density, identifier/character statistics — the kinds of "tells" a human
/// judge reads.
fn style_features(source: &str) -> Vec<f64> {
    let compiled = cl_frontend::compile(source, &Default::default());
    let counts = compiled
        .kernel_counts
        .first()
        .map(|(_, c)| *c)
        .unwrap_or_default();
    let args = compiled.kernels.first().map(|k| k.args.len()).unwrap_or(0);
    let chars = source.len() as f64;
    let lines = source.lines().count().max(1) as f64;
    let bitwise =
        source.matches('^').count() + source.matches('&').count() + source.matches(">>").count();
    let float_lits =
        source.matches("f;").count() + source.matches("f)").count() + source.matches("0f").count();
    vec![
        args as f64,
        counts.instructions as f64,
        counts.compute_ops as f64,
        counts.global_mem_accesses as f64,
        counts.local_mem_accesses as f64,
        counts.loops as f64,
        counts.branches as f64,
        counts.math_calls as f64,
        bitwise as f64,
        float_lits as f64,
        chars / lines,
        source.matches("get_global_id").count() as f64,
        source.matches("ulong").count() as f64,
    ]
}

/// Train/test a judge distinguishing `machine` sources (label 1) from `human`
/// sources (label 0); returns held-out accuracy.
fn judge_accuracy(human: &[String], machine: &[String]) -> f64 {
    let mut samples: Vec<(Vec<f64>, usize)> = Vec::new();
    for (i, src) in human.iter().enumerate() {
        let _ = i;
        samples.push((style_features(src), 0));
    }
    for src in machine {
        samples.push((style_features(src), 1));
    }
    // interleaved split: even indices train, odd test (deterministic, balanced)
    let train: Vec<_> = samples
        .iter()
        .cloned()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .map(|(_, s)| s)
        .collect();
    let test: Vec<_> = samples
        .iter()
        .cloned()
        .enumerate()
        .filter(|(i, _)| i % 2 == 1)
        .map(|(_, s)| s)
        .collect();
    let tree = DecisionTree::train(
        &train,
        &TreeConfig {
            max_depth: 6,
            min_samples_split: 4,
            min_samples_leaf: 2,
        },
    );
    tree.accuracy(&test)
}

fn main() {
    let pool = scaled(100, 30);
    let synth_config = SyntheticConfig::default();
    eprintln!("building corpus and synthesizing {pool} CLgen kernels...");
    let stage = ClgenBuilder::with_options(synth_config.clgen.clone())
        .build_corpus()
        .expect("corpus construction failed");
    let model = stage.train().expect("model training failed");
    let sampler = model.sampler(
        SamplerConfig::new(synth_config.clgen.seed)
            .with_spec(ArgumentSpec::paper_default())
            .with_sample(synth_config.clgen.sample)
            .with_max_attempts(pool * 30),
    );
    let report = sampler.synthesize(pool);
    let clgen_sources: Vec<String> = report.kernels.iter().map(|k| k.source.clone()).collect();
    // Human pool: rewritten kernels from the (GitHub-style) corpus, as in the
    // paper's study where all kernels were passed through the code rewriter.
    let human_sources: Vec<String> = stage
        .corpus()
        .sources()
        .take(pool)
        .map(str::to_string)
        .collect();
    let clsmith_sources: Vec<String> =
        clsmith::generate_population(3, pool, &ClsmithConfig::default())
            .into_iter()
            .map(|k| k.source)
            .collect();

    let clgen_accuracy = judge_accuracy(&human_sources, &clgen_sources);
    let clsmith_accuracy = judge_accuracy(&human_sources, &clsmith_sources);

    let rows = vec![
        vec![
            "CLgen vs hand-written".into(),
            format!("{:.0}%", clgen_accuracy * 100.0),
            "52% (chance)".into(),
        ],
        vec![
            "CLSmith vs hand-written (control)".into(),
            format!("{:.0}%", clsmith_accuracy * 100.0),
            "96%".into(),
        ],
    ];
    print_table(
        "§6.1 likeness to hand-written code (machine judge accuracy; 50% = indistinguishable)",
        &["comparison", "judge accuracy", "paper (human judges)"],
        &rows,
    );
    println!("\nCLgen code should be near chance; CLSmith should be easily identified.");
}
