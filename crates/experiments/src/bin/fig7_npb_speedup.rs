//! Figure 7: speedups of the Grewe et al. predictive model over the best
//! static device mapping on the NAS Parallel Benchmarks, with and without
//! CLgen synthetic benchmarks added to the training set, on both experimental
//! platforms.
//!
//! Paper: baseline 1.26x (AMD) / 2.50x (NVIDIA); with CLgen 1.57x / 3.26x —
//! an average improvement of 1.27x. The reproduction checks the *shape*: the
//! synthetic benchmarks must improve the NPB speedup on both platforms.

use cldrive::Platform;
use experiments::{
    build_suite_dataset, build_synthetic_dataset, print_table, scaled, synthesize_kernels,
    DatasetConfig, SyntheticConfig,
};
use grewe_features::FeatureSet;
use predictive::{geomean_speedup, leave_one_out, TreeConfig};

fn main() {
    let mut synth_config = SyntheticConfig::default();
    synth_config.target_kernels = scaled(300, 30);
    synth_config.max_attempts = synth_config.target_kernels * 25;
    eprintln!(
        "synthesizing {} CLgen kernels (paper: 1000)...",
        synth_config.target_kernels
    );
    let kernels = synthesize_kernels(&synth_config);
    eprintln!("accepted {} synthetic kernels", kernels.len());

    let tree = TreeConfig::default();
    let mut summary_rows = Vec::new();
    for platform in [Platform::amd(), Platform::nvidia()] {
        eprintln!("building {} dataset...", platform.name);
        let config = DatasetConfig {
            feature_set: FeatureSet::Grewe,
            ..Default::default()
        };
        let dataset = build_suite_dataset(&platform, &config);
        let npb = dataset.of_suite("NPB");
        // Training pool: all other suites (as in the paper, the NPB programs under
        // test are held out by LOOCV; the remaining suites provide training data).
        let synth = build_synthetic_dataset(
            &kernels,
            &platform,
            FeatureSet::Grewe,
            &synth_config.dataset_sizes,
        );
        eprintln!("  synthetic examples: {}", synth.len());
        let others = predictive::Dataset {
            examples: dataset
                .examples
                .iter()
                .filter(|e| e.suite != "NPB")
                .cloned()
                .collect(),
        };

        let baseline = leave_one_out(&npb, Some(&others), &tree);
        let augmented_pool = others.merged_with(&synth);
        let with_clgen = leave_one_out(&npb, Some(&augmented_pool), &tree);

        let mut rows = Vec::new();
        for (b, w) in baseline.iter().zip(&with_clgen) {
            rows.push(vec![
                b.benchmark.clone(),
                format!("{:.2}x", b.metrics.speedup_vs_static()),
                format!("{:.2}x", w.metrics.speedup_vs_static()),
            ]);
        }
        let base_avg = geomean_speedup(&baseline);
        let clgen_avg = geomean_speedup(&with_clgen);
        rows.push(vec![
            "AVERAGE".into(),
            format!("{base_avg:.2}x"),
            format!("{clgen_avg:.2}x"),
        ]);
        print_table(
            &format!(
                "Figure 7 ({}): NPB speedup over best static mapping",
                platform.name
            ),
            &["benchmark", "Grewe et al.", "w. CLgen"],
            &rows,
        );
        summary_rows.push(vec![
            platform.name.clone(),
            format!("{base_avg:.2}x"),
            format!("{clgen_avg:.2}x"),
            format!("{:.2}x", clgen_avg / base_avg.max(1e-9)),
        ]);
    }
    print_table(
        "Figure 7 summary (paper: AMD 1.26x -> 1.57x, NVIDIA 2.50x -> 3.26x, improvement 1.27x)",
        &["platform", "Grewe et al.", "w. CLgen", "improvement"],
        &summary_rows,
    );
}
