//! # experiments
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation. Each binary in `src/bin/` reproduces one artefact; this
//! library holds the shared plumbing: building labelled datasets from the
//! benchmark suites and from CLgen-synthesized kernels, assembling feature
//! vectors, and rendering result tables.
//!
//! | binary | artefact |
//! |--------|----------|
//! | `fig2_survey` | Figure 2 (benchmark-suite usage survey) |
//! | `table1_cross_suite` | Table 1 (cross-suite generalisation) |
//! | `fig3_feature_space` | Figure 3 (PCA of the Parboil feature space) |
//! | `corpus_stats` | §4.1 corpus statistics (discard rates, shim, vocabulary) |
//! | `turing_test` | §6.1 likeness-to-hand-written-code study (machine judge) |
//! | `fig7_npb_speedup` | Figure 7 (NPB speedups with/without CLgen) |
//! | `fig8_extended_model` | Figure 8 (extended model over all seven suites) |
//! | `fig9_feature_match` | Figure 9 (feature-space matches vs. #kernels) |
//! | `table3_inventory` | Table 3 (benchmark inventory) |

#![warn(missing_docs)]

pub mod data;
pub mod report;

pub use data::{
    build_suite_dataset, build_synthetic_dataset, synthesize_kernels, DatasetConfig,
    SyntheticConfig,
};
pub use report::{format_table, print_table};

/// Read an experiment scale factor from the environment (`CLGEN_SCALE`),
/// defaulting to 1.0. Experiment binaries multiply their sample counts by this
/// factor so that quick sanity runs and full reproductions use the same code.
pub fn scale_factor() -> f64 {
    std::env::var("CLGEN_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Scale a count by [`scale_factor`], keeping at least `min`.
pub fn scaled(count: usize, min: usize) -> usize {
    ((count as f64 * scale_factor()).round() as usize).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_defaults_to_identity() {
        // unless CLGEN_SCALE is set in the environment, counts are unchanged
        if std::env::var("CLGEN_SCALE").is_err() {
            assert_eq!(scaled(100, 10), 100);
        }
        assert!(scaled(0, 5) >= 5);
    }
}
