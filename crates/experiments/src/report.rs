//! Small plain-text table renderer used by the experiment binaries, so every
//! figure/table is reproduced as an aligned textual table on stdout (and can
//! be diffed between runs).

/// Render a table with a header row and aligned columns.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            if cell.len() > widths[i] {
                widths[i] = cell.len();
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Print a titled table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    print!("{}", format_table(headers, rows));
}

/// Format a float with 2 decimal places (helper for result rows).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a ratio as a percentage with 1 decimal place.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let table = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["long-name".into(), "2.50".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("long-name"));
        // the value column starts at the same offset in every row
        let offset = lines[0].find("value").unwrap();
        assert_eq!(&lines[3][offset..offset + 4], "2.50");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.515), "51.5%");
    }
}
