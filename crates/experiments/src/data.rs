//! Dataset construction shared by the experiment binaries.

use cl_frontend::analysis::analyze_function;
use cl_frontend::compile;
use cldrive::{DriverOptions, HostDriver, Platform};
use clgen::{ArgumentSpec, ClgenBuilder, ClgenOptions, SamplerConfig, SynthesizedKernel};
use grewe_features::{FeatureSet, GreweFeatures, StaticFeatures};
use predictive::{Dataset, Example};
use suites::{all_benchmarks, Benchmark};

/// Configuration for building the benchmark-suite dataset.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Which feature representation to emit.
    pub feature_set: FeatureSet,
    /// Host driver options (profiling caps etc.).
    pub driver: DriverOptions,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            feature_set: FeatureSet::Grewe,
            driver: suite_driver_options(),
        }
    }
}

/// Driver options used for trusted suite benchmarks: the dynamic checker is
/// skipped (the benchmarks are known to do useful work) and profiling caps are
/// kept small so dataset construction stays fast.
pub fn suite_driver_options() -> DriverOptions {
    DriverOptions {
        local_size: 64,
        profile_elements_cap: 1024,
        profile_work_item_cap: 192,
        checker: None,
        seed: 0xBE7C,
        repetitions: 1,
        total_step_budget: 0,
    }
}

/// Extract static features for every kernel in a benchmark source and return
/// the *sum* over kernels (multi-kernel benchmarks contribute the union of
/// their kernels' behaviour, mirroring how the paper treats per-benchmark
/// feature vectors).
fn benchmark_static_features(source: &str) -> Option<StaticFeatures> {
    let compiled = compile(source, &Default::default());
    if !compiled.is_ok() || compiled.kernels.is_empty() {
        return None;
    }
    let mut total = cl_frontend::analysis::StaticCounts::default();
    for kernel in compiled.unit.kernels() {
        let counts = analyze_function(&compiled.unit, kernel);
        total.merge(&counts);
    }
    Some(StaticFeatures::from_counts(&total))
}

/// Build the labelled dataset for one platform from every benchmark of every
/// suite, one example per (benchmark, dataset size).
pub fn build_suite_dataset(platform: &Platform, config: &DatasetConfig) -> Dataset {
    build_dataset_from_benchmarks(&all_benchmarks(), platform, config)
}

/// Build a dataset from an explicit list of benchmarks.
pub fn build_dataset_from_benchmarks(
    benchmarks: &[Benchmark],
    platform: &Platform,
    config: &DatasetConfig,
) -> Dataset {
    let driver = HostDriver::with_options(platform.clone(), config.driver.clone());
    let mut dataset = Dataset::new();
    for benchmark in benchmarks {
        let compiled = compile(&benchmark.source, &Default::default());
        if !compiled.is_ok() || compiled.kernels.is_empty() {
            continue;
        }
        let Some(statics) = benchmark_static_features(&benchmark.source) else {
            continue;
        };
        for &size in &benchmark.dataset_sizes {
            // Aggregate CPU/GPU times over all kernels of the benchmark (a
            // benchmark maps to one device as a whole).
            let mut cpu = 0.0f64;
            let mut gpu = 0.0f64;
            let mut transfer = 0.0f64;
            let mut any = false;
            for sig in &compiled.kernels {
                let Ok(run) = driver.run_kernel(&compiled.unit, sig, size) else {
                    continue;
                };
                cpu += run.cpu_time;
                gpu += run.gpu_time;
                transfer += run.workload.transfer_bytes;
                any = true;
            }
            if !any {
                continue;
            }
            let features = GreweFeatures {
                static_features: statics,
                transfer,
                wgsize: size as f64,
            };
            dataset.push(Example {
                features: config.feature_set.vector(&features),
                benchmark: benchmark.name.clone(),
                suite: benchmark.suite.short_name().to_string(),
                id: format!("{}@{}", benchmark.id(), size),
                cpu_time: cpu,
                gpu_time: gpu,
            });
        }
    }
    dataset
}

/// Configuration for synthesizing the CLgen training-set augmentation.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of accepted synthetic kernels to aim for (the paper uses 1000).
    pub target_kernels: usize,
    /// Upper bound on sampling attempts.
    pub max_attempts: usize,
    /// CLgen pipeline options (corpus scale, model backend, sampling).
    pub clgen: ClgenOptions,
    /// Dataset sizes each synthetic kernel is executed at.
    pub dataset_sizes: Vec<usize>,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        let mut clgen = ClgenOptions::small(0x51A7);
        clgen.corpus.miner.repositories = 150;
        clgen.corpus.miner.files_per_repo = (1, 6);
        SyntheticConfig {
            target_kernels: 300,
            max_attempts: 6000,
            clgen,
            dataset_sizes: vec![1 << 12, 1 << 16, 1 << 20],
        }
    }
}

impl SyntheticConfig {
    /// A configuration small enough for unit tests.
    pub fn small() -> SyntheticConfig {
        let mut config = SyntheticConfig {
            target_kernels: 12,
            max_attempts: 400,
            clgen: ClgenOptions::small(0x51A7),
            dataset_sizes: vec![1 << 12, 1 << 18],
        };
        config.clgen.corpus.miner.repositories = 40;
        config
    }
}

/// Run the staged CLgen pipeline (corpus → model → sampler stream) and
/// return the accepted synthetic kernels.
pub fn synthesize_kernels(config: &SyntheticConfig) -> Vec<SynthesizedKernel> {
    let stage = ClgenBuilder::with_options(config.clgen.clone())
        .build_corpus()
        .expect("corpus construction failed");
    let model = stage.train().expect("model training failed");
    let sampler = model.sampler(
        SamplerConfig::new(config.clgen.seed)
            .with_spec(ArgumentSpec::paper_default())
            .with_sample(config.clgen.sample)
            .with_max_attempts(config.max_attempts),
    );
    sampler.synthesize(config.target_kernels).kernels
}

/// Drive synthesized kernels and convert them into dataset examples
/// (suite = "CLgen"). Kernels that fail the dynamic checker or cannot be
/// executed are skipped, mirroring the paper's host-driver pipeline.
pub fn build_synthetic_dataset(
    kernels: &[SynthesizedKernel],
    platform: &Platform,
    feature_set: FeatureSet,
    dataset_sizes: &[usize],
) -> Dataset {
    let mut driver_options = suite_driver_options();
    driver_options.checker = Some(cldrive::CheckerOptions {
        global_size: 128,
        local_size: 32,
        ..Default::default()
    });
    let driver = HostDriver::with_options(platform.clone(), driver_options);
    let mut dataset = Dataset::new();
    for (idx, kernel) in kernels.iter().enumerate() {
        let compiled = compile(&kernel.source, &Default::default());
        if !compiled.is_ok() || compiled.kernels.is_empty() {
            continue;
        }
        let Some(statics) = benchmark_static_features(&kernel.source) else {
            continue;
        };
        let sig = &compiled.kernels[0];
        for &size in dataset_sizes {
            let Ok(run) = driver.run_kernel(&compiled.unit, sig, size) else {
                continue;
            };
            let features = GreweFeatures {
                static_features: statics,
                transfer: run.workload.transfer_bytes,
                wgsize: size as f64,
            };
            dataset.push(Example {
                features: feature_set.vector(&features),
                benchmark: format!("clgen-{idx}"),
                suite: "CLgen".to_string(),
                id: format!("clgen-{idx}@{size}"),
                cpu_time: run.cpu_time,
                gpu_time: run.gpu_time,
            });
        }
    }
    dataset
}

/// Static feature records (with the branch count) for a set of kernel sources;
/// used by Figure 9 and the Turing test.
pub fn static_features_of_sources<'a>(
    sources: impl Iterator<Item = &'a str>,
) -> Vec<StaticFeatures> {
    sources.filter_map(benchmark_static_features).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_dataset_covers_all_suites() {
        let config = DatasetConfig {
            feature_set: FeatureSet::Grewe,
            driver: DriverOptions {
                profile_elements_cap: 256,
                profile_work_item_cap: 64,
                ..suite_driver_options()
            },
        };
        // Restrict to two suites to keep the test fast.
        let benchmarks: Vec<Benchmark> = suites::suite_benchmarks(suites::Suite::NvidiaSdk)
            .into_iter()
            .chain(suites::suite_benchmarks(suites::Suite::Shoc))
            .collect();
        let dataset = build_dataset_from_benchmarks(&benchmarks, &Platform::amd(), &config);
        assert!(!dataset.is_empty());
        assert_eq!(dataset.suites().len(), 2);
        // every example has a 4-dimensional Grewe feature vector and valid runtimes
        for e in &dataset.examples {
            assert_eq!(e.features.len(), 4);
            assert!(e.cpu_time > 0.0 && e.gpu_time > 0.0);
        }
        // both mappings appear somewhere (the learning problem is non-trivial)
        assert!(
            dataset.gpu_fraction() > 0.0 && dataset.gpu_fraction() < 1.0,
            "gpu fraction {}",
            dataset.gpu_fraction()
        );
    }

    #[test]
    fn synthetic_dataset_builds_from_clgen_kernels() {
        let config = SyntheticConfig::small();
        let kernels = synthesize_kernels(&config);
        assert!(!kernels.is_empty(), "CLgen produced no kernels");
        let dataset = build_synthetic_dataset(
            &kernels,
            &Platform::amd(),
            FeatureSet::Grewe,
            &config.dataset_sizes,
        );
        assert!(
            !dataset.is_empty(),
            "no synthetic kernels survived the driver"
        );
        assert!(dataset.examples.iter().all(|e| e.suite == "CLgen"));
    }
}
