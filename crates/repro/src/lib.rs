//! Umbrella crate for the CLgen reproduction workspace.
//!
//! Re-exports the public crates so that examples and integration tests can use
//! a single dependency. See the individual crates for documentation:
//! [`clgen`], [`cldrive`], [`grewe_features`], [`predictive`].
pub use cl_frontend;
pub use cldrive;
pub use clgen;
pub use clgen_corpus;
pub use clgen_neural;
pub use clgen_serve;
pub use clsmith;
pub use grewe_features;
pub use predictive;
pub use suites;
