//! The dynamic checker (§5.2 of the paper).
//!
//! For performance benchmarking we do not care whether a kernel computes a
//! *correct* value, only that it "predictably computes some result". The
//! checker executes a kernel four times on two distinct payloads (each
//! executed twice) and asserts that:
//!
//! * the outputs differ from the inputs (the kernel has output),
//! * the outputs for different inputs differ (the kernel is input sensitive),
//! * repeated executions of the same input agree (the kernel is
//!   deterministic),
//!
//! with an epsilon for floating point comparisons and a timeout (here: a step
//! budget) to catch non-terminating kernels.

use crate::interp::{execute, ArgBinding, ExecError, ExecLimits, NDRange};
use crate::payload::{generate_payload_pair, Payload, PayloadError, PayloadOptions};
use crate::runtime::Buffer;
use cl_frontend::ast::TranslationUnit;
use cl_frontend::sema::KernelSignature;

/// The verdict of the dynamic checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The kernel performs useful, deterministic, input-sensitive work.
    UsefulWork,
    /// No global buffer was modified by execution.
    NoOutput,
    /// Outputs are identical for different inputs.
    InputInsensitive,
    /// Repeated executions of the same input disagree.
    NonDeterministic,
    /// The kernel exceeded its step budget (assumed non-terminating).
    Timeout,
    /// The kernel could not be executed or given a payload.
    Failed(String),
}

impl CheckOutcome {
    /// True if the kernel should be kept as a benchmark.
    pub fn is_useful(&self) -> bool {
        *self == CheckOutcome::UsefulWork
    }
}

/// Configuration of the dynamic checker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckerOptions {
    /// Global size used for the four check executions (small, for speed).
    pub global_size: usize,
    /// Local size for the check executions.
    pub local_size: usize,
    /// Relative epsilon for floating point output comparison.
    pub epsilon: f64,
    /// Step budget per work item (the "timeout threshold").
    pub steps_per_work_item: u64,
    /// Payload RNG seed.
    pub seed: u64,
}

impl Default for CheckerOptions {
    fn default() -> Self {
        CheckerOptions {
            global_size: 256,
            local_size: 32,
            epsilon: 1e-5,
            steps_per_work_item: 2_000_000,
            seed: 0xC4EC,
        }
    }
}

/// Snapshot of the global buffers of a payload (inputs or outputs).
fn global_buffers(args: &[ArgBinding]) -> Vec<Buffer> {
    args.iter()
        .filter_map(|a| match a {
            ArgBinding::GlobalBuffer(b) => Some(b.clone()),
            _ => None,
        })
        .collect()
}

fn buffers_differ(a: &[Buffer], b: &[Buffer], epsilon: f64) -> bool {
    if a.len() != b.len() {
        return true;
    }
    a.iter()
        .zip(b.iter())
        .any(|(x, y)| x.differs_from(y, epsilon))
}

/// Execute the kernel once over a payload, returning the output global buffers.
fn run_once(
    unit: &TranslationUnit,
    kernel: &str,
    payload: &Payload,
    ndrange: NDRange,
    limits: &ExecLimits,
) -> Result<Vec<Buffer>, ExecError> {
    let result = execute(unit, kernel, payload.args.clone(), ndrange, limits)?;
    Ok(global_buffers(&result.args))
}

/// Run the four-execution dynamic check on one kernel.
pub fn check_kernel(
    unit: &TranslationUnit,
    sig: &KernelSignature,
    options: &CheckerOptions,
) -> CheckOutcome {
    let payload_options = PayloadOptions {
        global_size: options.global_size,
        local_size: options.local_size,
        seed: options.seed,
    };
    let (payload_a, payload_b) = match generate_payload_pair(sig, &payload_options) {
        Ok(p) => p,
        Err(PayloadError::UnsupportedArgument(why)) => return CheckOutcome::Failed(why),
    };
    let ndrange = NDRange::linear(options.global_size, options.local_size);
    let limits = ExecLimits {
        steps_per_work_item: options.steps_per_work_item,
        ..ExecLimits::default()
    };

    let a_in = global_buffers(&payload_a.args);
    let b_in = global_buffers(&payload_b.args);
    if a_in.is_empty() {
        // Without global buffers there is no observable output at all.
        return CheckOutcome::NoOutput;
    }

    // k(A1) -> A1out, k(B1) -> B1out, k(A2) -> A2out, k(B2) -> B2out
    let mut outs = Vec::with_capacity(4);
    for payload in [&payload_a, &payload_b, &payload_a, &payload_b] {
        match run_once(unit, &sig.name, payload, ndrange, &limits) {
            Ok(buffers) => outs.push(buffers),
            Err(ExecError::StepLimitExceeded) => return CheckOutcome::Timeout,
            Err(e) => return CheckOutcome::Failed(e.to_string()),
        }
    }
    let (a1_out, b1_out, a2_out, b2_out) = (&outs[0], &outs[1], &outs[2], &outs[3]);

    // Assert: outputs differ from inputs, else no output for these inputs.
    if !buffers_differ(a1_out, &a_in, options.epsilon)
        && !buffers_differ(b1_out, &b_in, options.epsilon)
    {
        return CheckOutcome::NoOutput;
    }
    // Assert: outputs differ across inputs, else input-insensitive.
    if !buffers_differ(a1_out, b1_out, options.epsilon)
        || !buffers_differ(a2_out, b2_out, options.epsilon)
    {
        return CheckOutcome::InputInsensitive;
    }
    // Assert: repeated executions agree, else non-deterministic.
    if buffers_differ(a1_out, a2_out, options.epsilon)
        || buffers_differ(b1_out, b2_out, options.epsilon)
    {
        return CheckOutcome::NonDeterministic;
    }
    CheckOutcome::UsefulWork
}

/// Convenience: compile-free check when the caller already has the unit and
/// wants the first kernel checked.
pub fn check_first_kernel(
    unit: &TranslationUnit,
    sigs: &[KernelSignature],
    options: &CheckerOptions,
) -> CheckOutcome {
    match sigs.first() {
        Some(sig) => check_kernel(unit, sig, options),
        None => CheckOutcome::Failed("no kernel in translation unit".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_frontend::{compile, CompileOptions};

    fn check(src: &str) -> CheckOutcome {
        let r = compile(src, &CompileOptions::default());
        assert!(r.is_ok(), "{}", r.diagnostics);
        let options = CheckerOptions {
            global_size: 64,
            local_size: 16,
            ..Default::default()
        };
        check_kernel(&r.unit, &r.kernels[0], &options)
    }

    #[test]
    fn useful_kernel_passes() {
        let outcome = check(
            "__kernel void A(__global float* a, __global float* b, const int n) {
                int i = get_global_id(0);
                if (i < n) { b[i] = a[i] * 2.0f + 1.0f; }
            }",
        );
        assert_eq!(outcome, CheckOutcome::UsefulWork);
    }

    #[test]
    fn no_output_detected() {
        let outcome = check(
            "__kernel void A(__global float* a, const int n) {
                int i = get_global_id(0);
                float x = a[i] * 2.0f;
                x = x + 1.0f;
            }",
        );
        assert_eq!(outcome, CheckOutcome::NoOutput);
    }

    #[test]
    fn input_insensitive_detected() {
        let outcome = check(
            "__kernel void A(__global float* a, const int n) {
                int i = get_global_id(0);
                if (i < n) { a[i] = 42.0f; }
            }",
        );
        assert_eq!(outcome, CheckOutcome::InputInsensitive);
    }

    #[test]
    fn timeout_detected() {
        let r = compile(
            "__kernel void A(__global float* a) { while (1) { a[0] += 1.0f; } }",
            &CompileOptions::default(),
        );
        let options = CheckerOptions {
            global_size: 8,
            local_size: 4,
            steps_per_work_item: 5_000,
            ..Default::default()
        };
        let outcome = check_kernel(&r.unit, &r.kernels[0], &options);
        assert_eq!(outcome, CheckOutcome::Timeout);
    }

    #[test]
    fn struct_args_fail_gracefully() {
        let r = compile(
            "typedef struct { float x; } P;\n__kernel void A(__global P* ps, __global float* out) { out[0] = 1.0f; }",
            &CompileOptions::default(),
        );
        let outcome = check_kernel(&r.unit, &r.kernels[0], &CheckerOptions::default());
        assert!(matches!(outcome, CheckOutcome::Failed(_)));
        assert!(!outcome.is_useful());
    }

    #[test]
    fn paper_figure6b_kernel_is_useful() {
        // The zip kernel of Figure 6b: c_i = 3a_i + 2b_i + 4.
        let outcome = check(
            "__kernel void A(__global float* a, __global float* b, __global float* c, const int d) {
                int e = get_global_id(0);
                if (e >= d) { return; }
                c[e] = a[e] + b[e] + 2 * a[e] + b[e] + 4;
            }",
        );
        assert_eq!(outcome, CheckOutcome::UsefulWork);
    }
}
