//! Analytic device performance models.
//!
//! The paper measures real runtimes on the three platforms of Table 4 (an
//! Intel Core i7-3820 CPU, an AMD Tahiti 7970 GPU and an NVIDIA GTX 970 GPU).
//! Without that hardware, this module supplies roofline-style analytic models
//! parameterised to the same platforms. The absolute times produced are not
//! meaningful; what matters for the predictive-modeling experiments is the
//! *relative* CPU-vs-GPU behaviour: GPUs win when there is enough parallel
//! compute and memory traffic to amortise the host-device transfer and launch
//! overhead, CPUs win on small or transfer-dominated workloads, and branch
//! divergence / non-coalesced access erodes GPU throughput.

use serde::{Deserialize, Serialize};

/// Whether a device is a CPU or a discrete GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Host CPU (no PCIe transfer required).
    Cpu,
    /// Discrete GPU behind a PCIe link.
    Gpu,
}

/// An analytic device model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Human-readable device name (matches Table 4).
    pub name: String,
    /// CPU or GPU.
    pub kind: DeviceKind,
    /// Number of hardware cores / shader units (Table 4).
    pub cores: u32,
    /// Core clock in GHz (Table 4).
    pub clock_ghz: f64,
    /// Peak single-precision throughput in GFLOPS (Table 4).
    pub peak_gflops: f64,
    /// Fraction of peak realistically sustained by compiled kernels.
    pub compute_efficiency: f64,
    /// Device memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Host-device transfer bandwidth in GB/s (effectively infinite for CPUs).
    pub transfer_bandwidth_gbps: f64,
    /// Fixed per-transfer latency in microseconds.
    pub transfer_latency_us: f64,
    /// Fixed kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Multiplier applied to compute time per unit of branch fraction
    /// (models SIMT divergence; ~0 for CPUs).
    pub divergence_penalty: f64,
    /// Effective bandwidth divisor for non-coalesced global accesses.
    pub coalescing_penalty: f64,
}

/// A summary of the dynamic work a kernel launch performs, in device-neutral
/// units. Produced by the host driver from interpreter counts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Total work items in the NDRange.
    pub work_items: f64,
    /// Total arithmetic operations across all work items.
    pub compute_ops: f64,
    /// Total bytes read/written in global memory.
    pub global_bytes: f64,
    /// Total bytes read/written in local memory.
    pub local_bytes: f64,
    /// Fraction of global accesses that are coalesced (0..1).
    pub coalesced_fraction: f64,
    /// Branch operations as a fraction of all operations (0..1).
    pub branch_fraction: f64,
    /// Bytes transferred between host and device for this launch.
    pub transfer_bytes: f64,
}

/// A single estimated runtime, split into its components (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RuntimeEstimate {
    /// Host-device transfer time.
    pub transfer: f64,
    /// Kernel compute time (roofline compute leg).
    pub compute: f64,
    /// Kernel memory time (roofline bandwidth leg).
    pub memory: f64,
    /// Fixed overheads (launch, transfer latency).
    pub overhead: f64,
}

impl RuntimeEstimate {
    /// Total wall-clock seconds: overheads + transfer + max(compute, memory).
    ///
    /// The paper's measured execution time "includes both device compute time
    /// and the data transfer overheads", so the total here is what experiments
    /// compare.
    pub fn total(&self) -> f64 {
        self.overhead + self.transfer + self.compute.max(self.memory)
    }
}

impl Device {
    /// The Intel Core i7-3820 host CPU of Table 4.
    pub fn intel_i7_3820() -> Device {
        Device {
            name: "Intel Core i7-3820".into(),
            kind: DeviceKind::Cpu,
            cores: 4,
            clock_ghz: 3.6,
            peak_gflops: 105.0,
            compute_efficiency: 0.35,
            mem_bandwidth_gbps: 51.2,
            transfer_bandwidth_gbps: f64::INFINITY,
            transfer_latency_us: 0.0,
            launch_overhead_us: 8.0,
            divergence_penalty: 0.05,
            coalescing_penalty: 1.2,
        }
    }

    /// The AMD Tahiti 7970 GPU of Table 4.
    pub fn amd_tahiti_7970() -> Device {
        Device {
            name: "AMD Tahiti 7970".into(),
            kind: DeviceKind::Gpu,
            cores: 2048,
            clock_ghz: 1.0,
            peak_gflops: 3790.0,
            compute_efficiency: 0.22,
            mem_bandwidth_gbps: 264.0,
            transfer_bandwidth_gbps: 6.0,
            transfer_latency_us: 25.0,
            launch_overhead_us: 45.0,
            divergence_penalty: 2.5,
            coalescing_penalty: 6.0,
        }
    }

    /// The NVIDIA GTX 970 GPU of Table 4.
    pub fn nvidia_gtx_970() -> Device {
        Device {
            name: "NVIDIA GTX 970".into(),
            kind: DeviceKind::Gpu,
            cores: 1664,
            clock_ghz: 1.05,
            peak_gflops: 3900.0,
            compute_efficiency: 0.25,
            mem_bandwidth_gbps: 224.0,
            transfer_bandwidth_gbps: 6.2,
            transfer_latency_us: 20.0,
            launch_overhead_us: 35.0,
            divergence_penalty: 2.2,
            coalescing_penalty: 5.0,
        }
    }

    /// Estimate the runtime of a workload on this device.
    pub fn estimate(&self, w: &WorkloadProfile) -> RuntimeEstimate {
        let giga = 1e9;
        // --- transfers --------------------------------------------------
        let (transfer, transfer_latency) = match self.kind {
            DeviceKind::Cpu => (0.0, 0.0),
            DeviceKind::Gpu => (
                w.transfer_bytes / (self.transfer_bandwidth_gbps * giga),
                self.transfer_latency_us * 1e-6,
            ),
        };
        // --- compute ----------------------------------------------------
        let sustained_flops = (self.peak_gflops * giga * self.compute_efficiency).max(1.0);
        let divergence = 1.0 + self.divergence_penalty * w.branch_fraction.clamp(0.0, 1.0);
        // A GPU cannot use all its lanes if the launch has too few work items.
        let occupancy = match self.kind {
            DeviceKind::Cpu => 1.0,
            DeviceKind::Gpu => (w.work_items / (f64::from(self.cores) * 4.0)).clamp(0.05, 1.0),
        };
        let compute = w.compute_ops * divergence / (sustained_flops * occupancy);
        // --- memory -----------------------------------------------------
        let coalesced = w.coalesced_fraction.clamp(0.0, 1.0);
        let effective_bw = self.mem_bandwidth_gbps
            * giga
            * (coalesced + (1.0 - coalesced) / self.coalescing_penalty)
            * occupancy.max(0.25);
        let local_bw = self.mem_bandwidth_gbps * giga * 4.0; // on-chip scratch is ~free
        let memory = w.global_bytes / effective_bw.max(1.0) + w.local_bytes / local_bw.max(1.0);
        // --- overheads ---------------------------------------------------
        let overhead = self.launch_overhead_us * 1e-6 + transfer_latency;
        RuntimeEstimate {
            transfer,
            compute,
            memory,
            overhead,
        }
    }

    /// All three platforms of Table 4.
    pub fn table4() -> Vec<Device> {
        vec![
            Device::intel_i7_3820(),
            Device::amd_tahiti_7970(),
            Device::nvidia_gtx_970(),
        ]
    }
}

/// An experimental CPU-GPU platform pairing, as used throughout the paper's
/// evaluation ("the AMD system" / "the NVIDIA system").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// The host CPU.
    pub cpu: Device,
    /// The GPU of the pairing.
    pub gpu: Device,
    /// Short name used in result tables ("AMD", "NVIDIA").
    pub name: String,
}

impl Platform {
    /// The AMD system of Table 4 (i7-3820 + Tahiti 7970).
    pub fn amd() -> Platform {
        Platform {
            cpu: Device::intel_i7_3820(),
            gpu: Device::amd_tahiti_7970(),
            name: "AMD".into(),
        }
    }

    /// The NVIDIA system of Table 4 (i7-3820 + GTX 970).
    pub fn nvidia() -> Platform {
        Platform {
            cpu: Device::intel_i7_3820(),
            gpu: Device::nvidia_gtx_970(),
            name: "NVIDIA".into(),
        }
    }

    /// Both experimental platforms.
    pub fn both() -> Vec<Platform> {
        vec![Platform::amd(), Platform::nvidia()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(
        work_items: f64,
        ops_per_item: f64,
        bytes_per_item: f64,
        transfer: f64,
    ) -> WorkloadProfile {
        WorkloadProfile {
            work_items,
            compute_ops: work_items * ops_per_item,
            global_bytes: work_items * bytes_per_item,
            local_bytes: 0.0,
            coalesced_fraction: 1.0,
            branch_fraction: 0.05,
            transfer_bytes: transfer,
        }
    }

    #[test]
    fn small_workloads_prefer_cpu() {
        let platform = Platform::amd();
        let w = workload(256.0, 20.0, 16.0, 2.0 * 256.0 * 4.0);
        let cpu = platform.cpu.estimate(&w).total();
        let gpu = platform.gpu.estimate(&w).total();
        assert!(
            cpu < gpu,
            "small workload should favour the CPU: cpu={cpu}, gpu={gpu}"
        );
    }

    #[test]
    fn large_compute_workloads_prefer_gpu() {
        let platform = Platform::amd();
        // 4M work items, 2000 ops each, small transfers relative to compute.
        let w = workload(4e6, 2000.0, 32.0, 3.0 * 4e6 * 4.0);
        let cpu = platform.cpu.estimate(&w).total();
        let gpu = platform.gpu.estimate(&w).total();
        assert!(
            gpu < cpu,
            "large workload should favour the GPU: cpu={cpu}, gpu={gpu}"
        );
    }

    #[test]
    fn transfer_dominated_workloads_prefer_cpu() {
        let platform = Platform::nvidia();
        // Lots of data movement, almost no compute per element.
        let w = workload(1e6, 2.0, 8.0, 3.0 * 1e6 * 8.0);
        let cpu = platform.cpu.estimate(&w).total();
        let gpu = platform.gpu.estimate(&w).total();
        assert!(
            cpu < gpu,
            "transfer-bound workload should favour the CPU: cpu={cpu}, gpu={gpu}"
        );
    }

    #[test]
    fn divergence_and_coalescing_hurt_gpu() {
        let gpu = Device::amd_tahiti_7970();
        let base = workload(1e6, 200.0, 64.0, 1e6);
        let mut branchy = base;
        branchy.branch_fraction = 0.8;
        assert!(gpu.estimate(&branchy).total() > gpu.estimate(&base).total());
        let mut scattered = base;
        scattered.coalesced_fraction = 0.0;
        assert!(gpu.estimate(&scattered).total() > gpu.estimate(&base).total());
    }

    #[test]
    fn cpu_ignores_transfers() {
        let cpu = Device::intel_i7_3820();
        let mut w = workload(1e5, 50.0, 16.0, 0.0);
        let base = cpu.estimate(&w).total();
        w.transfer_bytes = 1e9;
        assert!((cpu.estimate(&w).total() - base).abs() < 1e-12);
    }

    #[test]
    fn table4_has_three_devices_with_paper_specs() {
        let devices = Device::table4();
        assert_eq!(devices.len(), 3);
        assert_eq!(devices[0].cores, 4);
        assert_eq!(devices[1].cores, 2048);
        assert_eq!(devices[2].cores, 1664);
        assert!((devices[1].peak_gflops - 3790.0).abs() < 1.0);
    }

    #[test]
    fn estimate_components_are_nonnegative_and_total_consistent() {
        let w = workload(1e4, 100.0, 32.0, 1e5);
        for d in Device::table4() {
            let e = d.estimate(&w);
            assert!(e.compute >= 0.0 && e.memory >= 0.0 && e.transfer >= 0.0 && e.overhead >= 0.0);
            assert!(e.total() >= e.compute.max(e.memory));
        }
    }

    #[test]
    fn platforms_named_after_gpus() {
        assert_eq!(Platform::amd().name, "AMD");
        assert_eq!(Platform::nvidia().name, "NVIDIA");
        assert_eq!(Platform::both().len(), 2);
    }
}
