//! # cldrive
//!
//! The benchmark-execution substrate of the CLgen reproduction (§5 of the
//! paper): a host driver that generates payloads for arbitrary OpenCL kernels,
//! validates them with the dynamic checker, executes them on an NDRange
//! interpreter, and estimates runtimes on analytic models of the paper's
//! CPU/GPU platforms (Table 4).
//!
//! * [`runtime`] — values, buffers and scalar semantics,
//! * [`interp`] — the NDRange interpreter with dynamic instruction counting,
//! * [`payload`] — rule-based payload generation (§5.1),
//! * [`checker`] — the four-execution dynamic checker (§5.2),
//! * [`device`] — roofline-style device models of Table 4's platforms,
//! * [`driver`] — the host driver producing per-(kernel, dataset) records.
//!
//! ```
//! use cldrive::{DriverOptions, HostDriver, Platform};
//!
//! let driver = HostDriver::with_options(Platform::amd(), DriverOptions::quick());
//! let runs = driver
//!     .run_source(
//!         "__kernel void A(__global float* a, __global float* b, const int n) {
//!              int i = get_global_id(0);
//!              if (i < n) { b[i] = a[i] * 2.0f; }
//!          }",
//!         &[1024],
//!     )
//!     .unwrap();
//! assert_eq!(runs.len(), 1);
//! assert!(runs[0].cpu_time > 0.0);
//! ```

#![warn(missing_docs)]

pub mod checker;
pub mod device;
pub mod driver;
pub mod interp;
pub mod payload;
pub mod runtime;

pub use checker::{check_kernel, CheckOutcome, CheckerOptions};
pub use device::{Device, DeviceKind, Platform, RuntimeEstimate, WorkloadProfile};
pub use driver::{DriveError, DriverOptions, HostDriver, KernelRun};
pub use interp::{
    execute, ArgBinding, ExecError, ExecLimits, ExecutionCounts, NDRange, MAX_SCRATCH_ELEMENTS,
};
pub use payload::{generate_payload, Payload, PayloadError, PayloadOptions};
pub use runtime::{Buffer, BufferSpace, Scalar, Value};
