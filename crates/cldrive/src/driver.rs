//! The host driver (Figure 4, "Benchmark Driver").
//!
//! Given an OpenCL kernel and a dataset size, the driver generates a payload,
//! optionally validates the kernel with the dynamic checker, profiles its
//! dynamic behaviour by interpretation, and produces runtime estimates for the
//! CPU and GPU of an experimental platform. The per-(kernel, dataset) records
//! it emits are the raw material of every predictive-modeling experiment in
//! the paper.

use crate::checker::{check_kernel, CheckOutcome, CheckerOptions};
use crate::device::{DeviceKind, Platform, WorkloadProfile};
use crate::interp::{execute, ExecError, ExecLimits, ExecutionCounts, NDRange};
use crate::payload::{estimated_transfer_bytes, generate_payload, PayloadError, PayloadOptions};
use cl_frontend::ast::TranslationUnit;
use cl_frontend::sema::KernelSignature;
use cl_frontend::{compile, CompileOptions, Diagnostics};

/// Driver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DriverOptions {
    /// Work-group size used for launches.
    pub local_size: usize,
    /// Cap on the number of buffer elements allocated while profiling (larger
    /// dataset sizes are extrapolated from per-work-item averages).
    pub profile_elements_cap: usize,
    /// Cap on the number of work items actually interpreted while profiling.
    pub profile_work_item_cap: usize,
    /// Dynamic-checker configuration; `None` skips the check.
    pub checker: Option<CheckerOptions>,
    /// Payload RNG seed.
    pub seed: u64,
    /// Number of repetitions to average (the paper repeats each experiment 5
    /// times; our analytic estimates are deterministic so this mainly matters
    /// when callers add noise models).
    pub repetitions: usize,
    /// Launch-wide interpreter step budget (0 = unbounded). Batched callers
    /// (the `clgen-harness` drive pool) set this so a single hostile kernel
    /// cannot consume a worker for `steps_per_work_item * work_items` steps.
    pub total_step_budget: u64,
}

impl Default for DriverOptions {
    fn default() -> Self {
        DriverOptions {
            local_size: 64,
            profile_elements_cap: 4096,
            profile_work_item_cap: 512,
            checker: Some(CheckerOptions::default()),
            seed: 0xD21E,
            repetitions: 5,
            total_step_budget: 0,
        }
    }
}

impl DriverOptions {
    /// A faster configuration for unit tests (smaller caps, no checker).
    pub fn quick() -> DriverOptions {
        DriverOptions {
            local_size: 32,
            profile_elements_cap: 512,
            profile_work_item_cap: 128,
            checker: None,
            seed: 7,
            repetitions: 1,
            total_step_budget: 0,
        }
    }
}

/// Why the driver could not produce a record for a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum DriveError {
    /// The source failed to compile.
    Compile(Diagnostics),
    /// The source contains no kernels.
    NoKernel,
    /// No payload could be generated for the kernel signature.
    Payload(PayloadError),
    /// The dynamic checker rejected the kernel.
    Check(CheckOutcome),
    /// Interpretation failed.
    Exec(ExecError),
}

impl std::fmt::Display for DriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriveError::Compile(d) => write!(f, "compile error: {}", d),
            DriveError::NoKernel => write!(f, "no kernel in source"),
            DriveError::Payload(e) => write!(f, "payload error: {e}"),
            DriveError::Check(c) => write!(f, "dynamic check failed: {c:?}"),
            DriveError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for DriveError {}

/// The record produced for one (kernel, dataset size) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRun {
    /// Kernel function name.
    pub kernel_name: String,
    /// Dataset (global) size the record is for.
    pub global_size: usize,
    /// Work-group size used.
    pub local_size: usize,
    /// Raw interpreter counts over the profiled sample.
    pub counts: ExecutionCounts,
    /// Derived device-neutral workload profile (scaled to the full NDRange).
    pub workload: WorkloadProfile,
    /// Estimated CPU runtime in seconds.
    pub cpu_time: f64,
    /// Estimated GPU runtime in seconds.
    pub gpu_time: f64,
    /// Name of the platform the estimate is for ("AMD" / "NVIDIA").
    pub platform: String,
}

impl KernelRun {
    /// The device that minimises runtime (the oracle mapping).
    pub fn oracle(&self) -> DeviceKind {
        if self.cpu_time <= self.gpu_time {
            DeviceKind::Cpu
        } else {
            DeviceKind::Gpu
        }
    }

    /// Runtime of the given mapping.
    pub fn time_of(&self, device: DeviceKind) -> f64 {
        match device {
            DeviceKind::Cpu => self.cpu_time,
            DeviceKind::Gpu => self.gpu_time,
        }
    }

    /// Speedup of the oracle mapping over the given mapping (>= 1).
    pub fn slowdown_of(&self, device: DeviceKind) -> f64 {
        self.time_of(device) / self.time_of(self.oracle()).max(1e-12)
    }
}

/// The host driver for one experimental platform.
#[derive(Debug, Clone)]
pub struct HostDriver {
    /// The CPU/GPU pairing runtimes are estimated for.
    pub platform: Platform,
    /// Driver options.
    pub options: DriverOptions,
}

impl HostDriver {
    /// A driver for the given platform with default options.
    pub fn new(platform: Platform) -> HostDriver {
        HostDriver {
            platform,
            options: DriverOptions::default(),
        }
    }

    /// A driver with explicit options.
    pub fn with_options(platform: Platform, options: DriverOptions) -> HostDriver {
        HostDriver { platform, options }
    }

    /// Compile `source` and produce one record per kernel for each global size.
    ///
    /// # Errors
    ///
    /// Returns a [`DriveError`] when compilation fails or no kernel yields a
    /// usable record (individual kernel failures are skipped when at least one
    /// kernel succeeds).
    pub fn run_source(
        &self,
        source: &str,
        global_sizes: &[usize],
    ) -> Result<Vec<KernelRun>, DriveError> {
        let compiled = compile(source, &CompileOptions::default());
        if !compiled.is_ok() {
            return Err(DriveError::Compile(compiled.diagnostics));
        }
        if compiled.kernels.is_empty() {
            return Err(DriveError::NoKernel);
        }
        let mut runs = Vec::new();
        let mut last_error = None;
        for sig in &compiled.kernels {
            for &size in global_sizes {
                match self.run_kernel(&compiled.unit, sig, size) {
                    Ok(run) => runs.push(run),
                    Err(e) => last_error = Some(e),
                }
            }
        }
        if runs.is_empty() {
            Err(last_error.unwrap_or(DriveError::NoKernel))
        } else {
            Ok(runs)
        }
    }

    /// Produce the record for one kernel at one dataset size.
    ///
    /// # Errors
    ///
    /// Returns a [`DriveError`] if payload generation, the dynamic check or
    /// interpretation fails.
    pub fn run_kernel(
        &self,
        unit: &TranslationUnit,
        sig: &KernelSignature,
        global_size: usize,
    ) -> Result<KernelRun, DriveError> {
        // 1. Dynamic check (on a small payload) if configured.
        if let Some(checker) = &self.options.checker {
            let outcome = check_kernel(unit, sig, checker);
            if !outcome.is_useful() {
                return Err(DriveError::Check(outcome));
            }
        }
        // 2. Profile by interpretation at a capped size.
        let profile_size = global_size
            .min(self.options.profile_elements_cap)
            .max(self.options.local_size);
        let payload_options = PayloadOptions {
            global_size: profile_size,
            local_size: self.options.local_size,
            seed: self.options.seed,
        };
        let payload = generate_payload(sig, &payload_options).map_err(DriveError::Payload)?;
        let is_2d = uses_second_dimension(unit, sig);
        let ndrange = if is_2d {
            let side = (profile_size as f64).sqrt().ceil() as usize;
            let lside = (self.options.local_size as f64).sqrt().ceil().max(1.0) as usize;
            NDRange::two_d(side.max(1), side.max(1), lside, lside)
        } else {
            NDRange::linear(profile_size, self.options.local_size)
        };
        let limits = ExecLimits {
            steps_per_work_item: 2_000_000,
            max_work_items: self.options.profile_work_item_cap,
            total_steps: self.options.total_step_budget,
        };
        let result = execute(unit, &sig.name, payload.args.clone(), ndrange, &limits)
            .map_err(DriveError::Exec)?;
        let counts = result.counts;
        let executed = counts.work_items_executed.max(1) as f64;

        // 3. Scale per-work-item averages to the full dataset size.
        let total_items = if is_2d {
            // a 2-D launch over an N-element dataset still touches ~N items
            global_size as f64
        } else {
            global_size as f64
        };
        let elem_bytes = 4.0;
        let (to_device, from_device) = estimated_transfer_bytes(sig, global_size);
        let global_accesses = counts.global_accesses() as f64;
        let workload = WorkloadProfile {
            work_items: total_items,
            compute_ops: (counts.compute_ops as f64 / executed) * total_items,
            global_bytes: (global_accesses * elem_bytes / executed) * total_items,
            local_bytes: (counts.local_accesses as f64 * elem_bytes / executed) * total_items,
            coalesced_fraction: if global_accesses == 0.0 {
                1.0
            } else {
                (counts.coalesced_accesses as f64 / global_accesses).clamp(0.0, 1.0)
            },
            branch_fraction: if counts.instructions == 0 {
                0.0
            } else {
                (counts.branches as f64 / counts.instructions as f64).clamp(0.0, 1.0)
            },
            transfer_bytes: (to_device + from_device) as f64,
        };
        // 4. Device estimates.
        let cpu_time = self.platform.cpu.estimate(&workload).total();
        let gpu_time = self.platform.gpu.estimate(&workload).total();
        Ok(KernelRun {
            kernel_name: sig.name.clone(),
            global_size,
            local_size: self.options.local_size,
            counts,
            workload,
            cpu_time,
            gpu_time,
            platform: self.platform.name.clone(),
        })
    }
}

/// Does the kernel read `get_global_id(1)` / `get_group_id(1)`? If so the
/// driver launches a 2-D NDRange.
fn uses_second_dimension(unit: &TranslationUnit, sig: &KernelSignature) -> bool {
    use cl_frontend::printer::print_function;
    match unit.function(&sig.name) {
        Some(f) => {
            let text = print_function(f);
            text.contains("get_global_id(1)")
                || text.contains("get_group_id(1)")
                || text.contains("get_local_id(1)")
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VECADD: &str =
        "__kernel void A(__global float* a, __global float* b, __global float* c, const int d) {
        int e = get_global_id(0);
        if (e < d) { c[e] = a[e] + b[e]; }
    }";

    const MATMUL: &str =
        "__kernel void mm(__global float* a, __global float* b, __global float* c, const int w) {
        int row = get_global_id(1);
        int col = get_global_id(0);
        float acc = 0.0f;
        for (int k = 0; k < w; k++) { acc += a[row * w + k] * b[k * w + col]; }
        c[row * w + col] = acc;
    }";

    #[test]
    fn driver_produces_records_for_each_size() {
        let driver = HostDriver::with_options(Platform::amd(), DriverOptions::quick());
        let runs = driver.run_source(VECADD, &[256, 65536]).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].kernel_name, "A");
        assert!(runs[0].cpu_time > 0.0 && runs[0].gpu_time > 0.0);
        assert_eq!(runs[0].platform, "AMD");
    }

    #[test]
    fn streaming_vecadd_is_cpu_bound_and_transfer_dominated_on_gpu() {
        let driver = HostDriver::with_options(Platform::amd(), DriverOptions::quick());
        let runs = driver.run_source(VECADD, &[256, 1 << 22]).unwrap();
        let small = &runs[0];
        let large = &runs[1];
        // A streaming kernel with one flop per element never amortises the
        // PCIe transfer, so the CPU is the oracle at every size — this is the
        // classic case the Grewe et al. model must learn to keep on the CPU.
        assert_eq!(
            small.oracle(),
            DeviceKind::Cpu,
            "tiny vecadd should favour CPU"
        );
        assert_eq!(
            large.oracle(),
            DeviceKind::Cpu,
            "streaming vecadd should stay on the CPU"
        );
        // And the GPU penalty at large sizes is dominated by data transfer.
        assert!(large.workload.transfer_bytes > large.workload.compute_ops);
    }

    #[test]
    fn compute_heavy_matmul_maps_to_gpu_at_scale() {
        let driver = HostDriver::with_options(Platform::amd(), DriverOptions::quick());
        let runs = driver.run_source(MATMUL, &[1 << 20]).unwrap();
        assert_eq!(
            runs[0].oracle(),
            DeviceKind::Gpu,
            "large matmul should favour the GPU"
        );
        assert!(runs[0].slowdown_of(DeviceKind::Cpu) > 1.0);
    }

    #[test]
    fn checker_rejects_constant_kernel() {
        let driver = HostDriver::with_options(
            Platform::nvidia(),
            DriverOptions {
                checker: Some(CheckerOptions {
                    global_size: 64,
                    local_size: 16,
                    ..Default::default()
                }),
                ..DriverOptions::quick()
            },
        );
        let err = driver.run_source("__kernel void A(__global float* a, const int n) { int i = get_global_id(0); if (i < n) { a[i] = 1.0f; } }", &[256]);
        assert!(matches!(
            err,
            Err(DriveError::Check(CheckOutcome::InputInsensitive))
        ));
    }

    #[test]
    fn compile_errors_reported() {
        let driver = HostDriver::with_options(Platform::amd(), DriverOptions::quick());
        let err = driver.run_source("__kernel void A(__global float* a) { a[0] = oops; }", &[64]);
        assert!(matches!(err, Err(DriveError::Compile(_))));
    }

    #[test]
    fn two_dimensional_kernels_profiled() {
        let driver = HostDriver::with_options(Platform::nvidia(), DriverOptions::quick());
        let runs = driver.run_source(MATMUL, &[4096]).unwrap();
        assert!(runs[0].counts.work_items_executed > 0);
        assert!(runs[0].workload.compute_ops > 0.0);
    }

    #[test]
    fn workload_scales_with_global_size() {
        let driver = HostDriver::with_options(Platform::amd(), DriverOptions::quick());
        let runs = driver.run_source(VECADD, &[1024, 1 << 20]).unwrap();
        assert!(runs[1].workload.transfer_bytes > runs[0].workload.transfer_bytes * 100.0);
        assert!(runs[1].workload.compute_ops > runs[0].workload.compute_ops * 100.0);
    }
}
