//! Payload generation (§5.1 of the paper).
//!
//! "A payload encapsulates all of the arguments of an OpenCL compute kernel.
//! After parsing the input kernel to derive argument types, a rule-based
//! approach is used to generate synthetic payloads. For a given global size
//! Sg: host buffers of Sg elements are allocated and populated with random
//! values for global pointer arguments, device-only buffers of Sg elements
//! are allocated for local pointer arguments, integral arguments are given
//! the value Sg, and all other scalar arguments are given random values."

use crate::interp::ArgBinding;
use crate::runtime::{Buffer, BufferSpace, Scalar, Value};
use cl_frontend::ast::Type;
use cl_frontend::sema::KernelSignature;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Payload generation options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PayloadOptions {
    /// Global size `Sg`: the number of elements per buffer and the value given
    /// to integral scalar arguments.
    pub global_size: usize,
    /// Work-group (local) size used when the kernel is launched.
    pub local_size: usize,
    /// RNG seed for the random buffer contents and scalar values.
    pub seed: u64,
}

impl Default for PayloadOptions {
    fn default() -> Self {
        PayloadOptions {
            global_size: 1024,
            local_size: 64,
            seed: 0xDA7A,
        }
    }
}

/// A generated payload: one argument binding per kernel argument, plus the
/// transfer sizes the host driver would enqueue.
#[derive(Debug, Clone)]
pub struct Payload {
    /// Argument bindings in kernel-argument order.
    pub args: Vec<ArgBinding>,
    /// Bytes transferred host → device before execution (all non-write-only
    /// global buffers).
    pub bytes_to_device: usize,
    /// Bytes transferred device → host after execution (all non-read-only
    /// global buffers).
    pub bytes_from_device: usize,
    /// Global size the payload was generated for.
    pub global_size: usize,
}

impl Payload {
    /// Total bytes moved across the host-device interconnect.
    pub fn total_transfer_bytes(&self) -> usize {
        self.bytes_to_device + self.bytes_from_device
    }
}

/// Errors from payload generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PayloadError {
    /// The kernel has an argument type the rule-based generator cannot
    /// synthesise (structs, images, unknown types) — §6.2 reports 2.3% of
    /// benchmark kernels fall in this category.
    UnsupportedArgument(String),
}

impl std::fmt::Display for PayloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PayloadError::UnsupportedArgument(a) => write!(f, "unsupported kernel argument: {a}"),
        }
    }
}

impl std::error::Error for PayloadError {}

/// Generate a payload for a kernel signature.
///
/// # Errors
///
/// Returns [`PayloadError::UnsupportedArgument`] for struct/image/unknown
/// argument types.
pub fn generate_payload(
    sig: &KernelSignature,
    options: &PayloadOptions,
) -> Result<Payload, PayloadError> {
    let mut rng = StdRng::seed_from_u64(options.seed);
    let sg = options.global_size.max(1);
    let mut args = Vec::with_capacity(sig.args.len());
    let mut to_device = 0usize;
    let mut from_device = 0usize;
    for arg in &sig.args {
        match &arg.ty {
            Type::Pointer {
                pointee,
                address_space,
                ..
            } => {
                let elem = pointee.element_scalar().ok_or_else(|| {
                    PayloadError::UnsupportedArgument(format!("{}: {}", arg.name, arg.ty))
                })?;
                let lanes = pointee.lanes().unwrap_or(1) as usize;
                match address_space {
                    cl_frontend::ast::AddressSpace::Local => {
                        args.push(ArgBinding::LocalElements(options.local_size.max(1)));
                    }
                    _ => {
                        let mut buffer = Buffer::zeroed(elem, lanes, sg, BufferSpace::Global);
                        fill_random(&mut buffer, &mut rng);
                        let bytes = buffer.size_bytes();
                        // Host→device for all non-write-only buffers; we do not
                        // track write-only annotations on pointers, so every
                        // global buffer is transferred in...
                        to_device += bytes;
                        // ...and device→host for all non-read-only buffers
                        // (const-qualified buffers are read-only).
                        if !arg.is_const {
                            from_device += bytes;
                        }
                        args.push(ArgBinding::GlobalBuffer(buffer));
                    }
                }
            }
            Type::Scalar(s) => {
                let value = if s.is_integer() {
                    Scalar::I(sg as i64)
                } else {
                    Scalar::F(rng.gen_range(0.1..4.0))
                };
                args.push(ArgBinding::Scalar(value));
            }
            Type::Vector(s, _) => {
                let value = if s.is_integer() {
                    Scalar::I(sg as i64)
                } else {
                    Scalar::F(rng.gen_range(0.1..4.0))
                };
                args.push(ArgBinding::Scalar(value));
            }
            other => {
                return Err(PayloadError::UnsupportedArgument(format!(
                    "{}: {}",
                    arg.name, other
                )));
            }
        }
    }
    Ok(Payload {
        args,
        bytes_to_device: to_device,
        bytes_from_device: from_device,
        global_size: sg,
    })
}

/// Generate two payloads that differ only in their random buffer contents
/// (`A` and `B` of the dynamic checker, §5.2).
pub fn generate_payload_pair(
    sig: &KernelSignature,
    options: &PayloadOptions,
) -> Result<(Payload, Payload), PayloadError> {
    let a = generate_payload(sig, options)?;
    let mut options_b = *options;
    options_b.seed = options.seed.wrapping_add(0x9E3779B97F4A7C15);
    let b = generate_payload(sig, &options_b)?;
    Ok((a, b))
}

/// Compute the host↔device transfer sizes a payload of global size
/// `global_size` would incur, without allocating the buffers. Returns
/// `(bytes to device, bytes from device)`.
pub fn estimated_transfer_bytes(sig: &KernelSignature, global_size: usize) -> (usize, usize) {
    let mut to_device = 0usize;
    let mut from_device = 0usize;
    for arg in &sig.args {
        if let Type::Pointer {
            pointee,
            address_space,
            ..
        } = &arg.ty
        {
            if *address_space == cl_frontend::ast::AddressSpace::Local {
                continue;
            }
            let elem_bytes = pointee.size_bytes().max(1);
            let bytes = global_size * elem_bytes;
            to_device += bytes;
            if !arg.is_const {
                from_device += bytes;
            }
        }
    }
    (to_device, from_device)
}

fn fill_random(buffer: &mut Buffer, rng: &mut StdRng) {
    let is_float = buffer.elem.is_float();
    for v in buffer.data.iter_mut() {
        *v = if is_float {
            Scalar::F(rng.gen_range(-1.0..1.0))
        } else {
            Scalar::I(rng.gen_range(0..1024))
        };
    }
    let _ = Value::Void; // keep Value in scope for doc consistency
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_frontend::{compile, CompileOptions};

    fn signature(src: &str) -> KernelSignature {
        let r = compile(src, &CompileOptions::default());
        assert!(r.is_ok(), "{}", r.diagnostics);
        r.kernels[0].clone()
    }

    #[test]
    fn paper_rules_applied() {
        let sig = signature(
            "__kernel void A(__global float* a, __local float* tmp, const int n, const float alpha) { a[0] = alpha + n + tmp[0]; }",
        );
        let options = PayloadOptions {
            global_size: 256,
            local_size: 32,
            seed: 1,
        };
        let p = generate_payload(&sig, &options).unwrap();
        assert_eq!(p.args.len(), 4);
        match &p.args[0] {
            ArgBinding::GlobalBuffer(b) => assert_eq!(b.elements(), 256),
            other => panic!("expected buffer, got {other:?}"),
        }
        assert!(matches!(p.args[1], ArgBinding::LocalElements(32)));
        assert!(matches!(p.args[2], ArgBinding::Scalar(Scalar::I(256))));
        assert!(matches!(p.args[3], ArgBinding::Scalar(Scalar::F(_))));
    }

    #[test]
    fn transfer_accounting_respects_constness() {
        let sig = signature(
            "__kernel void A(__global float* out, __constant float* coeff, const int n) { out[0] = coeff[0] + n; }",
        );
        let p = generate_payload(
            &sig,
            &PayloadOptions {
                global_size: 128,
                local_size: 16,
                seed: 2,
            },
        )
        .unwrap();
        // both buffers go to the device, only the non-const one comes back
        assert_eq!(p.bytes_to_device, 2 * 128 * 4);
        assert_eq!(p.bytes_from_device, 128 * 4);
        assert_eq!(p.total_transfer_bytes(), 3 * 128 * 4);
    }

    #[test]
    fn vector_buffers_sized_by_lanes() {
        let sig = signature("__kernel void A(__global float4* a) { a[0] = a[1]; }");
        let p = generate_payload(
            &sig,
            &PayloadOptions {
                global_size: 64,
                local_size: 16,
                seed: 3,
            },
        )
        .unwrap();
        match &p.args[0] {
            ArgBinding::GlobalBuffer(b) => {
                assert_eq!(b.elements(), 64);
                assert_eq!(b.size_bytes(), 64 * 16);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unsupported_argument_rejected() {
        let sig = signature(
            "typedef struct { float x; } Body;\n__kernel void A(__global Body* bodies, __global float* out) { out[0] = 1.0f; }",
        );
        let err = generate_payload(&sig, &PayloadOptions::default());
        assert!(matches!(err, Err(PayloadError::UnsupportedArgument(_))));
    }

    #[test]
    fn payload_pair_differs_only_in_content() {
        let sig = signature("__kernel void A(__global float* a, const int n) { a[0] = n; }");
        let (a, b) = generate_payload_pair(&sig, &PayloadOptions::default()).unwrap();
        assert_eq!(a.args.len(), b.args.len());
        let (ArgBinding::GlobalBuffer(ba), ArgBinding::GlobalBuffer(bb)) = (&a.args[0], &b.args[0])
        else {
            panic!()
        };
        assert_eq!(ba.elements(), bb.elements());
        assert!(
            ba.differs_from(bb, 1e-12),
            "payload pair should have different contents"
        );
    }

    #[test]
    fn payloads_are_deterministic_per_seed() {
        let sig = signature("__kernel void A(__global float* a) { a[0] = 1.0f; }");
        let p1 = generate_payload(
            &sig,
            &PayloadOptions {
                global_size: 32,
                local_size: 8,
                seed: 9,
            },
        )
        .unwrap();
        let p2 = generate_payload(
            &sig,
            &PayloadOptions {
                global_size: 32,
                local_size: 8,
                seed: 9,
            },
        )
        .unwrap();
        let (ArgBinding::GlobalBuffer(a), ArgBinding::GlobalBuffer(b)) = (&p1.args[0], &p2.args[0])
        else {
            panic!()
        };
        assert!(!a.differs_from(b, 0.0));
    }
}
