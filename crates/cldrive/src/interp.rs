//! An NDRange interpreter for the OpenCL C subset.
//!
//! The paper executes synthesized kernels on real GPUs; this reproduction
//! executes them by interpretation over the `cl-frontend` AST. Work-items are
//! executed sequentially (work-group by work-group, in work-item order), which
//! keeps the interpreter simple at the cost of not modelling true barrier
//! concurrency; barriers are treated as sequencing no-ops. Execution gathers
//! dynamic instruction/memory counts which feed the analytic device models.

use crate::runtime::{Buffer, BufferSpace, PtrValue, Scalar, Value};
use cl_frontend::ast::*;
use cl_frontend::builtins::{builtin_function_kind, is_vector_component, BuiltinKind};
use std::collections::HashMap;

/// The iteration space of a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NDRange {
    /// Global work size per dimension.
    pub global: [usize; 3],
    /// Local (work-group) size per dimension.
    pub local: [usize; 3],
}

impl NDRange {
    /// A 1-D NDRange.
    pub fn linear(global: usize, local: usize) -> NDRange {
        NDRange {
            global: [global.max(1), 1, 1],
            local: [local.max(1), 1, 1],
        }
    }

    /// A 2-D NDRange.
    pub fn two_d(gx: usize, gy: usize, lx: usize, ly: usize) -> NDRange {
        NDRange {
            global: [gx.max(1), gy.max(1), 1],
            local: [lx.max(1), ly.max(1), 1],
        }
    }

    /// Total number of work items.
    pub fn work_items(&self) -> usize {
        self.global[0] * self.global[1] * self.global[2]
    }

    /// Work items per work group.
    pub fn group_size(&self) -> usize {
        self.local[0] * self.local[1] * self.local[2]
    }

    /// Number of work groups (rounding up in each dimension).
    pub fn num_groups(&self) -> usize {
        let gx = self.global[0].div_ceil(self.local[0]);
        let gy = self.global[1].div_ceil(self.local[1]);
        let gz = self.global[2].div_ceil(self.local[2]);
        gx * gy * gz
    }
}

/// Dynamic execution counts accumulated over interpreted work items.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutionCounts {
    /// Work items actually interpreted.
    pub work_items_executed: u64,
    /// Total interpreted operations (a proxy for dynamic instructions).
    pub instructions: u64,
    /// Arithmetic operations (including math builtins).
    pub compute_ops: u64,
    /// Loads from `__global` / `__constant` buffers.
    pub global_loads: u64,
    /// Stores to `__global` buffers.
    pub global_stores: u64,
    /// Coalesced global accesses (consecutive work items touch consecutive
    /// elements; approximated per-access by index == global id ± const).
    pub coalesced_accesses: u64,
    /// Accesses to `__local` buffers.
    pub local_accesses: u64,
    /// Branch decisions taken.
    pub branches: u64,
    /// Barrier executions.
    pub barriers: u64,
    /// Math builtin calls.
    pub math_calls: u64,
    /// Out-of-bounds accesses that were clamped.
    pub out_of_bounds: u64,
}

impl ExecutionCounts {
    /// Total global memory accesses.
    pub fn global_accesses(&self) -> u64 {
        self.global_loads + self.global_stores
    }

    /// Accumulate counts from another execution (e.g. summing kernels of a
    /// multi-kernel benchmark).
    pub fn merge(&mut self, other: &ExecutionCounts) {
        self.work_items_executed += other.work_items_executed;
        self.instructions += other.instructions;
        self.compute_ops += other.compute_ops;
        self.global_loads += other.global_loads;
        self.global_stores += other.global_stores;
        self.coalesced_accesses += other.coalesced_accesses;
        self.local_accesses += other.local_accesses;
        self.branches += other.branches;
        self.barriers += other.barriers;
        self.math_calls += other.math_calls;
        self.out_of_bounds += other.out_of_bounds;
    }
}

/// Errors raised during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The named kernel does not exist in the translation unit.
    MissingKernel(String),
    /// The provided argument bindings do not match the kernel signature.
    ArgumentMismatch(String),
    /// The per-work-item step budget was exhausted (likely non-termination).
    StepLimitExceeded,
    /// The launch-wide step budget was exhausted (the sum over all interpreted
    /// work items crossed [`ExecLimits::total_steps`]).
    TotalStepLimitExceeded,
    /// The kernel asked for more memory than the interpreter allows (e.g. a
    /// private/local array with an absurd or overflowing element count).
    ResourceLimitExceeded(String),
    /// A language construct the interpreter does not support was reached.
    Unsupported(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::MissingKernel(k) => write!(f, "kernel `{k}` not found"),
            ExecError::ArgumentMismatch(m) => write!(f, "argument mismatch: {m}"),
            ExecError::StepLimitExceeded => write!(f, "work item exceeded its step budget"),
            ExecError::TotalStepLimitExceeded => write!(f, "launch exceeded its total step budget"),
            ExecError::ResourceLimitExceeded(what) => write!(f, "resource limit exceeded: {what}"),
            ExecError::Unsupported(c) => write!(f, "unsupported construct: {c}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// How a kernel argument is bound at launch.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgBinding {
    /// A global (or constant) buffer; updated in place and returned.
    GlobalBuffer(Buffer),
    /// A local buffer of the given element count, allocated per work group.
    LocalElements(usize),
    /// A scalar passed by value.
    Scalar(Scalar),
}

/// Largest scratch (private/local) array a kernel may declare, in elements.
/// Anything above this is treated as hostile and aborted with
/// [`ExecError::ResourceLimitExceeded`] instead of attempting the allocation.
pub const MAX_SCRATCH_ELEMENTS: usize = 1 << 22;

/// Execution limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum interpreted operations per work item.
    pub steps_per_work_item: u64,
    /// Execute at most this many work items (0 = all). When sampling, work
    /// items are taken evenly from the start of each work group.
    pub max_work_items: usize,
    /// Maximum interpreted operations across the whole launch (0 = unbounded).
    /// This is the per-unit abort hook the batched harness leans on: a hostile
    /// kernel cannot burn `steps_per_work_item * work_items` steps, it is cut
    /// off with [`ExecError::TotalStepLimitExceeded`] as soon as the launch-
    /// wide sum crosses this budget.
    pub total_steps: u64,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            steps_per_work_item: 2_000_000,
            max_work_items: 0,
            total_steps: 0,
        }
    }
}

/// The result of a kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchResult {
    /// Argument bindings after execution (global buffers contain results).
    pub args: Vec<ArgBinding>,
    /// Dynamic execution counts (over the interpreted work items).
    pub counts: ExecutionCounts,
    /// Fraction of the NDRange that was actually interpreted (1.0 unless
    /// work-item sampling was requested).
    pub sampled_fraction: f64,
}

/// Execute `kernel_name` from `unit` over `ndrange` with the given argument
/// bindings.
///
/// # Errors
///
/// Returns an [`ExecError`] if the kernel is missing, the bindings do not
/// match its signature, a step budget is exhausted, or an unsupported
/// construct is reached.
pub fn execute(
    unit: &TranslationUnit,
    kernel_name: &str,
    args: Vec<ArgBinding>,
    ndrange: NDRange,
    limits: &ExecLimits,
) -> Result<LaunchResult, ExecError> {
    let kernel = unit
        .function(kernel_name)
        .filter(|f| f.is_kernel)
        .ok_or_else(|| ExecError::MissingKernel(kernel_name.to_string()))?;
    if kernel.params.len() != args.len() {
        return Err(ExecError::ArgumentMismatch(format!(
            "kernel `{kernel_name}` has {} parameters but {} bindings were provided",
            kernel.params.len(),
            args.len()
        )));
    }

    let mut machine = Machine {
        unit,
        buffers: Vec::new(),
        counts: ExecutionCounts::default(),
        limits: *limits,
        steps_this_item: 0,
        work_item: WorkItemCtx::default(),
    };

    // Bind arguments: global buffers move into the machine's buffer table.
    let mut bindings: Vec<BoundArg> = Vec::with_capacity(args.len());
    for (param, arg) in kernel.params.iter().zip(args) {
        match arg {
            ArgBinding::GlobalBuffer(buffer) => {
                let idx = machine.buffers.len();
                machine.buffers.push(buffer);
                bindings.push(BoundArg::Buffer {
                    name: param.name.clone(),
                    index: idx,
                });
            }
            ArgBinding::LocalElements(elements) => {
                let elem = param.ty.element_scalar().unwrap_or(ScalarType::Float);
                let lanes = match &param.ty {
                    Type::Pointer { pointee, .. } => pointee.lanes().unwrap_or(1) as usize,
                    _ => 1,
                };
                let idx = machine.buffers.len();
                machine.buffers.push(Buffer::zeroed(
                    elem,
                    lanes,
                    elements.max(1),
                    BufferSpace::Local,
                ));
                bindings.push(BoundArg::LocalBuffer {
                    name: param.name.clone(),
                    index: idx,
                });
            }
            ArgBinding::Scalar(s) => {
                let ty = param.ty.element_scalar().unwrap_or(ScalarType::Int);
                bindings.push(BoundArg::Scalar {
                    name: param.name.clone(),
                    value: s.convert_to(ty),
                });
            }
        }
    }

    let total_items = ndrange.work_items();
    let sample_budget = if limits.max_work_items == 0 {
        total_items
    } else {
        limits.max_work_items
    };
    let mut executed = 0usize;

    let groups = [
        ndrange.global[0].div_ceil(ndrange.local[0]),
        ndrange.global[1].div_ceil(ndrange.local[1]),
        ndrange.global[2].div_ceil(ndrange.local[2]),
    ];
    'outer: for gz in 0..groups[2] {
        for gy in 0..groups[1] {
            for gx in 0..groups[0] {
                // Fresh local memory per work group.
                for (i, b) in machine.buffers.iter_mut().enumerate() {
                    let _ = i;
                    if b.space == BufferSpace::Local {
                        b.data.iter_mut().for_each(|s| *s = Scalar::zero_of(b.elem));
                    }
                }
                for lz in 0..ndrange.local[2] {
                    for ly in 0..ndrange.local[1] {
                        for lx in 0..ndrange.local[0] {
                            let global = [
                                gx * ndrange.local[0] + lx,
                                gy * ndrange.local[1] + ly,
                                gz * ndrange.local[2] + lz,
                            ];
                            if global[0] >= ndrange.global[0]
                                || global[1] >= ndrange.global[1]
                                || global[2] >= ndrange.global[2]
                            {
                                continue;
                            }
                            if executed >= sample_budget {
                                break 'outer;
                            }
                            machine.work_item = WorkItemCtx {
                                global,
                                local: [lx, ly, lz],
                                group: [gx, gy, gz],
                                global_size: ndrange.global,
                                local_size: ndrange.local,
                                num_groups: groups,
                            };
                            machine.run_work_item(kernel, &bindings)?;
                            executed += 1;
                        }
                    }
                }
            }
        }
    }
    machine.counts.work_items_executed = executed as u64;
    // Move global buffers back out, preserving argument order.
    let mut out_args = Vec::with_capacity(bindings.len());
    for binding in &bindings {
        match binding {
            BoundArg::Buffer { index, .. } => {
                out_args.push(ArgBinding::GlobalBuffer(machine.buffers[*index].clone()));
            }
            BoundArg::LocalBuffer { .. } => out_args.push(ArgBinding::LocalElements(0)),
            BoundArg::Scalar { value, .. } => out_args.push(ArgBinding::Scalar(*value)),
        }
    }
    Ok(LaunchResult {
        args: out_args,
        counts: machine.counts,
        sampled_fraction: if total_items == 0 {
            1.0
        } else {
            executed as f64 / total_items as f64
        },
    })
}

// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum BoundArg {
    Buffer { name: String, index: usize },
    LocalBuffer { name: String, index: usize },
    Scalar { name: String, value: Scalar },
}

#[derive(Debug, Clone, Copy, Default)]
struct WorkItemCtx {
    global: [usize; 3],
    local: [usize; 3],
    group: [usize; 3],
    global_size: [usize; 3],
    local_size: [usize; 3],
    num_groups: [usize; 3],
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// An assignable location.
enum Place {
    Var {
        name: String,
        lane: Option<usize>,
    },
    BufferElem {
        buffer: usize,
        index: i64,
        lane: Option<usize>,
    },
}

struct Machine<'a> {
    unit: &'a TranslationUnit,
    buffers: Vec<Buffer>,
    counts: ExecutionCounts,
    limits: ExecLimits,
    steps_this_item: u64,
    work_item: WorkItemCtx,
}

type Env = Vec<HashMap<String, Value>>;

impl<'a> Machine<'a> {
    fn run_work_item(
        &mut self,
        kernel: &FunctionDef,
        bindings: &[BoundArg],
    ) -> Result<(), ExecError> {
        self.steps_this_item = 0;
        let mut env: Env = vec![HashMap::new()];
        for binding in bindings {
            match binding {
                BoundArg::Buffer { name, index } | BoundArg::LocalBuffer { name, index } => {
                    env[0].insert(
                        name.clone(),
                        Value::Ptr(PtrValue {
                            buffer: *index,
                            offset: 0,
                            dims: vec![],
                        }),
                    );
                }
                BoundArg::Scalar { name, value } => {
                    env[0].insert(name.clone(), Value::Scalar(*value));
                }
            }
        }
        let body = kernel
            .body
            .as_ref()
            .ok_or_else(|| ExecError::MissingKernel(kernel.name.clone()))?;
        // Private/local arrays declared in the body allocate scratch buffers;
        // remember how many buffers existed so they can be freed afterwards.
        let base_buffers = self.buffers.len();
        let flow = self.exec_block(body, &mut env, 0)?;
        let _ = flow;
        self.buffers.truncate(base_buffers);
        Ok(())
    }

    fn tick(&mut self, n: u64) -> Result<(), ExecError> {
        self.counts.instructions += n;
        self.steps_this_item += n;
        if self.steps_this_item > self.limits.steps_per_work_item {
            Err(ExecError::StepLimitExceeded)
        } else if self.limits.total_steps > 0 && self.counts.instructions > self.limits.total_steps
        {
            Err(ExecError::TotalStepLimitExceeded)
        } else {
            Ok(())
        }
    }

    // ----- environment ----------------------------------------------------

    fn lookup(&self, env: &Env, name: &str) -> Option<Value> {
        for scope in env.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn assign_var(&mut self, env: &mut Env, name: &str, value: Value) {
        for scope in env.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return;
            }
        }
        // Undeclared (should not happen for sema-clean kernels): declare in the
        // innermost scope so execution can continue.
        env.last_mut()
            .expect("env never empty")
            .insert(name.to_string(), value);
    }

    // ----- statements -------------------------------------------------------

    fn exec_block(
        &mut self,
        block: &Block,
        env: &mut Env,
        depth: usize,
    ) -> Result<Flow, ExecError> {
        env.push(HashMap::new());
        let mut flow = Flow::Normal;
        for stmt in &block.stmts {
            flow = self.exec_stmt(stmt, env, depth)?;
            if !matches!(flow, Flow::Normal) {
                break;
            }
        }
        env.pop();
        Ok(flow)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, env: &mut Env, depth: usize) -> Result<Flow, ExecError> {
        match stmt {
            Stmt::Block(b) => self.exec_block(b, env, depth),
            Stmt::Empty => Ok(Flow::Normal),
            // Error nodes only exist in units that failed to compile, which
            // the driver refuses to launch; reaching one is a logic error
            // surfaced as an unsupported-construct failure, not a panic.
            Stmt::Error(_) => Err(ExecError::Unsupported(
                "parse-error placeholder statement".into(),
            )),
            Stmt::Decl(d) => {
                self.exec_decl(d, env, depth)?;
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e, env, depth)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.counts.branches += 1;
                self.tick(1)?;
                let c = self.eval(cond, env, depth)?.as_bool();
                if c {
                    self.exec_stmt(then_branch, env, depth)
                } else if let Some(e) = else_branch {
                    self.exec_stmt(e, env, depth)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                env.push(HashMap::new());
                if let Some(init) = init {
                    self.exec_stmt(init, env, depth)?;
                }
                let result = loop {
                    self.counts.branches += 1;
                    self.tick(1)?;
                    let keep_going = match cond {
                        Some(c) => self.eval(c, env, depth)?.as_bool(),
                        None => true,
                    };
                    if !keep_going {
                        break Flow::Normal;
                    }
                    match self.exec_stmt(body, env, depth)? {
                        Flow::Break => break Flow::Normal,
                        Flow::Return(v) => break Flow::Return(v),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(step) = step {
                        self.eval(step, env, depth)?;
                    }
                };
                env.pop();
                Ok(result)
            }
            Stmt::While { cond, body } => {
                loop {
                    self.counts.branches += 1;
                    self.tick(1)?;
                    if !self.eval(cond, env, depth)?.as_bool() {
                        break;
                    }
                    match self.exec_stmt(body, env, depth)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::DoWhile { body, cond } => {
                loop {
                    match self.exec_stmt(body, env, depth)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    self.counts.branches += 1;
                    self.tick(1)?;
                    if !self.eval(cond, env, depth)?.as_bool() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Switch { cond, cases } => {
                self.counts.branches += 1;
                self.tick(1)?;
                let scrutinee = self.eval(cond, env, depth)?.as_scalar().as_i64();
                // Find the matching case (or default), then fall through until a
                // break, matching C semantics.
                let mut start = None;
                for (i, case) in cases.iter().enumerate() {
                    match &case.value {
                        Some(v) => {
                            let val = self.eval(v, env, depth)?.as_scalar().as_i64();
                            if val == scrutinee {
                                start = Some(i);
                                break;
                            }
                        }
                        None => {
                            if start.is_none() {
                                start = Some(i);
                            }
                        }
                    }
                }
                if let Some(start) = start {
                    'cases: for case in &cases[start..] {
                        for stmt in &case.body {
                            match self.exec_stmt(stmt, env, depth)? {
                                Flow::Break => break 'cases,
                                Flow::Return(v) => return Ok(Flow::Return(v)),
                                Flow::Normal | Flow::Continue => {}
                            }
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(value) => {
                self.tick(1)?;
                let v = match value {
                    Some(e) => self.eval(e, env, depth)?,
                    None => Value::Void,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    fn exec_decl(&mut self, d: &Declaration, env: &mut Env, depth: usize) -> Result<(), ExecError> {
        for v in &d.vars {
            self.tick(1)?;
            let value = match (&v.ty, &v.init) {
                (Type::Array { .. }, _) => {
                    // Allocate a scratch buffer for the array. Hostile sources
                    // can declare arrays whose element product overflows usize
                    // or is simply absurd; both become a typed error rather
                    // than an allocation panic/OOM.
                    let (elem, lanes, dims) = array_shape(&v.ty);
                    let elements: usize = dims
                        .iter()
                        .try_fold(1usize, |acc, &d| acc.checked_mul(d.max(1)))
                        .filter(|&n| n <= MAX_SCRATCH_ELEMENTS)
                        .ok_or_else(|| {
                            ExecError::ResourceLimitExceeded(format!(
                                "array `{}` requests more than {MAX_SCRATCH_ELEMENTS} elements",
                                v.name
                            ))
                        })?
                        .max(1);
                    let space = if d.address_space == AddressSpace::Local {
                        BufferSpace::Local
                    } else {
                        BufferSpace::Private
                    };
                    let idx = self.buffers.len();
                    self.buffers
                        .push(Buffer::zeroed(elem, lanes, elements, space));
                    Value::Ptr(PtrValue {
                        buffer: idx,
                        offset: 0,
                        dims: if dims.len() > 1 {
                            dims[1..].to_vec()
                        } else {
                            vec![]
                        },
                    })
                }
                (_, Some(init)) => {
                    let val = self.eval(init, env, depth)?;
                    coerce_to_type(val, &v.ty)
                }
                (ty, None) => default_value(ty),
            };
            env.last_mut()
                .expect("env never empty")
                .insert(v.name.clone(), value);
        }
        Ok(())
    }

    // ----- expressions ------------------------------------------------------

    fn eval(&mut self, e: &Expr, env: &mut Env, depth: usize) -> Result<Value, ExecError> {
        match e {
            Expr::IntLit { value, .. } => Ok(Value::int(*value)),
            Expr::Error(_) => Err(ExecError::Unsupported(
                "parse-error placeholder expression".into(),
            )),
            Expr::FloatLit { value, .. } => Ok(Value::float(*value)),
            Expr::CharLit(c) => Ok(Value::int(*c as i64)),
            Expr::StrLit(_) => Ok(Value::int(0)),
            Expr::Ident(name) => self
                .lookup(env, name)
                .or_else(|| builtin_constant_value(name))
                .ok_or_else(|| ExecError::Unsupported(format!("unbound identifier `{name}`"))),
            Expr::Binary { op, lhs, rhs } => {
                self.tick(1)?;
                if op.is_arithmetic() {
                    self.counts.compute_ops += 1;
                }
                if matches!(op, BinOp::LogAnd | BinOp::LogOr) {
                    self.counts.branches += 1;
                    // short-circuit evaluation
                    let l = self.eval(lhs, env, depth)?.as_bool();
                    let result = match op {
                        BinOp::LogAnd => l && self.eval(rhs, env, depth)?.as_bool(),
                        _ => l || self.eval(rhs, env, depth)?.as_bool(),
                    };
                    return Ok(Value::int(i64::from(result)));
                }
                let l = self.eval(lhs, env, depth)?;
                let r = self.eval(rhs, env, depth)?;
                Ok(apply_binop(*op, &l, &r))
            }
            Expr::Unary { op, expr } => {
                self.tick(1)?;
                match op {
                    UnOp::Deref => {
                        let v = self.eval(expr, env, depth)?;
                        if let Value::Ptr(p) = v {
                            Ok(self.load_ptr(&p))
                        } else {
                            Ok(v)
                        }
                    }
                    UnOp::AddrOf => {
                        // Address of an lvalue: produce a pointer when possible.
                        match self.eval_place(expr, env, depth)? {
                            Some(Place::BufferElem { buffer, index, .. }) => {
                                Ok(Value::Ptr(PtrValue {
                                    buffer,
                                    offset: index,
                                    dims: vec![],
                                }))
                            }
                            _ => Ok(Value::int(0)),
                        }
                    }
                    UnOp::PreInc | UnOp::PreDec => {
                        let delta = if *op == UnOp::PreInc { 1 } else { -1 };
                        self.counts.compute_ops += 1;
                        let current = self.eval(expr, env, depth)?;
                        let updated = apply_binop(BinOp::Add, &current, &Value::int(delta));
                        self.store_to(expr, updated.clone(), env, depth)?;
                        Ok(updated)
                    }
                    UnOp::Neg => {
                        self.counts.compute_ops += 1;
                        let v = self.eval(expr, env, depth)?;
                        Ok(map_unary(&v, |s| match s {
                            Scalar::I(i) => Scalar::I(-i),
                            Scalar::F(f) => Scalar::F(-f),
                        }))
                    }
                    UnOp::Plus => self.eval(expr, env, depth),
                    UnOp::Not => {
                        let v = self.eval(expr, env, depth)?;
                        Ok(Value::int(i64::from(!v.as_bool())))
                    }
                    UnOp::BitNot => {
                        self.counts.compute_ops += 1;
                        let v = self.eval(expr, env, depth)?;
                        Ok(map_unary(&v, |s| Scalar::I(!s.as_i64())))
                    }
                }
            }
            Expr::Postfix { expr, inc } => {
                self.tick(1)?;
                self.counts.compute_ops += 1;
                let current = self.eval(expr, env, depth)?;
                let delta = if *inc { 1 } else { -1 };
                let updated = apply_binop(BinOp::Add, &current, &Value::int(delta));
                self.store_to(expr, updated, env, depth)?;
                Ok(current)
            }
            Expr::Assign { op, lhs, rhs } => {
                self.tick(1)?;
                let rhs_val = self.eval(rhs, env, depth)?;
                let value = match op.binary_op() {
                    None => rhs_val,
                    Some(bin) => {
                        self.counts.compute_ops += 1;
                        let current = self.eval(lhs, env, depth)?;
                        apply_binop(bin, &current, &rhs_val)
                    }
                };
                self.store_to(lhs, value.clone(), env, depth)?;
                Ok(value)
            }
            Expr::Conditional {
                cond,
                then_expr,
                else_expr,
            } => {
                self.tick(1)?;
                self.counts.branches += 1;
                if self.eval(cond, env, depth)?.as_bool() {
                    self.eval(then_expr, env, depth)
                } else {
                    self.eval(else_expr, env, depth)
                }
            }
            Expr::Call { callee, args } => self.eval_call(callee, args, env, depth),
            Expr::Index { .. } | Expr::Member { .. } => {
                self.tick(1)?;
                match self.eval_place(e, env, depth)? {
                    Some(place) => Ok(self.load_place(&place, env)),
                    None => Ok(Value::int(0)),
                }
            }
            Expr::Cast { ty, expr } => {
                let v = self.eval(expr, env, depth)?;
                Ok(coerce_to_type(v, ty))
            }
            Expr::VectorLit { ty, elems } => {
                self.tick(1)?;
                let lanes = ty.lanes().unwrap_or(1) as usize;
                let elem_ty = ty.element_scalar().unwrap_or(ScalarType::Float);
                let mut values = Vec::with_capacity(lanes);
                for e in elems {
                    let v = self.eval(e, env, depth)?;
                    for lane in 0..v.lanes() {
                        values.push(v.lane(lane).convert_to(elem_ty));
                    }
                }
                if values.is_empty() {
                    values.push(Scalar::zero_of(elem_ty));
                }
                // Broadcast a single element to all lanes.
                while values.len() < lanes {
                    let last = *values.last().expect("non-empty");
                    values.push(last);
                }
                values.truncate(lanes);
                Ok(Value::Vector(values))
            }
            Expr::SizeOf { ty, expr } => {
                let size = match (ty, expr) {
                    (Some(ty), _) => ty.size_bytes(),
                    (None, Some(_)) => 4,
                    (None, None) => 4,
                };
                Ok(Value::int(size as i64))
            }
            Expr::Comma(elems) => {
                let mut last = Value::Void;
                for e in elems {
                    last = self.eval(e, env, depth)?;
                }
                Ok(last)
            }
        }
    }

    /// Evaluate an expression used as an assignment target.
    fn store_to(
        &mut self,
        lhs: &Expr,
        value: Value,
        env: &mut Env,
        depth: usize,
    ) -> Result<(), ExecError> {
        match self.eval_place(lhs, env, depth)? {
            Some(Place::Var { name, lane }) => {
                match lane {
                    None => self.assign_var(env, &name, value),
                    Some(lane) => {
                        let mut current = self.lookup(env, &name).unwrap_or(Value::int(0));
                        if let Value::Vector(v) = &mut current {
                            if lane < v.len() {
                                v[lane] = value.as_scalar();
                            }
                        } else {
                            current = value;
                        }
                        self.assign_var(env, &name, current);
                    }
                }
                Ok(())
            }
            Some(Place::BufferElem {
                buffer,
                index,
                lane,
            }) => {
                self.record_access(buffer, index, true);
                if let Some(buf) = self.buffers.get_mut(buffer) {
                    match lane {
                        None => buf.store(index, &value),
                        Some(lane) => buf.store_lane(index, lane, value.as_scalar()),
                    }
                }
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// Resolve an expression to a place, if it denotes one.
    fn eval_place(
        &mut self,
        e: &Expr,
        env: &mut Env,
        depth: usize,
    ) -> Result<Option<Place>, ExecError> {
        match e {
            Expr::Ident(name) => Ok(Some(Place::Var {
                name: name.clone(),
                lane: None,
            })),
            Expr::Unary {
                op: UnOp::Deref,
                expr,
            } => {
                let v = self.eval(expr, env, depth)?;
                if let Value::Ptr(p) = v {
                    Ok(Some(Place::BufferElem {
                        buffer: p.buffer,
                        index: p.offset,
                        lane: None,
                    }))
                } else {
                    Ok(None)
                }
            }
            Expr::Index { base, index } => {
                let base_val = self.eval(base, env, depth)?;
                let idx = self.eval(index, env, depth)?.as_scalar().as_i64();
                match base_val {
                    Value::Ptr(p) => {
                        if p.dims.len() > 1 {
                            // Multi-dimensional array: peeling handled in eval()
                            // when loading; as a place we flatten fully only at
                            // the innermost level, so compute the flat index.
                            let stride: usize = p.dims[1..].iter().product();
                            let _ = stride;
                        }
                        let stride: i64 = p.dims.iter().product::<usize>().max(1) as i64;
                        let flat = p.offset + idx * stride;
                        if !p.dims.is_empty() && stride > 1 {
                            // Still an aggregate; no scalar place.
                            Ok(Some(Place::BufferElem {
                                buffer: p.buffer,
                                index: flat,
                                lane: None,
                            }))
                        } else {
                            let coalesced = self.is_coalesced_index(idx);
                            if coalesced {
                                self.counts.coalesced_accesses += 1;
                            }
                            Ok(Some(Place::BufferElem {
                                buffer: p.buffer,
                                index: flat,
                                lane: None,
                            }))
                        }
                    }
                    Value::Vector(_) => {
                        // Indexing a vector value: treat as lane access on the
                        // base variable when the base is a simple identifier.
                        if let Expr::Ident(name) = &**base {
                            Ok(Some(Place::Var {
                                name: name.clone(),
                                lane: Some(idx.max(0) as usize),
                            }))
                        } else {
                            Ok(None)
                        }
                    }
                    _ => Ok(None),
                }
            }
            Expr::Member { base, member, .. } => {
                if !is_vector_component(member) {
                    // Struct member accesses are not supported as stores; loads
                    // return 0 via eval_place -> None.
                    return Ok(None);
                }
                let lane = component_lane(member);
                match &**base {
                    Expr::Ident(name) => Ok(Some(Place::Var {
                        name: name.clone(),
                        lane: Some(lane),
                    })),
                    Expr::Index { .. } => {
                        let inner = self.eval_place(base, env, depth)?;
                        match inner {
                            Some(Place::BufferElem { buffer, index, .. }) => {
                                Ok(Some(Place::BufferElem {
                                    buffer,
                                    index,
                                    lane: Some(lane),
                                }))
                            }
                            other => Ok(other),
                        }
                    }
                    _ => Ok(None),
                }
            }
            _ => Ok(None),
        }
    }

    fn load_place(&mut self, place: &Place, env: &Env) -> Value {
        match place {
            Place::Var { name, lane } => {
                let v = self.lookup(env, name).unwrap_or(Value::int(0));
                match lane {
                    None => v,
                    Some(l) => Value::Scalar(v.lane(*l)),
                }
            }
            Place::BufferElem {
                buffer,
                index,
                lane,
            } => {
                self.record_access(*buffer, *index, false);
                match self.buffers.get(*buffer) {
                    None => Value::int(0),
                    Some(buf) => match lane {
                        None => buf.load(*index),
                        Some(l) => Value::Scalar(buf.load_lane(*index, *l)),
                    },
                }
            }
        }
    }

    fn load_ptr(&mut self, p: &PtrValue) -> Value {
        self.record_access(p.buffer, p.offset, false);
        self.buffers
            .get(p.buffer)
            .map(|b| b.load(p.offset))
            .unwrap_or(Value::int(0))
    }

    fn record_access(&mut self, buffer: usize, index: i64, is_store: bool) {
        let Some(buf) = self.buffers.get(buffer) else {
            return;
        };
        if index < 0 || index as usize >= buf.elements().max(1) {
            self.counts.out_of_bounds += 1;
        }
        match buf.space {
            BufferSpace::Global | BufferSpace::Constant => {
                if is_store {
                    self.counts.global_stores += 1;
                } else {
                    self.counts.global_loads += 1;
                }
            }
            BufferSpace::Local => self.counts.local_accesses += 1,
            BufferSpace::Private => {}
        }
    }

    /// Heuristic: an access whose element index equals the linear global id
    /// plus/minus a small constant is coalesced across neighbouring work items.
    fn is_coalesced_index(&self, idx: i64) -> bool {
        let gid = self.work_item.global[0] as i64
            + (self.work_item.global[1] * self.work_item.global_size[0]) as i64;
        (idx - gid).abs() <= 4
    }

    // ----- calls ------------------------------------------------------------

    fn eval_call(
        &mut self,
        callee: &str,
        args: &[Expr],
        env: &mut Env,
        depth: usize,
    ) -> Result<Value, ExecError> {
        self.tick(1)?;
        // Work-item functions first (cheap, extremely common).
        if let Some(kind) = builtin_function_kind(callee) {
            return self.eval_builtin(callee, kind, args, env, depth);
        }
        // User-defined function.
        let func = self
            .unit
            .function(callee)
            .ok_or_else(|| ExecError::Unsupported(format!("call to unknown function `{callee}`")))?
            .clone();
        if depth > 16 {
            return Err(ExecError::Unsupported("call depth exceeded".into()));
        }
        let mut arg_values = Vec::with_capacity(args.len());
        for a in args {
            arg_values.push(self.eval(a, env, depth)?);
        }
        let mut callee_env: Env = vec![HashMap::new()];
        // The callee still needs access to file-scope constants; copy the
        // outermost scope (cheap: only globals and kernel args live there).
        callee_env[0] = env[0].clone();
        callee_env.push(HashMap::new());
        for (param, value) in func.params.iter().zip(arg_values) {
            let v = coerce_to_type(value, &param.ty);
            callee_env
                .last_mut()
                .expect("scope")
                .insert(param.name.clone(), v);
        }
        let body = match &func.body {
            Some(b) => b.clone(),
            None => return Ok(Value::int(0)),
        };
        match self.exec_block(&body, &mut callee_env, depth + 1)? {
            Flow::Return(v) => Ok(coerce_to_type(v, &func.return_type)),
            _ => Ok(Value::int(0)),
        }
    }

    fn eval_builtin(
        &mut self,
        callee: &str,
        kind: BuiltinKind,
        args: &[Expr],
        env: &mut Env,
        depth: usize,
    ) -> Result<Value, ExecError> {
        match kind {
            BuiltinKind::WorkItem => {
                let dim = if args.is_empty() {
                    0
                } else {
                    self.eval(&args[0], env, depth)?
                        .as_scalar()
                        .as_i64()
                        .clamp(0, 2) as usize
                };
                let wi = self.work_item;
                let v = match callee {
                    "get_global_id" => wi.global[dim] as i64,
                    "get_local_id" => wi.local[dim] as i64,
                    "get_group_id" => wi.group[dim] as i64,
                    "get_global_size" => wi.global_size[dim] as i64,
                    "get_local_size" => wi.local_size[dim] as i64,
                    "get_num_groups" => wi.num_groups[dim] as i64,
                    "get_global_offset" => 0,
                    "get_work_dim" => {
                        if wi.global_size[1] > 1 {
                            2
                        } else {
                            1
                        }
                    }
                    _ => 0,
                };
                Ok(Value::int(v))
            }
            BuiltinKind::Sync => {
                self.counts.barriers += 1;
                // Evaluate arguments for their side effects (they rarely have
                // any) and continue: sequential execution makes barriers no-ops.
                for a in args {
                    self.eval(a, env, depth)?;
                }
                Ok(Value::Void)
            }
            BuiltinKind::Math => {
                self.counts.math_calls += 1;
                self.counts.compute_ops += 1;
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(a, env, depth)?);
                }
                Ok(apply_math(callee, &values))
            }
            BuiltinKind::Atomic => {
                self.counts.compute_ops += 1;
                let ptr = self.eval(&args[0], env, depth)?;
                let operand = if args.len() > 1 {
                    self.eval(&args[1], env, depth)?.as_scalar().as_i64()
                } else {
                    1
                };
                if let Value::Ptr(p) = ptr {
                    let old = self.load_ptr(&p).as_scalar().as_i64();
                    let new = match callee
                        .trim_start_matches("atomic_")
                        .trim_start_matches("atom_")
                    {
                        "add" => old + operand,
                        "sub" => old - operand,
                        "inc" => old + 1,
                        "dec" => old - 1,
                        "xchg" => operand,
                        "min" => old.min(operand),
                        "max" => old.max(operand),
                        "and" => old & operand,
                        "or" => old | operand,
                        "xor" => old ^ operand,
                        "cmpxchg" => {
                            let desired = if args.len() > 2 {
                                self.eval(&args[2], env, depth)?.as_scalar().as_i64()
                            } else {
                                operand
                            };
                            if old == operand {
                                desired
                            } else {
                                old
                            }
                        }
                        _ => old,
                    };
                    self.record_access(p.buffer, p.offset, true);
                    if let Some(buf) = self.buffers.get_mut(p.buffer) {
                        buf.store(p.offset, &Value::int(new));
                    }
                    Ok(Value::int(old))
                } else {
                    Ok(Value::int(0))
                }
            }
            BuiltinKind::Convert => {
                let v = if args.is_empty() {
                    Value::int(0)
                } else {
                    self.eval(&args[0], env, depth)?
                };
                // convert_<type> / as_<type>: reinterpretation niceties are not
                // modelled; values keep their numeric content.
                let target = callee
                    .trim_start_matches("convert_")
                    .trim_start_matches("as_");
                match Type::from_name(target.trim_end_matches("_sat").trim_end_matches("_rte")) {
                    Some(ty) => Ok(coerce_to_type(v, &ty)),
                    None => Ok(v),
                }
            }
            BuiltinKind::VectorData => {
                // vloadN(offset, ptr) and vstoreN(data, offset, ptr).
                let lanes: usize = callee
                    .trim_start_matches("vload")
                    .trim_start_matches("vstore")
                    .parse()
                    .unwrap_or(4);
                if callee.starts_with("vload") && args.len() >= 2 {
                    let offset = self.eval(&args[0], env, depth)?.as_scalar().as_i64();
                    let ptr = self.eval(&args[1], env, depth)?;
                    if let Value::Ptr(p) = ptr {
                        let mut v = Vec::with_capacity(lanes);
                        for lane in 0..lanes {
                            let pv = PtrValue {
                                buffer: p.buffer,
                                offset: offset * lanes as i64 + lane as i64,
                                dims: vec![],
                            };
                            v.push(self.load_ptr(&pv).as_scalar());
                        }
                        return Ok(Value::Vector(v));
                    }
                    return Ok(Value::int(0));
                }
                if callee.starts_with("vstore") && args.len() >= 3 {
                    let data = self.eval(&args[0], env, depth)?;
                    let offset = self.eval(&args[1], env, depth)?.as_scalar().as_i64();
                    let ptr = self.eval(&args[2], env, depth)?;
                    if let Value::Ptr(p) = ptr {
                        for lane in 0..lanes {
                            let index = offset * lanes as i64 + lane as i64;
                            self.record_access(p.buffer, index, true);
                            if let Some(buf) = self.buffers.get_mut(p.buffer) {
                                buf.store(index, &Value::Scalar(data.lane(lane)));
                            }
                        }
                    }
                    return Ok(Value::Void);
                }
                Ok(Value::int(0))
            }
            BuiltinKind::Image | BuiltinKind::Async | BuiltinKind::Other => {
                // Evaluate arguments for side effects; images and async copies
                // are outside the supported subset (CLgen never generates them).
                for a in args {
                    self.eval(a, env, depth)?;
                }
                Ok(Value::int(0))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// helpers

fn array_shape(ty: &Type) -> (ScalarType, usize, Vec<usize>) {
    let mut dims = Vec::new();
    let mut current = ty;
    while let Type::Array { elem, size } = current {
        dims.push(size.unwrap_or(1));
        current = elem;
    }
    dims.reverse();
    let elem = current.element_scalar().unwrap_or(ScalarType::Float);
    let lanes = current.lanes().unwrap_or(1) as usize;
    (elem, lanes, dims)
}

fn default_value(ty: &Type) -> Value {
    match ty {
        Type::Vector(s, n) => Value::Vector(vec![Scalar::zero_of(*s); *n as usize]),
        Type::Scalar(s) => Value::Scalar(Scalar::zero_of(*s)),
        _ => Value::int(0),
    }
}

fn coerce_to_type(v: Value, ty: &Type) -> Value {
    match ty {
        Type::Scalar(s) => Value::Scalar(v.as_scalar().convert_to(*s)),
        Type::Vector(s, n) => {
            let lanes = *n as usize;
            let mut out = Vec::with_capacity(lanes);
            for i in 0..lanes {
                out.push(v.lane(i).convert_to(*s));
            }
            // broadcast scalars
            if v.lanes() == 1 {
                out = vec![v.as_scalar().convert_to(*s); lanes];
            }
            Value::Vector(out)
        }
        _ => v,
    }
}

fn map_unary(v: &Value, f: impl Fn(Scalar) -> Scalar) -> Value {
    match v {
        Value::Vector(lanes) => Value::Vector(lanes.iter().map(|s| f(*s)).collect()),
        other => Value::Scalar(f(other.as_scalar())),
    }
}

fn map_binary(a: &Value, b: &Value, f: impl Fn(Scalar, Scalar) -> Scalar) -> Value {
    let lanes = a.lanes().max(b.lanes());
    if lanes == 1 {
        Value::Scalar(f(a.as_scalar(), b.as_scalar()))
    } else {
        Value::Vector((0..lanes).map(|i| f(a.lane(i), b.lane(i))).collect())
    }
}

fn scalar_binop(op: BinOp, a: Scalar, b: Scalar) -> Scalar {
    use BinOp::*;
    let float = a.is_float() || b.is_float();
    match op {
        Add | Sub | Mul | Div | Rem => {
            if float {
                let (x, y) = (a.as_f64(), b.as_f64());
                Scalar::F(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => {
                        if y == 0.0 {
                            0.0
                        } else {
                            x / y
                        }
                    }
                    _ => {
                        if y == 0.0 {
                            0.0
                        } else {
                            x % y
                        }
                    }
                })
            } else {
                let (x, y) = (a.as_i64(), b.as_i64());
                Scalar::I(match op {
                    Add => x.wrapping_add(y),
                    Sub => x.wrapping_sub(y),
                    Mul => x.wrapping_mul(y),
                    Div => {
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_div(y)
                        }
                    }
                    _ => {
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_rem(y)
                        }
                    }
                })
            }
        }
        Shl | Shr | BitAnd | BitOr | BitXor => {
            let (x, y) = (a.as_i64(), b.as_i64());
            Scalar::I(match op {
                Shl => x.wrapping_shl((y & 63) as u32),
                Shr => x.wrapping_shr((y & 63) as u32),
                BitAnd => x & y,
                BitOr => x | y,
                _ => x ^ y,
            })
        }
        Lt | Gt | Le | Ge | Eq | Ne => {
            let result = if float {
                let (x, y) = (a.as_f64(), b.as_f64());
                match op {
                    Lt => x < y,
                    Gt => x > y,
                    Le => x <= y,
                    Ge => x >= y,
                    Eq => x == y,
                    _ => x != y,
                }
            } else {
                let (x, y) = (a.as_i64(), b.as_i64());
                match op {
                    Lt => x < y,
                    Gt => x > y,
                    Le => x <= y,
                    Ge => x >= y,
                    Eq => x == y,
                    _ => x != y,
                }
            };
            Scalar::I(i64::from(result))
        }
        LogAnd => Scalar::I(i64::from(a.as_bool() && b.as_bool())),
        LogOr => Scalar::I(i64::from(a.as_bool() || b.as_bool())),
    }
}

fn apply_binop(op: BinOp, a: &Value, b: &Value) -> Value {
    // Pointer arithmetic: ptr + int adjusts the element offset.
    if let (Value::Ptr(p), other) = (a, b) {
        if matches!(op, BinOp::Add | BinOp::Sub) {
            let delta = other.as_scalar().as_i64();
            let offset = if op == BinOp::Add {
                p.offset + delta
            } else {
                p.offset - delta
            };
            return Value::Ptr(PtrValue {
                buffer: p.buffer,
                offset,
                dims: p.dims.clone(),
            });
        }
    }
    if let (other, Value::Ptr(p)) = (a, b) {
        if op == BinOp::Add {
            return Value::Ptr(PtrValue {
                buffer: p.buffer,
                offset: p.offset + other.as_scalar().as_i64(),
                dims: p.dims.clone(),
            });
        }
    }
    map_binary(a, b, |x, y| scalar_binop(op, x, y))
}

fn builtin_constant_value(name: &str) -> Option<Value> {
    Some(match name {
        "M_PI" | "M_PI_F" => Value::float(std::f64::consts::PI),
        "M_E" | "M_E_F" => Value::float(std::f64::consts::E),
        "MAXFLOAT" | "FLT_MAX" | "HUGE_VALF" | "INFINITY" => Value::float(f32::MAX as f64),
        "FLT_MIN" => Value::float(f32::MIN_POSITIVE as f64),
        "FLT_EPSILON" => Value::float(f32::EPSILON as f64),
        "DBL_MAX" => Value::float(f64::MAX),
        "DBL_MIN" => Value::float(f64::MIN_POSITIVE),
        "NAN" => Value::float(f64::NAN),
        "INT_MAX" => Value::int(i32::MAX as i64),
        "INT_MIN" => Value::int(i32::MIN as i64),
        "UINT_MAX" => Value::int(u32::MAX as i64),
        "LONG_MAX" => Value::int(i64::MAX),
        "LONG_MIN" => Value::int(i64::MIN),
        "CHAR_BIT" => Value::int(8),
        "CLK_LOCAL_MEM_FENCE" => Value::int(1),
        "CLK_GLOBAL_MEM_FENCE" => Value::int(2),
        "true" => Value::int(1),
        "false" | "NULL" => Value::int(0),
        _ => return None,
    })
}

fn apply_math(name: &str, args: &[Value]) -> Value {
    let a = args.first().cloned().unwrap_or(Value::float(0.0));
    let b = args.get(1).cloned().unwrap_or(Value::float(0.0));
    let c = args.get(2).cloned().unwrap_or(Value::float(0.0));
    let unary = |f: fn(f64) -> f64| map_unary(&a, |s| Scalar::F(f(s.as_f64())));
    match name {
        "sqrt" | "native_sqrt" | "half_sqrt" => unary(f64::sqrt),
        "rsqrt" | "native_rsqrt" => unary(|x| 1.0 / x.sqrt().max(1e-30)),
        "cbrt" => unary(f64::cbrt),
        "fabs" => unary(f64::abs),
        "abs" => map_unary(&a, |s| match s {
            Scalar::I(i) => Scalar::I(i.abs()),
            Scalar::F(f) => Scalar::F(f.abs()),
        }),
        "abs_diff" => map_binary(&a, &b, |x, y| Scalar::I((x.as_i64() - y.as_i64()).abs())),
        "exp" | "native_exp" | "half_exp" => unary(f64::exp),
        "exp2" => unary(f64::exp2),
        "exp10" => unary(|x| 10f64.powf(x)),
        "log" | "native_log" | "half_log" => unary(|x| x.max(1e-30).ln()),
        "log2" => unary(|x| x.max(1e-30).log2()),
        "log10" => unary(|x| x.max(1e-30).log10()),
        "sin" | "native_sin" | "sinpi" => unary(f64::sin),
        "cos" | "native_cos" | "cospi" => unary(f64::cos),
        "tan" => unary(f64::tan),
        "sinh" => unary(f64::sinh),
        "cosh" => unary(f64::cosh),
        "tanh" => unary(f64::tanh),
        "asin" => unary(|x| x.clamp(-1.0, 1.0).asin()),
        "acos" => unary(|x| x.clamp(-1.0, 1.0).acos()),
        "atan" => unary(f64::atan),
        "atan2" => map_binary(&a, &b, |x, y| Scalar::F(x.as_f64().atan2(y.as_f64()))),
        "floor" => unary(f64::floor),
        "ceil" => unary(f64::ceil),
        "round" | "rint" => unary(f64::round),
        "trunc" => unary(f64::trunc),
        "fract" => unary(f64::fract),
        "sign" => unary(f64::signum),
        "degrees" => unary(f64::to_degrees),
        "radians" => unary(f64::to_radians),
        "fmod" | "remainder" => map_binary(&a, &b, |x, y| {
            let d = y.as_f64();
            Scalar::F(if d == 0.0 { 0.0 } else { x.as_f64() % d })
        }),
        "pow" | "powr" | "pown" | "native_powr" | "half_powr" => {
            map_binary(&a, &b, |x, y| Scalar::F(x.as_f64().powf(y.as_f64())))
        }
        "fmin" => map_binary(&a, &b, |x, y| Scalar::F(x.as_f64().min(y.as_f64()))),
        "fmax" | "maxmag" => map_binary(&a, &b, |x, y| Scalar::F(x.as_f64().max(y.as_f64()))),
        "min" | "minmag" => map_binary(&a, &b, |x, y| {
            if x.is_float() || y.is_float() {
                Scalar::F(x.as_f64().min(y.as_f64()))
            } else {
                Scalar::I(x.as_i64().min(y.as_i64()))
            }
        }),
        "max" => map_binary(&a, &b, |x, y| {
            if x.is_float() || y.is_float() {
                Scalar::F(x.as_f64().max(y.as_f64()))
            } else {
                Scalar::I(x.as_i64().max(y.as_i64()))
            }
        }),
        "clamp" => {
            let lanes = a.lanes().max(b.lanes()).max(c.lanes());
            let f = |i: usize| {
                let v = a.lane(i).as_f64();
                let lo = b.lane(i).as_f64();
                let hi = c.lane(i).as_f64();
                Scalar::F(v.clamp(lo, hi.max(lo)))
            };
            if lanes == 1 {
                Value::Scalar(f(0))
            } else {
                Value::Vector((0..lanes).map(f).collect())
            }
        }
        "mix" => {
            let lanes = a.lanes().max(b.lanes()).max(c.lanes());
            let f = |i: usize| {
                let x = a.lane(i).as_f64();
                let y = b.lane(i).as_f64();
                let t = c.lane(i).as_f64();
                Scalar::F(x + (y - x) * t)
            };
            if lanes == 1 {
                Value::Scalar(f(0))
            } else {
                Value::Vector((0..lanes).map(f).collect())
            }
        }
        "step" => map_binary(&a, &b, |edge, x| {
            Scalar::F(if x.as_f64() < edge.as_f64() { 0.0 } else { 1.0 })
        }),
        "smoothstep" => {
            let f = |i: usize| {
                let e0 = a.lane(i).as_f64();
                let e1 = b.lane(i).as_f64();
                let x = c.lane(i).as_f64();
                let t = ((x - e0) / (e1 - e0).max(1e-30)).clamp(0.0, 1.0);
                Scalar::F(t * t * (3.0 - 2.0 * t))
            };
            let lanes = a.lanes().max(c.lanes());
            if lanes == 1 {
                Value::Scalar(f(0))
            } else {
                Value::Vector((0..lanes).map(f).collect())
            }
        }
        "mad" | "fma" | "mad24" => {
            let lanes = a.lanes().max(b.lanes()).max(c.lanes());
            let f =
                |i: usize| Scalar::F(a.lane(i).as_f64() * b.lane(i).as_f64() + c.lane(i).as_f64());
            if lanes == 1 {
                Value::Scalar(f(0))
            } else {
                Value::Vector((0..lanes).map(f).collect())
            }
        }
        "mul24" | "mul_hi" => map_binary(&a, &b, |x, y| {
            Scalar::I(x.as_i64().wrapping_mul(y.as_i64()))
        }),
        "hadd" | "rhadd" => map_binary(&a, &b, |x, y| Scalar::I((x.as_i64() + y.as_i64()) / 2)),
        "rotate" => map_binary(&a, &b, |x, y| {
            Scalar::I(x.as_i64().rotate_left((y.as_i64() & 63) as u32))
        }),
        "clz" => map_unary(&a, |s| {
            Scalar::I(i64::from((s.as_i64() as u32).leading_zeros()))
        }),
        "popcount" => map_unary(&a, |s| Scalar::I(i64::from(s.as_i64().count_ones()))),
        "isnan" => map_unary(&a, |s| Scalar::I(i64::from(s.as_f64().is_nan()))),
        "isinf" => map_unary(&a, |s| Scalar::I(i64::from(s.as_f64().is_infinite()))),
        "isfinite" => map_unary(&a, |s| Scalar::I(i64::from(s.as_f64().is_finite()))),
        "isequal" => map_binary(&a, &b, |x, y| {
            Scalar::I(i64::from(x.as_f64() == y.as_f64()))
        }),
        "isnotequal" => map_binary(&a, &b, |x, y| {
            Scalar::I(i64::from(x.as_f64() != y.as_f64()))
        }),
        "isgreater" => map_binary(&a, &b, |x, y| Scalar::I(i64::from(x.as_f64() > y.as_f64()))),
        "isless" => map_binary(&a, &b, |x, y| Scalar::I(i64::from(x.as_f64() < y.as_f64()))),
        "any" => Value::int(i64::from((0..a.lanes()).any(|i| a.lane(i).as_bool()))),
        "all" => Value::int(i64::from((0..a.lanes()).all(|i| a.lane(i).as_bool()))),
        "select" => {
            let lanes = a.lanes().max(b.lanes()).max(c.lanes());
            let f = |i: usize| {
                if c.lane(i).as_bool() {
                    b.lane(i)
                } else {
                    a.lane(i)
                }
            };
            if lanes == 1 {
                Value::Scalar(f(0))
            } else {
                Value::Vector((0..lanes).map(f).collect())
            }
        }
        "bitselect" => map_binary(&a, &b, |x, y| Scalar::I(x.as_i64() ^ y.as_i64())),
        "dot" => {
            let lanes = a.lanes().max(b.lanes());
            let mut acc = 0.0;
            for i in 0..lanes {
                acc += a.lane(i).as_f64() * b.lane(i).as_f64();
            }
            Value::float(acc)
        }
        "cross" => {
            let ax = a.lane(0).as_f64();
            let ay = a.lane(1).as_f64();
            let az = a.lane(2).as_f64();
            let bx = b.lane(0).as_f64();
            let by = b.lane(1).as_f64();
            let bz = b.lane(2).as_f64();
            Value::Vector(vec![
                Scalar::F(ay * bz - az * by),
                Scalar::F(az * bx - ax * bz),
                Scalar::F(ax * by - ay * bx),
                Scalar::F(0.0),
            ])
        }
        "length" | "fast_length" => {
            let mut acc = 0.0;
            for i in 0..a.lanes() {
                acc += a.lane(i).as_f64().powi(2);
            }
            Value::float(acc.sqrt())
        }
        "distance" | "fast_distance" => {
            let mut acc = 0.0;
            for i in 0..a.lanes().max(b.lanes()) {
                acc += (a.lane(i).as_f64() - b.lane(i).as_f64()).powi(2);
            }
            Value::float(acc.sqrt())
        }
        "normalize" | "fast_normalize" => {
            let mut acc = 0.0;
            for i in 0..a.lanes() {
                acc += a.lane(i).as_f64().powi(2);
            }
            let len = acc.sqrt().max(1e-30);
            map_unary(&a, |s| Scalar::F(s.as_f64() / len))
        }
        "ldexp" => map_binary(&a, &b, |x, y| {
            Scalar::F(x.as_f64() * 2f64.powi(y.as_i64() as i32))
        }),
        "hypot" => map_binary(&a, &b, |x, y| Scalar::F(x.as_f64().hypot(y.as_f64()))),
        "copysign" => map_binary(&a, &b, |x, y| Scalar::F(x.as_f64().copysign(y.as_f64()))),
        "nextafter" => a,
        "native_divide" => map_binary(&a, &b, |x, y| {
            let d = y.as_f64();
            Scalar::F(if d == 0.0 { 0.0 } else { x.as_f64() / d })
        }),
        "native_recip" | "half_recip" => unary(|x| if x == 0.0 { 0.0 } else { 1.0 / x }),
        "frexp" => a,
        _ => a,
    }
}

fn component_lane(member: &str) -> usize {
    match member {
        "x" => 0,
        "y" => 1,
        "z" => 2,
        "w" => 3,
        "lo" | "even" => 0,
        "hi" | "odd" => 1,
        _ => {
            if let Some(rest) = member
                .strip_prefix('s')
                .or_else(|| member.strip_prefix('S'))
            {
                usize::from_str_radix(rest, 16).unwrap_or(0)
            } else {
                0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_frontend::parser::parse;

    fn run_kernel(
        src: &str,
        kernel: &str,
        args: Vec<ArgBinding>,
        ndrange: NDRange,
    ) -> LaunchResult {
        let parsed = parse(src);
        assert!(parsed.is_ok(), "{}", parsed.diagnostics);
        execute(&parsed.unit, kernel, args, ndrange, &ExecLimits::default())
            .expect("execution failed")
    }

    fn float_buffer(values: &[f64]) -> Buffer {
        let mut b = Buffer::zeroed(ScalarType::Float, 1, values.len(), BufferSpace::Global);
        for (i, v) in values.iter().enumerate() {
            b.store(i as i64, &Value::float(*v));
        }
        b
    }

    fn buffer_values(b: &Buffer) -> Vec<f64> {
        (0..b.elements())
            .map(|i| b.load(i as i64).as_scalar().as_f64())
            .collect()
    }

    #[test]
    fn vector_add_executes_correctly() {
        let src = "__kernel void A(__global float* a, __global float* b, __global float* c, const int d) {
            int e = get_global_id(0);
            if (e < d) { c[e] = a[e] + b[e]; }
        }";
        let n = 8;
        let a = float_buffer(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = float_buffer(&[10.0; 8]);
        let c = float_buffer(&[0.0; 8]);
        let result = run_kernel(
            src,
            "A",
            vec![
                ArgBinding::GlobalBuffer(a),
                ArgBinding::GlobalBuffer(b),
                ArgBinding::GlobalBuffer(c),
                ArgBinding::Scalar(Scalar::I(n as i64)),
            ],
            NDRange::linear(n, 4),
        );
        let ArgBinding::GlobalBuffer(c_out) = &result.args[2] else {
            panic!()
        };
        assert_eq!(
            buffer_values(c_out),
            vec![11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0, 18.0]
        );
        assert_eq!(result.counts.work_items_executed, 8);
        assert!(result.counts.global_loads >= 16);
        assert!(result.counts.global_stores >= 8);
        assert!(result.counts.coalesced_accesses > 0);
    }

    #[test]
    fn guard_prevents_out_of_range_writes() {
        let src = "__kernel void A(__global float* a, const int n) {
            int i = get_global_id(0);
            if (i < n) { a[i] = 1.0f; }
        }";
        let a = float_buffer(&[0.0; 4]);
        let result = run_kernel(
            src,
            "A",
            vec![
                ArgBinding::GlobalBuffer(a),
                ArgBinding::Scalar(Scalar::I(2)),
            ],
            NDRange::linear(4, 2),
        );
        let ArgBinding::GlobalBuffer(out) = &result.args[0] else {
            panic!()
        };
        assert_eq!(buffer_values(out), vec![1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn saxpy_with_helper_function() {
        let src = "inline float A(float a) { return 3.5f * a; }
        __kernel void B(__global float* b, __global float* c, const int d) {
            unsigned int e = get_global_id(0);
            if (e < d) { c[e] += A(b[e]); }
        }";
        let b = float_buffer(&[2.0, 4.0]);
        let c = float_buffer(&[1.0, 1.0]);
        let result = run_kernel(
            src,
            "B",
            vec![
                ArgBinding::GlobalBuffer(b),
                ArgBinding::GlobalBuffer(c),
                ArgBinding::Scalar(Scalar::I(2)),
            ],
            NDRange::linear(2, 2),
        );
        let ArgBinding::GlobalBuffer(out) = &result.args[1] else {
            panic!()
        };
        assert_eq!(buffer_values(out), vec![8.0, 15.0]);
    }

    #[test]
    fn for_loop_matmul() {
        // 2x2 matrix multiply with a 2-D NDRange.
        let src = "__kernel void A(__global float* a, __global float* b, __global float* c, const int w) {
            int row = get_global_id(1);
            int col = get_global_id(0);
            float acc = 0.0f;
            for (int k = 0; k < w; k++) {
                acc += a[row * w + k] * b[k * w + col];
            }
            c[row * w + col] = acc;
        }";
        let a = float_buffer(&[1.0, 2.0, 3.0, 4.0]);
        let b = float_buffer(&[5.0, 6.0, 7.0, 8.0]);
        let c = float_buffer(&[0.0; 4]);
        let result = run_kernel(
            src,
            "A",
            vec![
                ArgBinding::GlobalBuffer(a),
                ArgBinding::GlobalBuffer(b),
                ArgBinding::GlobalBuffer(c),
                ArgBinding::Scalar(Scalar::I(2)),
            ],
            NDRange::two_d(2, 2, 2, 2),
        );
        let ArgBinding::GlobalBuffer(out) = &result.args[2] else {
            panic!()
        };
        assert_eq!(buffer_values(out), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn local_memory_and_barrier() {
        // Copy via local memory; with sequential execution this is exact.
        let src = "__kernel void A(__global float* in, __global float* out, __local float* tmp) {
            int lid = get_local_id(0);
            int gid = get_global_id(0);
            tmp[lid] = in[gid] * 2.0f;
            barrier(CLK_LOCAL_MEM_FENCE);
            out[gid] = tmp[lid];
        }";
        let input = float_buffer(&[1.0, 2.0, 3.0, 4.0]);
        let output = float_buffer(&[0.0; 4]);
        let result = run_kernel(
            src,
            "A",
            vec![
                ArgBinding::GlobalBuffer(input),
                ArgBinding::GlobalBuffer(output),
                ArgBinding::LocalElements(2),
            ],
            NDRange::linear(4, 2),
        );
        let ArgBinding::GlobalBuffer(out) = &result.args[1] else {
            panic!()
        };
        assert_eq!(buffer_values(out), vec![2.0, 4.0, 6.0, 8.0]);
        assert_eq!(result.counts.barriers, 4);
        assert!(result.counts.local_accesses >= 8);
    }

    #[test]
    fn atomic_histogram() {
        let src = "__kernel void A(__global uint* data, __global uint* hist, const int n) {
            int i = get_global_id(0);
            if (i < n) { atomic_inc(&hist[data[i] % 4u]); }
        }";
        let mut data = Buffer::zeroed(ScalarType::UInt, 1, 8, BufferSpace::Global);
        for (i, v) in [0, 1, 2, 3, 0, 1, 0, 2].iter().enumerate() {
            data.store(i as i64, &Value::int(*v));
        }
        let hist = Buffer::zeroed(ScalarType::UInt, 1, 4, BufferSpace::Global);
        let result = run_kernel(
            src,
            "A",
            vec![
                ArgBinding::GlobalBuffer(data),
                ArgBinding::GlobalBuffer(hist),
                ArgBinding::Scalar(Scalar::I(8)),
            ],
            NDRange::linear(8, 4),
        );
        let ArgBinding::GlobalBuffer(out) = &result.args[1] else {
            panic!()
        };
        let values: Vec<i64> = (0..4).map(|i| out.load(i).as_scalar().as_i64()).collect();
        assert_eq!(values, vec![3, 2, 2, 1]);
    }

    #[test]
    fn vector_types_and_components() {
        let src = "__kernel void A(__global float4* a, __global float* out, const int n) {
            int i = get_global_id(0);
            if (i < n) {
                float4 v = a[i];
                out[i] = v.x + v.y + v.z + v.w;
            }
        }";
        let mut a = Buffer::zeroed(ScalarType::Float, 4, 2, BufferSpace::Global);
        a.store(
            0,
            &Value::Vector(vec![
                Scalar::F(1.0),
                Scalar::F(2.0),
                Scalar::F(3.0),
                Scalar::F(4.0),
            ]),
        );
        a.store(
            1,
            &Value::Vector(vec![
                Scalar::F(5.0),
                Scalar::F(6.0),
                Scalar::F(7.0),
                Scalar::F(8.0),
            ]),
        );
        let out = float_buffer(&[0.0; 2]);
        let result = run_kernel(
            src,
            "A",
            vec![
                ArgBinding::GlobalBuffer(a),
                ArgBinding::GlobalBuffer(out),
                ArgBinding::Scalar(Scalar::I(2)),
            ],
            NDRange::linear(2, 2),
        );
        let ArgBinding::GlobalBuffer(o) = &result.args[1] else {
            panic!()
        };
        assert_eq!(buffer_values(o), vec![10.0, 26.0]);
    }

    #[test]
    fn math_builtins() {
        let src = "__kernel void A(__global float* a, const int n) {
            int i = get_global_id(0);
            if (i < n) { a[i] = sqrt(fabs(a[i])) + fmax(a[i], 0.0f) + clamp(a[i], 0.0f, 1.0f); }
        }";
        let a = float_buffer(&[4.0, -9.0]);
        let result = run_kernel(
            src,
            "A",
            vec![
                ArgBinding::GlobalBuffer(a),
                ArgBinding::Scalar(Scalar::I(2)),
            ],
            NDRange::linear(2, 2),
        );
        let ArgBinding::GlobalBuffer(out) = &result.args[0] else {
            panic!()
        };
        let v = buffer_values(out);
        assert!((v[0] - (2.0 + 4.0 + 1.0)).abs() < 1e-6);
        assert!((v[1] - (3.0 + 0.0 + 0.0)).abs() < 1e-6);
        assert!(result.counts.math_calls > 0);
    }

    #[test]
    fn non_terminating_kernel_hits_step_limit() {
        let src = "__kernel void A(__global int* a) {
            int i = 0;
            while (1) { i = i + 1; }
            a[0] = i;
        }";
        let parsed = parse(src);
        let a = Buffer::zeroed(ScalarType::Int, 1, 1, BufferSpace::Global);
        let limits = ExecLimits {
            steps_per_work_item: 10_000,
            ..ExecLimits::default()
        };
        let result = execute(
            &parsed.unit,
            "A",
            vec![ArgBinding::GlobalBuffer(a)],
            NDRange::linear(1, 1),
            &limits,
        );
        assert_eq!(result.unwrap_err(), ExecError::StepLimitExceeded);
    }

    #[test]
    fn work_item_sampling_limits_execution() {
        let src = "__kernel void A(__global float* a) { a[get_global_id(0)] = 1.0f; }";
        let a = float_buffer(&[0.0; 64]);
        let parsed = parse(src);
        let limits = ExecLimits {
            steps_per_work_item: 10_000,
            max_work_items: 8,
            ..ExecLimits::default()
        };
        let result = execute(
            &parsed.unit,
            "A",
            vec![ArgBinding::GlobalBuffer(a)],
            NDRange::linear(64, 16),
            &limits,
        )
        .unwrap();
        assert_eq!(result.counts.work_items_executed, 8);
        assert!((result.sampled_fraction - 0.125).abs() < 1e-9);
    }

    #[test]
    fn missing_kernel_and_bad_args_error() {
        let parsed = parse("__kernel void A(__global int* a) { a[0] = 1; }");
        let err = execute(
            &parsed.unit,
            "B",
            vec![],
            NDRange::linear(1, 1),
            &ExecLimits::default(),
        );
        assert!(matches!(err.unwrap_err(), ExecError::MissingKernel(_)));
        let err = execute(
            &parsed.unit,
            "A",
            vec![],
            NDRange::linear(1, 1),
            &ExecLimits::default(),
        );
        assert!(matches!(err.unwrap_err(), ExecError::ArgumentMismatch(_)));
    }

    #[test]
    fn out_of_bounds_counted_not_fatal() {
        let src = "__kernel void A(__global float* a, const int n) {
            int i = get_global_id(0);
            a[i + n] = 1.0f;
        }";
        let a = float_buffer(&[0.0; 4]);
        let result = run_kernel(
            src,
            "A",
            vec![
                ArgBinding::GlobalBuffer(a),
                ArgBinding::Scalar(Scalar::I(100)),
            ],
            NDRange::linear(4, 4),
        );
        assert!(result.counts.out_of_bounds > 0);
    }

    #[test]
    fn reduction_kernel_runs_and_produces_output() {
        let src = "__kernel void A(__global float* in, __global float* out, __local float* tmp, const int n) {
            int gid = get_global_id(0);
            int lid = get_local_id(0);
            tmp[lid] = (gid < n) ? in[gid] : 0.0f;
            barrier(CLK_LOCAL_MEM_FENCE);
            for (int s = get_local_size(0) / 2; s > 0; s >>= 1) {
                if (lid < s) { tmp[lid] += tmp[lid + s]; }
                barrier(CLK_LOCAL_MEM_FENCE);
            }
            if (lid == 0) { out[get_group_id(0)] = tmp[0]; }
        }";
        let input = float_buffer(&[1.0; 8]);
        let output = float_buffer(&[0.0; 2]);
        let result = run_kernel(
            src,
            "A",
            vec![
                ArgBinding::GlobalBuffer(input),
                ArgBinding::GlobalBuffer(output),
                ArgBinding::LocalElements(4),
                ArgBinding::Scalar(Scalar::I(8)),
            ],
            NDRange::linear(8, 4),
        );
        let ArgBinding::GlobalBuffer(out) = &result.args[1] else {
            panic!()
        };
        let v = buffer_values(out);
        // Sequential work-item execution does not reproduce the true barrier
        // semantics of the tree reduction, but the kernel must still run,
        // produce a non-zero deterministic result and touch local memory.
        assert!(v[0] != 0.0);
        assert!(result.counts.local_accesses > 0);
        assert!(result.counts.barriers > 0);
    }
}
