//! Runtime value and memory representation for the NDRange interpreter.

use cl_frontend::ast::ScalarType;

/// A scalar runtime value: integer or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    /// Integer value (all integer widths are modelled as `i64`).
    I(i64),
    /// Floating point value (all float widths are modelled as `f64`).
    F(f64),
}

impl Scalar {
    /// Interpret as f64 (integers are converted).
    pub fn as_f64(self) -> f64 {
        match self {
            Scalar::I(v) => v as f64,
            Scalar::F(v) => v,
        }
    }

    /// Interpret as i64 (floats are truncated).
    pub fn as_i64(self) -> i64 {
        match self {
            Scalar::I(v) => v,
            Scalar::F(v) => v as i64,
        }
    }

    /// Truthiness (C semantics: non-zero is true).
    pub fn as_bool(self) -> bool {
        match self {
            Scalar::I(v) => v != 0,
            Scalar::F(v) => v != 0.0,
        }
    }

    /// True if this is a floating point scalar.
    pub fn is_float(self) -> bool {
        matches!(self, Scalar::F(_))
    }

    /// Zero of the given OpenCL scalar type.
    pub fn zero_of(ty: ScalarType) -> Scalar {
        if ty.is_float() {
            Scalar::F(0.0)
        } else {
            Scalar::I(0)
        }
    }

    /// Convert this scalar to the representation class of `ty`.
    pub fn convert_to(self, ty: ScalarType) -> Scalar {
        if ty.is_float() {
            Scalar::F(self.as_f64())
        } else {
            Scalar::I(self.as_i64())
        }
    }

    /// Approximate equality with an epsilon for floats (exact for integers).
    pub fn approx_eq(self, other: Scalar, epsilon: f64) -> bool {
        match (self, other) {
            (Scalar::I(a), Scalar::I(b)) => a == b,
            (a, b) => {
                let (a, b) = (a.as_f64(), b.as_f64());
                if a.is_nan() && b.is_nan() {
                    return true;
                }
                let scale = a.abs().max(b.abs()).max(1.0);
                (a - b).abs() <= epsilon * scale
            }
        }
    }
}

/// A pointer into a [`Buffer`], possibly with remaining array dimensions for
/// multi-dimensional private/local arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct PtrValue {
    /// Index of the buffer in the interpreter's buffer table.
    pub buffer: usize,
    /// Offset in *elements* (not scalars) from the start of the buffer.
    pub offset: i64,
    /// Remaining array dimensions (empty for plain pointers): indexing a
    /// pointer with dims `[16, 16]` peels the first dimension.
    pub dims: Vec<usize>,
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A scalar.
    Scalar(Scalar),
    /// A short vector (2/3/4/8/16 lanes).
    Vector(Vec<Scalar>),
    /// A pointer into a buffer.
    Ptr(PtrValue),
    /// The unit value of `void` expressions (e.g. a call to `barrier`).
    Void,
}

impl Value {
    /// Shorthand integer.
    pub fn int(v: i64) -> Value {
        Value::Scalar(Scalar::I(v))
    }

    /// Shorthand float.
    pub fn float(v: f64) -> Value {
        Value::Scalar(Scalar::F(v))
    }

    /// The scalar content, broadcasting rule: vectors yield their first lane.
    pub fn as_scalar(&self) -> Scalar {
        match self {
            Value::Scalar(s) => *s,
            Value::Vector(v) => v.first().copied().unwrap_or(Scalar::I(0)),
            Value::Ptr(p) => Scalar::I(p.offset),
            Value::Void => Scalar::I(0),
        }
    }

    /// Truthiness.
    pub fn as_bool(&self) -> bool {
        self.as_scalar().as_bool()
    }

    /// Number of lanes (1 for scalars).
    pub fn lanes(&self) -> usize {
        match self {
            Value::Vector(v) => v.len(),
            _ => 1,
        }
    }

    /// Lane accessor with broadcasting (scalars return themselves).
    pub fn lane(&self, i: usize) -> Scalar {
        match self {
            Value::Vector(v) => v.get(i).copied().unwrap_or(Scalar::I(0)),
            other => other.as_scalar(),
        }
    }
}

/// Which address space a buffer lives in (affects the device cost model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferSpace {
    /// `__global` memory, transferred between host and device.
    Global,
    /// `__local` memory, on-chip scratch.
    Local,
    /// `__constant` memory.
    Constant,
    /// `__private` arrays declared inside a kernel.
    Private,
}

/// A linear buffer of scalars. Vector-element buffers store their lanes
/// contiguously, so a `float4` buffer of `n` elements holds `4 n` scalars.
#[derive(Debug, Clone, PartialEq)]
pub struct Buffer {
    /// Element scalar type.
    pub elem: ScalarType,
    /// Lanes per element (1 for scalar buffers, 4 for `float4`, ...).
    pub lanes: usize,
    /// Address space.
    pub space: BufferSpace,
    /// Scalar storage, length = elements * lanes.
    pub data: Vec<Scalar>,
}

impl Buffer {
    /// Allocate a zero-filled buffer of `elements` elements.
    pub fn zeroed(elem: ScalarType, lanes: usize, elements: usize, space: BufferSpace) -> Buffer {
        Buffer {
            elem,
            lanes,
            space,
            data: vec![Scalar::zero_of(elem); elements * lanes],
        }
    }

    /// Number of elements (not scalars).
    pub fn elements(&self) -> usize {
        self.data.len().checked_div(self.lanes).unwrap_or(0)
    }

    /// Size in bytes (as the host driver would allocate it).
    pub fn size_bytes(&self) -> usize {
        self.data.len() * self.elem.size_bytes()
    }

    /// Load the element at `index` (a scalar or a vector depending on lanes).
    /// Out-of-bounds accesses clamp to the last element (the interpreter
    /// reports them separately) so that faulty kernels remain analysable.
    pub fn load(&self, index: i64) -> Value {
        if self.data.is_empty() {
            return Value::int(0);
        }
        let n = self.elements() as i64;
        let idx = index.clamp(0, n - 1) as usize;
        if self.lanes == 1 {
            Value::Scalar(self.data[idx])
        } else {
            Value::Vector(self.data[idx * self.lanes..(idx + 1) * self.lanes].to_vec())
        }
    }

    /// Store a value at `index` (vector stores write all lanes; scalar stores
    /// into vector buffers broadcast).
    pub fn store(&mut self, index: i64, value: &Value) {
        if self.data.is_empty() {
            return;
        }
        let n = self.elements() as i64;
        let idx = index.clamp(0, n - 1) as usize;
        let elem = self.elem;
        if self.lanes == 1 {
            self.data[idx] = value.as_scalar().convert_to(elem);
        } else {
            for lane in 0..self.lanes {
                self.data[idx * self.lanes + lane] = value.lane(lane).convert_to(elem);
            }
        }
    }

    /// Load a single scalar lane of the element at `index`.
    pub fn load_lane(&self, index: i64, lane: usize) -> Scalar {
        if self.data.is_empty() {
            return Scalar::I(0);
        }
        let n = self.elements() as i64;
        let idx = index.clamp(0, n - 1) as usize;
        self.data[idx * self.lanes + lane.min(self.lanes - 1)]
    }

    /// Store a single scalar lane of the element at `index`.
    pub fn store_lane(&mut self, index: i64, lane: usize, value: Scalar) {
        if self.data.is_empty() {
            return;
        }
        let n = self.elements() as i64;
        let idx = index.clamp(0, n - 1) as usize;
        let lane = lane.min(self.lanes - 1);
        self.data[idx * self.lanes + lane] = value.convert_to(self.elem);
    }

    /// True if any scalar differs from `other` by more than `epsilon`
    /// (relative for floats, exact for ints). Buffers of different shapes are
    /// always considered different.
    pub fn differs_from(&self, other: &Buffer, epsilon: f64) -> bool {
        if self.data.len() != other.data.len() {
            return true;
        }
        self.data
            .iter()
            .zip(other.data.iter())
            .any(|(a, b)| !a.approx_eq(*b, epsilon))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_conversions() {
        assert_eq!(Scalar::I(3).as_f64(), 3.0);
        assert_eq!(Scalar::F(2.7).as_i64(), 2);
        assert!(Scalar::F(1.0).as_bool());
        assert!(!Scalar::I(0).as_bool());
        assert_eq!(Scalar::F(2.5).convert_to(ScalarType::Int), Scalar::I(2));
        assert_eq!(Scalar::I(2).convert_to(ScalarType::Float), Scalar::F(2.0));
    }

    #[test]
    fn approx_eq_uses_relative_epsilon() {
        assert!(Scalar::F(1000.0).approx_eq(Scalar::F(1000.0001), 1e-6));
        assert!(!Scalar::F(1.0).approx_eq(Scalar::F(1.1), 1e-6));
        assert!(Scalar::I(5).approx_eq(Scalar::I(5), 0.0));
        assert!(!Scalar::I(5).approx_eq(Scalar::I(6), 0.5));
    }

    #[test]
    fn buffer_load_store_scalar() {
        let mut buf = Buffer::zeroed(ScalarType::Float, 1, 4, BufferSpace::Global);
        buf.store(2, &Value::float(1.5));
        assert_eq!(buf.load(2), Value::float(1.5));
        assert_eq!(buf.elements(), 4);
        assert_eq!(buf.size_bytes(), 16);
    }

    #[test]
    fn buffer_load_store_vector() {
        let mut buf = Buffer::zeroed(ScalarType::Float, 4, 3, BufferSpace::Global);
        let v = Value::Vector(vec![
            Scalar::F(1.0),
            Scalar::F(2.0),
            Scalar::F(3.0),
            Scalar::F(4.0),
        ]);
        buf.store(1, &v);
        assert_eq!(buf.load(1), v);
        assert_eq!(buf.load_lane(1, 2), Scalar::F(3.0));
        buf.store_lane(1, 2, Scalar::F(9.0));
        assert_eq!(buf.load_lane(1, 2), Scalar::F(9.0));
    }

    #[test]
    fn buffer_out_of_bounds_clamps() {
        let mut buf = Buffer::zeroed(ScalarType::Int, 1, 2, BufferSpace::Global);
        buf.store(100, &Value::int(7));
        assert_eq!(buf.load(100), Value::int(7));
        assert_eq!(buf.load(1), Value::int(7));
        buf.store(-5, &Value::int(3));
        assert_eq!(buf.load(0), Value::int(3));
    }

    #[test]
    fn buffer_difference_detection() {
        let mut a = Buffer::zeroed(ScalarType::Float, 1, 4, BufferSpace::Global);
        let b = Buffer::zeroed(ScalarType::Float, 1, 4, BufferSpace::Global);
        assert!(!a.differs_from(&b, 1e-8));
        a.store(0, &Value::float(1.0));
        assert!(a.differs_from(&b, 1e-8));
    }

    #[test]
    fn value_lane_broadcasting() {
        let s = Value::float(2.0);
        assert_eq!(s.lane(3), Scalar::F(2.0));
        let v = Value::Vector(vec![Scalar::I(1), Scalar::I(2)]);
        assert_eq!(v.lane(1), Scalar::I(2));
        assert_eq!(v.lanes(), 2);
    }
}
