//! Property-based tests for the execution substrate: buffers behave like
//! memory, payloads follow the §5.1 rules for arbitrary signatures, the device
//! models are monotone in workload, and interpretation of a simple kernel
//! matches a host-side reference for arbitrary inputs.

use cl_frontend::ast::ScalarType;
use cldrive::interp::{execute, ArgBinding, ExecLimits, NDRange};
use cldrive::{Buffer, BufferSpace, Device, PayloadOptions, Scalar, Value, WorkloadProfile};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Buffer store/load round-trips for arbitrary float contents.
    #[test]
    fn buffer_roundtrip(values in proptest::collection::vec(-1e6f64..1e6, 1..64)) {
        let mut buf = Buffer::zeroed(ScalarType::Float, 1, values.len(), BufferSpace::Global);
        for (i, v) in values.iter().enumerate() {
            buf.store(i as i64, &Value::float(*v));
        }
        for (i, v) in values.iter().enumerate() {
            let loaded = buf.load(i as i64).as_scalar().as_f64();
            prop_assert!((loaded - v).abs() < 1e-9);
        }
        prop_assert!(!buf.differs_from(&buf.clone(), 0.0));
    }

    /// Integer buffers preserve values exactly and never report spurious
    /// differences against themselves.
    #[test]
    fn int_buffer_exact(values in proptest::collection::vec(-1_000_000i64..1_000_000, 1..64)) {
        let mut buf = Buffer::zeroed(ScalarType::Int, 1, values.len(), BufferSpace::Global);
        for (i, v) in values.iter().enumerate() {
            buf.store(i as i64, &Value::int(*v));
        }
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(buf.load(i as i64).as_scalar().as_i64(), *v);
        }
    }

    /// Device estimates are monotone: more compute work never makes a kernel
    /// faster, on any Table-4 device.
    #[test]
    fn device_estimates_monotone(
        base_ops in 1e3f64..1e8,
        extra in 1e3f64..1e8,
        bytes in 1e3f64..1e8,
    ) {
        for device in Device::table4() {
            let w1 = WorkloadProfile {
                work_items: 1e5,
                compute_ops: base_ops,
                global_bytes: bytes,
                local_bytes: 0.0,
                coalesced_fraction: 0.8,
                branch_fraction: 0.1,
                transfer_bytes: bytes,
            };
            let mut w2 = w1;
            w2.compute_ops += extra;
            prop_assert!(device.estimate(&w2).total() >= device.estimate(&w1).total() - 1e-12);
        }
    }

    /// Payload generation honours the paper's rules for any mix of argument
    /// kinds: buffers sized Sg, integral scalars = Sg, local buffers allocated.
    #[test]
    fn payload_rules_hold(
        n_buffers in 1usize..4,
        has_local in any::<bool>(),
        global_size in 1usize..2048,
    ) {
        let mut params = String::new();
        for i in 0..n_buffers {
            params.push_str(&format!("__global float* g{i}, "));
        }
        if has_local {
            params.push_str("__local float* scratch, ");
        }
        params.push_str("const int n");
        let src = format!("__kernel void K({params}) {{ int i = get_global_id(0); if (i < n) {{ g0[i] = g0[i] + 1.0f; }} }}");
        let compiled = cl_frontend::compile(&src, &Default::default());
        prop_assert!(compiled.is_ok());
        let payload = cldrive::generate_payload(
            &compiled.kernels[0],
            &PayloadOptions { global_size, local_size: 16, seed: 1 },
        ).unwrap();
        let mut buffers = 0;
        for arg in &payload.args {
            match arg {
                ArgBinding::GlobalBuffer(b) => {
                    prop_assert_eq!(b.elements(), global_size);
                    buffers += 1;
                }
                ArgBinding::LocalElements(e) => prop_assert!(*e > 0),
                ArgBinding::Scalar(s) => prop_assert_eq!(s.as_i64(), global_size as i64),
            }
        }
        prop_assert_eq!(buffers, n_buffers);
    }

    /// Interpreting an axpy kernel matches the host-side reference computation
    /// for arbitrary inputs, sizes and scalar coefficients.
    #[test]
    fn axpy_matches_reference(
        xs in proptest::collection::vec(-100.0f64..100.0, 4..48),
        alpha in -4.0f64..4.0,
    ) {
        let n = xs.len();
        let src = "__kernel void axpy(__global float* x, __global float* y, const float alpha, const int n) {
            int i = get_global_id(0);
            if (i < n) { y[i] = alpha * x[i] + y[i]; }
        }";
        let compiled = cl_frontend::compile(src, &Default::default());
        prop_assert!(compiled.is_ok());
        let mut x = Buffer::zeroed(ScalarType::Float, 1, n, BufferSpace::Global);
        let mut y = Buffer::zeroed(ScalarType::Float, 1, n, BufferSpace::Global);
        for (i, v) in xs.iter().enumerate() {
            x.store(i as i64, &Value::float(*v));
            y.store(i as i64, &Value::float(1.0));
        }
        let result = execute(
            &compiled.unit,
            "axpy",
            vec![
                ArgBinding::GlobalBuffer(x),
                ArgBinding::GlobalBuffer(y),
                ArgBinding::Scalar(Scalar::F(alpha)),
                ArgBinding::Scalar(Scalar::I(n as i64)),
            ],
            NDRange::linear(n, 8),
            &ExecLimits::default(),
        ).unwrap();
        let ArgBinding::GlobalBuffer(y_out) = &result.args[1] else { panic!() };
        for (i, v) in xs.iter().enumerate() {
            let expected = alpha * v + 1.0;
            let got = y_out.load(i as i64).as_scalar().as_f64();
            prop_assert!((got - expected).abs() < 1e-6 * (1.0 + expected.abs()), "i={i} got={got} expected={expected}");
        }
        prop_assert_eq!(result.counts.work_items_executed as usize, n);
    }
}
