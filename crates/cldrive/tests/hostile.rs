//! Fuzz-style hostility tests: `HostDriver::run_source` must return typed
//! errors for garbage and pathological kernels — never panic, abort or hang.
//!
//! Every case here was chosen to poke a specific historical panic surface:
//! unbounded parser recursion (stack overflow inside `compile`), unchecked
//! array-dimension products (overflow/OOM in `exec_decl`), integer edge cases
//! in the evaluator, and unbounded loops (step budgets).

use cldrive::{DriveError, DriverOptions, ExecError, HostDriver, Platform};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn driver() -> HostDriver {
    HostDriver::with_options(
        Platform::amd(),
        DriverOptions {
            total_step_budget: 2_000_000,
            ..DriverOptions::quick()
        },
    )
}

/// Run a source through the driver asserting it neither panics nor succeeds
/// silently in a way that matters — we only care that the outcome is typed.
fn assert_typed_outcome(label: &str, source: &str) {
    let result = catch_unwind(AssertUnwindSafe(|| driver().run_source(source, &[256])));
    assert!(result.is_ok(), "{label}: run_source panicked");
}

#[test]
fn garbage_bytes_do_not_panic() {
    let cases: &[&str] = &[
        "",
        "\0\0\0\0",
        "}}}}{{{{",
        "kernel kernel kernel ((((",
        "__kernel __kernel void void A A",
        "#pragma nonsense\n@!$%^&*",
        "__kernel void A(__global float* a) { a[0] = ; }",
        "\u{FFFD}\u{FFFD}\u{FFFD}",
    ];
    for (i, src) in cases.iter().enumerate() {
        assert_typed_outcome(&format!("garbage case {i}"), src);
    }
}

#[test]
fn deterministic_pseudo_random_garbage() {
    // A cheap xorshift over a printable alphabet: 64 seeds of fuzz input.
    let alphabet: Vec<char> = "__kernel void A(){}[]<>;,+-*/%&|^!~=0123456789abcxyz \n\t\"'"
        .chars()
        .collect();
    let mut state = 0x2545F4914F6CDD1Du64;
    for case in 0..64 {
        let mut src = String::new();
        for _ in 0..200 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            src.push(alphabet[(state as usize) % alphabet.len()]);
        }
        assert_typed_outcome(&format!("fuzz case {case}"), &src);
    }
}

#[test]
fn deep_nesting_is_rejected_not_stack_overflow() {
    // 10k nested parens/blocks/ifs would overflow the parser stack without
    // the nesting cap; the cap turns them into compile diagnostics.
    let parens = format!(
        "__kernel void A(__global float* a) {{ a[0] = {}1.0f{}; }}",
        "(".repeat(10_000),
        ")".repeat(10_000)
    );
    let blocks = format!(
        "__kernel void A(__global float* a) {{ {} a[0] = 1.0f; {} }}",
        "{".repeat(10_000),
        "}".repeat(10_000)
    );
    let ifs = format!(
        "__kernel void A(__global float* a) {{ {} a[0] = 1.0f; {} }}",
        "if (1) {".repeat(10_000),
        "}".repeat(10_000)
    );
    let unary = format!(
        "__kernel void A(__global float* a) {{ a[0] = {}1.0f; }}",
        "-".repeat(10_000)
    );
    for (label, src) in [
        ("parens", &parens),
        ("blocks", &blocks),
        ("ifs", &ifs),
        ("unary", &unary),
    ] {
        let result = catch_unwind(AssertUnwindSafe(|| driver().run_source(src, &[64])));
        let outcome = result.unwrap_or_else(|_| panic!("{label}: panicked"));
        assert!(
            matches!(outcome, Err(DriveError::Compile(_))),
            "{label}: expected a compile diagnostic, got {outcome:?}"
        );
    }
}

#[test]
fn huge_array_dimensions_become_typed_errors() {
    // Would formerly attempt multi-gigabyte Buffer::zeroed allocations (or
    // overflow the element product in debug builds).
    let huge = "__kernel void A(__global float* a) {
        float t[1000000000];
        t[0] = a[0];
        a[0] = t[0];
    }";
    let overflowing = "__kernel void A(__global float* a) {
        float t[4000000000][4000000000][4000000000];
        a[0] = 1.0f;
    }";
    for (label, src) in [("huge", huge), ("overflowing", overflowing)] {
        let result = catch_unwind(AssertUnwindSafe(|| driver().run_source(src, &[64])));
        let outcome = result.unwrap_or_else(|_| panic!("{label}: panicked"));
        assert!(
            matches!(
                outcome,
                Err(DriveError::Exec(ExecError::ResourceLimitExceeded(_)))
                    | Err(DriveError::Compile(_))
            ),
            "{label}: expected resource-limit or compile error, got {outcome:?}"
        );
    }
}

#[test]
fn integer_edge_cases_do_not_panic() {
    let cases: &[&str] = &[
        // i64::MIN / -1 and % -1 overflow in two's complement.
        "__kernel void A(__global int* a) { long x = -9223372036854775807L - 1L; a[0] = (int)(x / -1L); }",
        "__kernel void A(__global int* a) { long x = -9223372036854775807L - 1L; a[0] = (int)(x % -1L); }",
        // Division by a zero loaded from data.
        "__kernel void A(__global int* a) { a[0] = 7 / a[1]; }",
        "__kernel void A(__global int* a) { a[0] = 7 % a[1]; }",
        // Shift counts beyond the width.
        "__kernel void A(__global int* a) { a[0] = 1 << 1000; }",
        "__kernel void A(__global int* a) { a[0] = 1 >> -3; }",
        // Out-of-range float→int casts.
        "__kernel void A(__global int* a) { a[0] = (int)1e300; }",
        "__kernel void A(__global int* a) { float f = 0.0f; a[0] = (int)(1.0f / f); }",
    ];
    for (i, src) in cases.iter().enumerate() {
        assert_typed_outcome(&format!("integer case {i}"), src);
    }
}

#[test]
fn infinite_loops_are_cut_by_budgets() {
    let loops: &[&str] = &[
        "__kernel void A(__global float* a) { while (1) { a[0] += 1.0f; } }",
        "__kernel void A(__global float* a) { for (;;) { a[0] += 1.0f; } }",
        "__kernel void A(__global float* a) { int i = 0; do { i++; } while (i >= 0); a[0] = i; }",
    ];
    for (i, src) in loops.iter().enumerate() {
        let outcome = driver().run_source(src, &[256]);
        assert!(
            matches!(
                outcome,
                Err(DriveError::Exec(
                    ExecError::StepLimitExceeded | ExecError::TotalStepLimitExceeded
                ))
            ),
            "loop case {i}: expected a step-budget error, got {outcome:?}"
        );
    }
}

#[test]
fn total_step_budget_cuts_launches_short() {
    // Per-item budget alone would admit ~128 items × 2M steps; the
    // launch-wide budget cuts the whole unit at 50k.
    let spin = "__kernel void A(__global float* a, const int n) {
        int i = get_global_id(0);
        float acc = 0.0f;
        for (int r = 0; r < 1000000; r++) { acc += 0.5f; }
        a[i % 8] = acc;
    }";
    let bounded = HostDriver::with_options(
        Platform::amd(),
        DriverOptions {
            total_step_budget: 50_000,
            ..DriverOptions::quick()
        },
    );
    let outcome = bounded.run_source(spin, &[4096]);
    assert!(
        matches!(
            outcome,
            Err(DriveError::Exec(ExecError::TotalStepLimitExceeded))
        ),
        "expected the launch-wide budget to fire, got {outcome:?}"
    );
}

#[test]
fn recursion_depth_is_bounded() {
    // Mutually recursive calls exhaust the interpreter's call-depth cap and
    // must surface as a typed error.
    let recursive = "float f(float x);
    float g(float x) { return f(x) + 1.0f; }
    float f(float x) { return g(x) + 1.0f; }
    __kernel void A(__global float* a) { a[0] = f(a[0]); }";
    assert_typed_outcome("mutual recursion", recursive);
}
