//! Observability invariants: histogram shard-merge exactness, exposition
//! grammar, and flight-ring wrap correctness under concurrent writers.

use clgen_obs::{FlightRecorder, Histogram, Registry};
use proptest::prelude::*;
use std::sync::Arc;
use std::thread;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging per-shard histograms is exactly equivalent to observing the
    /// same values serially into one histogram: identical buckets, sum,
    /// count — and therefore identical rendered exposition and quantiles.
    #[test]
    fn histogram_shard_merge_equals_serial(
        values in proptest::collection::vec(0u64..=1u64 << 40, 0..200),
        shards in 1usize..6,
    ) {
        let serial = Histogram::detached();
        for &v in &values {
            serial.observe(v);
        }

        let parts: Vec<Histogram> = (0..shards).map(|_| Histogram::detached()).collect();
        for (i, &v) in values.iter().enumerate() {
            parts[i % shards].observe(v);
        }
        let merged = Histogram::detached();
        for part in &parts {
            merged.merge_from(part);
        }

        prop_assert_eq!(merged.bucket_counts(), serial.bucket_counts());
        prop_assert_eq!(merged.sum(), serial.sum());
        prop_assert_eq!(merged.count(), serial.count());
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(merged.quantile(q), serial.quantile(q));
        }
    }
}

/// Every line of the rendered exposition matches the Prometheus text
/// grammar: a `# HELP`/`# TYPE` comment or `name{labels} value`.
#[test]
fn exposition_parses_line_by_line() {
    let registry = Registry::new();
    registry
        .counter(
            "clgen_requests_total",
            &[("endpoint", "synthesize")],
            "Requests",
        )
        .add(3);
    registry.gauge("clgen_queue_depth", &[], "Depth").set(2.0);
    let h = registry.histogram(
        "clgen_request_latency_us",
        &[("endpoint", "drive"), ("outcome", "ok")],
        "Latency",
    );
    h.observe(17);
    h.observe(90_000);

    let text = registry.render_prometheus();
    assert!(!text.is_empty());
    let mut histogram_count_line = false;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# ") {
            assert!(
                rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                "bad comment: {line}"
            );
            continue;
        }
        // name[{labels}] value
        let (series, value) = line.rsplit_once(' ').expect("space-separated value");
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("bad value in {line:?}"));
        let name = series.split('{').next().expect("metric name");
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in {line:?}"
        );
        if let Some(labels) = series.strip_prefix(name) {
            if !labels.is_empty() {
                assert!(labels.starts_with('{') && labels.ends_with('}'), "{line}");
                for pair in labels[1..labels.len() - 1].split(',') {
                    let (k, v) = pair.split_once('=').expect("k=v label");
                    assert!(!k.is_empty());
                    assert!(v.starts_with('"') && v.ends_with('"'), "{line}");
                }
            }
        }
        if series.starts_with("clgen_request_latency_us_count") {
            histogram_count_line = true;
            assert_eq!(value, "2");
        }
    }
    assert!(histogram_count_line, "histogram _count rendered:\n{text}");
    // The +Inf bucket closes every histogram series.
    assert!(text.contains("le=\"+Inf\"} 2"), "{text}");
}

/// After T >= capacity concurrent records, the ring holds exactly the last
/// `capacity` sequence numbers — no duplicates, no holes, no stale seqs.
#[test]
fn flight_ring_wrap_is_exact_under_concurrent_writers() {
    const CAP: usize = 64;
    const WRITERS: usize = 8;
    const PER_WRITER: usize = 100;
    let ring = Arc::new(FlightRecorder::new(CAP));
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                for i in 0..PER_WRITER {
                    ring.record("evt", format!("w{w}i{i}"));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("writer thread");
    }

    let total = (WRITERS * PER_WRITER) as u64;
    assert_eq!(ring.recorded(), total);
    let seqs: Vec<u64> = ring.snapshot().iter().map(|e| e.seq).collect();
    let expected: Vec<u64> = (total - CAP as u64..total).collect();
    assert_eq!(seqs, expected, "ring holds exactly the last {CAP} seqs");

    let dump = ring.dump("test");
    assert_eq!(dump.lines().count(), CAP + 1);
    assert!(dump.starts_with("{\"event\":\"flight_dump\",\"reason\":\"test\""));
}
