//! Per-request structured spans.
//!
//! A [`Trace`] is minted when a request is accepted and threaded (as an
//! `Arc`) through every stage that touches the request: the connection
//! thread, the scheduler, the filter and the harness layer each record the
//! stage durations they own. At response time the accumulated spans render
//! as a compact JSON object spliced into the NDJSON `done` line.
//!
//! Trace ids come from the client's optional `trace-id` header when present
//! (sanitized); otherwise they are derived deterministically from the
//! request seed and a process-wide ordinal via [`derive_trace_id`] — a pure
//! function, so the same `(seed, ordinal)` always yields the same id, while
//! repeated identical requests differ because the ordinal advances.
//!
//! Span durations are wall-clock reads and therefore *not* deterministic;
//! they annotate responses but never feed the sampled byte stream.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Process-wide request ordinal backing derived trace ids.
static ORDINAL: AtomicU64 = AtomicU64::new(0);

/// Claim the next request ordinal (monotonic per process).
pub fn next_ordinal() -> u64 {
    ORDINAL.fetch_add(1, Ordering::Relaxed)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derive a 16-hex-digit trace id from a request seed and ordinal. Pure:
/// the same `(seed, ordinal)` pair always produces the same id.
pub fn derive_trace_id(seed: u64, ordinal: u64) -> String {
    format!("{:016x}", splitmix64(splitmix64(seed) ^ ordinal))
}

/// True when `id` is usable as a client-supplied trace id: 1–64 characters
/// drawn from `[A-Za-z0-9_-]`.
pub fn valid_trace_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// A per-request span accumulator.
///
/// Stages are recorded as `(name, µs)` pairs in first-recorded order;
/// recording the same stage again adds to its duration (the filter stage,
/// for example, accumulates across many candidates).
#[derive(Debug)]
pub struct Trace {
    id: String,
    start: Instant,
    spans: Mutex<Vec<(&'static str, u64)>>,
}

impl Trace {
    /// A trace with an explicit id, started now.
    pub fn new(id: String) -> Trace {
        Trace {
            id,
            start: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Mint a trace from an optional client-supplied id, falling back to a
    /// seed-derived id (consuming one process ordinal).
    pub fn from_client(header: Option<&str>, seed: u64) -> Trace {
        match header {
            Some(id) if valid_trace_id(id) => Trace::new(id.to_string()),
            _ => Trace::new(derive_trace_id(seed, next_ordinal())),
        }
    }

    /// The trace id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Monotonic time elapsed since the trace was minted, in µs.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Add `us` microseconds to `stage` (creating the stage on first use).
    pub fn record(&self, stage: &'static str, us: u64) {
        let mut spans = self.spans.lock().expect("trace spans poisoned");
        if let Some(entry) = spans.iter_mut().find(|(name, _)| *name == stage) {
            entry.1 += us;
        } else {
            spans.push((stage, us));
        }
    }

    /// Record the time elapsed since `since` against `stage`.
    pub fn record_since(&self, stage: &'static str, since: Instant) {
        self.record(stage, since.elapsed().as_micros() as u64);
    }

    /// Snapshot of the recorded spans in first-recorded order.
    pub fn spans(&self) -> Vec<(&'static str, u64)> {
        self.spans.lock().expect("trace spans poisoned").clone()
    }

    /// Render the trace as a JSON object:
    /// `{"id":"…","total_us":N,"stages":{"queued":N,…}}`.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"id\":\"");
        // Ids are sanitized on ingest; escape defensively anyway.
        for c in self.id.chars() {
            match c {
                '"' | '\\' => {}
                other => out.push(other),
            }
        }
        out.push_str("\",\"total_us\":");
        out.push_str(&self.elapsed_us().to_string());
        out.push_str(",\"stages\":{");
        let spans = self.spans();
        for (i, (stage, us)) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(stage);
            out.push_str("\":");
            out.push_str(&us.to_string());
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ids_are_deterministic_per_seed_and_ordinal() {
        assert_eq!(derive_trace_id(7, 0), derive_trace_id(7, 0));
        assert_ne!(derive_trace_id(7, 0), derive_trace_id(7, 1));
        assert_ne!(derive_trace_id(7, 0), derive_trace_id(8, 0));
        assert_eq!(derive_trace_id(7, 3).len(), 16);
    }

    #[test]
    fn repeated_identical_requests_get_distinct_ids() {
        let a = Trace::from_client(None, 42);
        let b = Trace::from_client(None, 42);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn client_ids_are_sanitized() {
        let ok = Trace::from_client(Some("req-1_A"), 0);
        assert_eq!(ok.id(), "req-1_A");
        let bad = Trace::from_client(Some("has space"), 0);
        assert_ne!(bad.id(), "has space");
        let long = "x".repeat(65);
        assert!(!valid_trace_id(&long));
        assert!(!valid_trace_id(""));
    }

    #[test]
    fn spans_accumulate_and_render() {
        let t = Trace::new("abc".into());
        t.record("queued", 10);
        t.record("sampling", 5);
        t.record("queued", 2);
        let json = t.render_json();
        assert!(json.starts_with("{\"id\":\"abc\",\"total_us\":"), "{json}");
        assert!(
            json.ends_with(",\"stages\":{\"queued\":12,\"sampling\":5}}"),
            "{json}"
        );
    }
}
