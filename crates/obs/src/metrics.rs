//! Lock-cheap metrics: atomic counters, float gauges and fixed-bucket
//! log-scale histograms behind a name+label registry that renders the
//! Prometheus text exposition format.
//!
//! Hot paths hold pre-registered handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) and touch only atomics; the registry mutex is paid once at
//! registration (or per scrape). Histogram buckets are powers of two in
//! microseconds, so p50/p90/p99 are derivable from the buckets alone and
//! shard merges are exact (bucket-wise addition — see
//! [`Histogram::merge_from`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of finite histogram buckets; bucket `i` has upper bound `2^i` µs.
/// `2^35` µs ≈ 9.5 hours, far beyond any request; larger values land in the
/// implicit `+Inf` bucket.
pub const HISTOGRAM_BUCKETS: usize = 36;

/// A monotonically increasing counter handle (clone-cheap, lock-free).
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable gauge handle storing an `f64` (clone-cheap, lock-free).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge to `value`.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared storage behind a [`Histogram`] handle.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// `buckets[i]` counts observations `v` with `bound(i-1) < v <= 2^i`
    /// (bucket 0 counts `v <= 1`). Non-cumulative; rendering accumulates.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Observations above the largest finite bound (`+Inf` bucket only).
    overflow: AtomicU64,
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// Index of the bucket that holds `value`: the smallest `i` with
/// `value <= 2^i`, or `HISTOGRAM_BUCKETS` for the overflow bucket.
fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        return 0;
    }
    // ceil(log2(value)) for value >= 2.
    let idx = 64 - (value - 1).leading_zeros() as usize;
    idx.min(HISTOGRAM_BUCKETS)
}

/// A fixed-bucket log-scale histogram handle for microsecond durations.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Create a detached histogram (not registered anywhere) — useful for
    /// shard-local accumulation merged later with [`Histogram::merge_from`].
    pub fn detached() -> Histogram {
        Histogram(Arc::new(HistogramCore::new()))
    }

    /// Record one observation (a duration in µs).
    pub fn observe(&self, value: u64) {
        let idx = bucket_index(value);
        if idx < HISTOGRAM_BUCKETS {
            self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        } else {
            self.0.overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values (µs).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Add every bucket, the sum and the count of `other` into `self`.
    /// Bucket-wise addition is exact: merging shards yields byte-identical
    /// exposition to observing the same values serially into one histogram.
    pub fn merge_from(&self, other: &Histogram) {
        for i in 0..HISTOGRAM_BUCKETS {
            let n = other.0.buckets[i].load(Ordering::Relaxed);
            if n > 0 {
                self.0.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.0
            .overflow
            .fetch_add(other.0.overflow.load(Ordering::Relaxed), Ordering::Relaxed);
        self.0
            .sum
            .fetch_add(other.0.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.0
            .count
            .fetch_add(other.0.count.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Non-cumulative bucket counts followed by the overflow count.
    pub fn bucket_counts(&self) -> Vec<u64> {
        let mut counts: Vec<u64> = (0..HISTOGRAM_BUCKETS)
            .map(|i| self.0.buckets[i].load(Ordering::Relaxed))
            .collect();
        counts.push(self.0.overflow.load(Ordering::Relaxed));
        counts
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile
    /// (`0.0 < q <= 1.0`), derived from the buckets alone. Returns `None`
    /// when the histogram is empty and `f64::INFINITY` when the quantile
    /// falls in the overflow bucket.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            cumulative += self.0.buckets[i].load(Ordering::Relaxed);
            if cumulative >= rank {
                return Some((1u64 << i) as f64);
            }
        }
        Some(f64::INFINITY)
    }
}

/// Sorted `(key, value)` label pairs identifying one series in a family.
type LabelSet = Vec<(String, String)>;

#[derive(Clone, Debug)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    kind: &'static str,
    help: String,
    series: BTreeMap<LabelSet, Series>,
}

/// A registry of named metric families, each holding one or more labeled
/// series. Registration is get-or-create and idempotent: asking for the same
/// name+labels again returns a handle to the same storage, so callers may
/// re-register freely (e.g. per-request label values).
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    set.sort();
    set
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn series(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        kind: &'static str,
        help: &str,
        make: impl FnOnce() -> Series,
    ) -> Series {
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric {name:?} registered as {} and {kind}",
            family.kind
        );
        family
            .series
            .entry(label_set(labels))
            .or_insert_with(make)
            .clone()
    }

    /// Get-or-create a counter series.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        match self.series(name, labels, "counter", help, || {
            Series::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Series::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Get-or-create a gauge series.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        match self.series(name, labels, "gauge", help, || {
            Series::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
        }) {
            Series::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Get-or-create a histogram series.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Histogram {
        match self.series(name, labels, "histogram", help, || {
            Series::Histogram(Histogram(Arc::new(HistogramCore::new())))
        }) {
            Series::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Snapshot every counter series of family `name` as
    /// `(sorted labels, value)` pairs — used by `/stats`-style renderers that
    /// need to enumerate label values (e.g. rejection reasons).
    pub fn counter_values(&self, name: &str) -> Vec<(LabelSet, u64)> {
        let families = self.families.lock().expect("metrics registry poisoned");
        let Some(family) = families.get(name) else {
            return Vec::new();
        };
        family
            .series
            .iter()
            .filter_map(|(labels, series)| match series {
                Series::Counter(c) => Some((labels.clone(), c.get())),
                _ => None,
            })
            .collect()
    }

    /// Render the whole registry in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers per family, then one
    /// `name{labels} value` line per series (histograms expand to
    /// `_bucket`/`_sum`/`_count`). Families and series render in sorted
    /// order, so the output is stable for a fixed set of values.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(&family.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(family.kind);
            out.push('\n');
            for (labels, series) in family.series.iter() {
                match series {
                    Series::Counter(c) => {
                        render_series_line(&mut out, name, labels, None, &c.get().to_string());
                    }
                    Series::Gauge(g) => {
                        render_series_line(&mut out, name, labels, None, &g.get().to_string());
                    }
                    Series::Histogram(h) => {
                        let mut cumulative = 0u64;
                        let counts = h.bucket_counts();
                        for (i, n) in counts.iter().take(HISTOGRAM_BUCKETS).enumerate() {
                            cumulative += n;
                            render_series_line(
                                &mut out,
                                &format!("{name}_bucket"),
                                labels,
                                Some(&(1u64 << i).to_string()),
                                &cumulative.to_string(),
                            );
                        }
                        cumulative += counts[HISTOGRAM_BUCKETS];
                        render_series_line(
                            &mut out,
                            &format!("{name}_bucket"),
                            labels,
                            Some("+Inf"),
                            &cumulative.to_string(),
                        );
                        render_series_line(
                            &mut out,
                            &format!("{name}_sum"),
                            labels,
                            None,
                            &h.sum().to_string(),
                        );
                        render_series_line(
                            &mut out,
                            &format!("{name}_count"),
                            labels,
                            None,
                            &h.count().to_string(),
                        );
                    }
                }
            }
        }
        out
    }
}

/// One exposition line: `name{k="v",...,le="..."} value`.
fn render_series_line(
    out: &mut String,
    name: &str,
    labels: &LabelSet,
    le: Option<&str>,
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || le.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            escape_label_value(out, v);
            out.push('"');
        }
        if let Some(le) = le {
            if !first {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(le);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn escape_label_value(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_ceil_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 35), 35);
        assert_eq!(bucket_index((1 << 35) + 1), HISTOGRAM_BUCKETS);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS);
    }

    #[test]
    fn quantiles_come_from_buckets() {
        let h = Histogram::detached();
        for v in [1u64, 2, 2, 100, 100, 100, 100, 100, 100, 4000] {
            h.observe(v);
        }
        // p50 rank 5 of 10 lands in the 100 bucket (upper bound 128).
        assert_eq!(h.quantile(0.5), Some(128.0));
        assert_eq!(h.quantile(1.0), Some(4096.0));
        assert_eq!(h.quantile(0.1), Some(1.0));
        assert!(Histogram::detached().quantile(0.5).is_none());
    }

    #[test]
    fn registration_is_idempotent() {
        let registry = Registry::new();
        let a = registry.counter("x_total", &[("k", "v")], "help");
        let b = registry.counter("x_total", &[("k", "v")], "help");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Label order does not create a new series.
        let c = registry.counter("y_total", &[("a", "1"), ("b", "2")], "h");
        let d = registry.counter("y_total", &[("b", "2"), ("a", "1")], "h");
        c.inc();
        assert_eq!(d.get(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("z", &[], "h");
        registry.gauge("z", &[], "h");
    }
}
