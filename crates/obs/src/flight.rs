//! Crash flight recorder: a fixed-size, lock-striped ring of recent
//! structured events.
//!
//! Writers claim a global sequence number with one atomic increment, then
//! take a short per-stripe mutex to publish the event into its slot
//! (`slot = seq % capacity`, `stripe = slot % stripes`), so concurrent
//! writers on different slots never contend on the same lock. On overwrite
//! races the slot keeps the event with the *larger* sequence number, which
//! makes the steady-state contents exact: once `n >= capacity` events have
//! been recorded, a snapshot holds precisely the last `capacity` sequence
//! numbers.
//!
//! The serving supervisor dumps the ring as NDJSON to stderr on sampler-core
//! panic, reload failure or restart-budget exhaustion, and `/debug/flight`
//! (CLI-gated) serves the same dump on demand.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

const STRIPES: usize = 8;

/// One recorded event.
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Global sequence number (0-based, dense).
    pub seq: u64,
    /// Microseconds since the recorder was created (monotonic clock).
    pub at_us: u64,
    /// Static event kind (`"admit"`, `"panic"`, `"fault"`, …).
    pub kind: &'static str,
    /// Free-form detail, JSON-escaped at render time.
    pub detail: String,
}

impl FlightEvent {
    /// Render as one NDJSON line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64 + self.detail.len());
        out.push_str("{\"event\":\"flight\",\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"at_us\":");
        out.push_str(&self.at_us.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind);
        out.push_str("\",\"detail\":\"");
        escape_into(&mut out, &self.detail);
        out.push_str("\"}");
        out
    }
}

/// JSON string-escape `raw` into `out` (quotes, backslashes, control bytes).
fn escape_into(out: &mut String, raw: &str) {
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// The ring buffer. All methods take `&self`; clone an `Arc` to share.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    seq: AtomicU64,
    epoch: Instant,
    stripes: Vec<Mutex<Vec<Option<FlightEvent>>>>,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        let stripes = (0..STRIPES)
            .map(|s| {
                // Stripe s owns slots ≡ s (mod STRIPES); size accordingly.
                let slots = (capacity + STRIPES - 1 - s) / STRIPES;
                Mutex::new(vec![None; slots])
            })
            .collect();
        FlightRecorder {
            capacity,
            seq: AtomicU64::new(0),
            epoch: Instant::now(),
            stripes,
        }
    }

    /// Number of events recorded over the recorder's lifetime.
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Record one event.
    pub fn record(&self, kind: &'static str, detail: String) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = FlightEvent {
            seq,
            at_us: self.epoch.elapsed().as_micros() as u64,
            kind,
            detail,
        };
        let slot = (seq % self.capacity as u64) as usize;
        let stripe = slot % STRIPES;
        let index = slot / STRIPES;
        let mut slots = self.stripes[stripe].lock().expect("flight stripe poisoned");
        match &slots[index] {
            Some(existing) if existing.seq > seq => {}
            _ => slots[index] = Some(event),
        }
    }

    /// Snapshot the ring contents, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let mut events: Vec<FlightEvent> = Vec::with_capacity(self.capacity);
        for stripe in &self.stripes {
            let slots = stripe.lock().expect("flight stripe poisoned");
            events.extend(slots.iter().flatten().cloned());
        }
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Render the ring as an NDJSON dump: a header line
    /// `{"event":"flight_dump","reason":…,"events":N}` followed by one line
    /// per retained event, oldest first. Ends with a newline.
    pub fn dump(&self, reason: &str) -> String {
        let events = self.snapshot();
        let mut out = String::with_capacity(128 + events.len() * 96);
        out.push_str("{\"event\":\"flight_dump\",\"reason\":\"");
        escape_into(&mut out, reason);
        out.push_str("\",\"events\":");
        out.push_str(&events.len().to_string());
        out.push_str("}\n");
        for event in &events {
            out.push_str(&event.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_last_capacity_events() {
        let ring = FlightRecorder::new(8);
        for i in 0..20 {
            ring.record("t", format!("e{i}"));
        }
        let events = ring.snapshot();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn dump_renders_header_and_escapes_details() {
        let ring = FlightRecorder::new(4);
        ring.record("panic", "say \"hi\"\nthere".into());
        let dump = ring.dump("sampler_panic");
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"event\":\"flight_dump\",\"reason\":\"sampler_panic\",\"events\":1}"
        );
        assert!(lines[1].contains("\\\"hi\\\"\\nthere"), "{}", lines[1]);
    }
}
