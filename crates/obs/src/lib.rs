//! `clgen-obs`: a dependency-free observability core.
//!
//! Three pieces, all hand-rolled in the workspace's house style (no
//! crates.io, text wire formats, deterministic wherever it touches the
//! determinism-guaranteed paths):
//!
//! - [`Registry`] — atomic counters, gauges and fixed-bucket log-scale
//!   [`Histogram`]s registered by name+labels, rendered in the Prometheus
//!   text exposition format (`GET /metrics` in `clgen-serve`).
//! - [`Trace`] — per-request stage spans (`queued → sampling → filter →
//!   drive → features → predict → respond`) with ids that are either
//!   client-supplied or derived deterministically from the request seed.
//! - [`FlightRecorder`] — a lock-striped ring of recent structured events,
//!   dumped as NDJSON when the serving supervisor hits a panic, a reload
//!   failure or restart-budget exhaustion.
//!
//! Instrumentation reads monotonic clocks but never feeds sampled bytes:
//! every durations-bearing artifact (trace objects, histograms, flight
//! timestamps) is additive metadata layered on top of the byte-identical
//! response streams.

#![warn(missing_docs)]

mod flight;
mod metrics;
mod trace;

pub use flight::{FlightEvent, FlightRecorder};
pub use metrics::{Counter, Gauge, Histogram, Registry, HISTOGRAM_BUCKETS};
pub use trace::{derive_trace_id, next_ordinal, valid_trace_id, Trace};

use std::sync::{Arc, OnceLock};

/// The process-global registry. Long-lived binaries (`clgen-serve`) wire
/// this into their server config so background work (training epochs,
/// harness runs) surfaces through the same `/metrics` endpoint; tests that
/// need hermetic counts construct their own [`Registry`] instead.
pub fn global() -> Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new())).clone()
}
