//! A minimal blocking HTTP/1.1 client for the service, used by the
//! integration tests, the `serve_roundtrip` example and the serving-bench
//! load generator. It speaks exactly the slice of HTTP the server emits:
//! fixed-length and chunked responses, one request per connection.

use crate::scheduler::SynthesisParams;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A complete HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code of the response line.
    pub status: u16,
    /// Headers (names lowercased).
    pub headers: Vec<(String, String)>,
    /// The response body (chunked bodies are de-chunked).
    pub body: Vec<u8>,
}

impl Response {
    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body split into non-empty lines — the NDJSON view.
    pub fn lines(&self) -> Vec<String> {
        self.text()
            .lines()
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect()
    }
}

fn read_line(reader: &mut impl BufRead) -> io::Result<String> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

fn bad_data(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Send one request and read the full response.
pub fn request(addr: SocketAddr, method: &str, target: &str) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);

    let status_line = read_line(&mut reader)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad_data("malformed status line"))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    let mut body = Vec::new();
    if find("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
        loop {
            let size_line = read_line(&mut reader)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad_data("malformed chunk size"))?;
            if size == 0 {
                let _ = read_line(&mut reader); // trailing CRLF
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk)?;
            body.extend_from_slice(&chunk);
            let _ = read_line(&mut reader)?; // chunk-terminating CRLF
        }
    } else if let Some(len) = find("content-length") {
        let len: usize = len.parse().map_err(|_| bad_data("bad Content-Length"))?;
        body.resize(len, 0);
        reader.read_exact(&mut body)?;
    } else {
        reader.read_to_end(&mut body)?;
    }

    Ok(Response {
        status,
        headers,
        body,
    })
}

/// `GET` a path.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
    request(addr, "GET", path)
}

/// `POST` a path.
pub fn post(addr: SocketAddr, path: &str) -> io::Result<Response> {
    request(addr, "POST", path)
}

/// The `/synthesize` query string for a parameter set.
pub fn synthesize_target(params: &SynthesisParams) -> String {
    format!(
        "/synthesize?count={}&temperature={}&max_chars={}&seed={}&max_attempts={}",
        params.count, params.temperature, params.max_chars, params.seed, params.max_attempts
    )
}

/// Run one `/synthesize` request and return the full response (NDJSON body).
pub fn synthesize(addr: SocketAddr, params: &SynthesisParams) -> io::Result<Response> {
    post(addr, &synthesize_target(params))
}
