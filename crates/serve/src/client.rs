//! A minimal blocking HTTP/1.1 client for the service, used by the
//! integration tests, the `serve_roundtrip` example and the serving-bench
//! load generator. It speaks exactly the slice of HTTP the server emits:
//! fixed-length and chunked responses, one request per connection.
//!
//! [`RetryPolicy`] adds capped exponential backoff with deterministic
//! jitter on top: transport errors, truncated bodies, `503` (honoring
//! `Retry-After`), `500` panic replies and `aborted` NDJSON terminators are
//! all retried, which is how the chaos suite rides out injected faults and
//! still asserts byte-identical final responses.

use crate::scheduler::SynthesisParams;
use rand::prelude::*;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A complete HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code of the response line.
    pub status: u16,
    /// Headers (names lowercased).
    pub headers: Vec<(String, String)>,
    /// The response body (chunked bodies are de-chunked).
    pub body: Vec<u8>,
}

impl Response {
    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body split into non-empty lines — the NDJSON view.
    pub fn lines(&self) -> Vec<String> {
        self.text()
            .lines()
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect()
    }

    /// The `Retry-After` header in seconds, if present and well-formed.
    pub fn retry_after(&self) -> Option<u64> {
        self.headers
            .iter()
            .find(|(k, _)| k == "retry-after")
            .and_then(|(_, v)| v.trim().parse().ok())
    }

    /// True if this is a complete `/synthesize` response: status 200 and a
    /// clean terminal summary line (`"done":true`), as opposed to an
    /// `aborted` terminator from a failure that struck after the response
    /// head was written. A partial response with a `timeout` marker *is*
    /// complete — the server honored the request's own deadline.
    pub fn is_complete_synthesis(&self) -> bool {
        self.status == 200
            && self
                .lines()
                .last()
                .is_some_and(|l| l.starts_with("{\"done\":true,"))
    }
}

/// Capped exponential backoff with deterministic jitter.
///
/// Attempt `i` (0-based) backs off `base_delay * 2^i`, scaled by a jitter
/// factor in `[0.5, 1.0)` drawn from a generator seeded with `jitter_seed`
/// (deterministic, so tests reproduce their exact retry schedule), raised to
/// the server's `Retry-After` when one is given, and finally capped at
/// `max_delay`.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (0 behaves as 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff, `Retry-After` included.
    pub max_delay: Duration,
    /// Seed for the jitter generator.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `retry` (0-based), given the server's
    /// `Retry-After` advice from the failed attempt, if any.
    fn delay(&self, retry: u32, rng: &mut StdRng, retry_after: Option<u64>) -> Duration {
        let backoff = self.base_delay.saturating_mul(1u32 << retry.min(16));
        let jitter: f64 = 0.5 + rng.gen::<f64>() * 0.5;
        let mut delay = backoff.mul_f64(jitter);
        if let Some(secs) = retry_after {
            delay = delay.max(Duration::from_secs(secs));
        }
        delay.min(self.max_delay)
    }

    /// Run `op` until `accept` passes, retrying transport errors and
    /// rejected responses with backoff. Returns the last outcome once
    /// attempts are exhausted.
    fn run(
        &self,
        mut op: impl FnMut() -> io::Result<Response>,
        accept: impl Fn(&Response) -> bool,
    ) -> io::Result<Response> {
        let mut rng = StdRng::seed_from_u64(self.jitter_seed);
        let attempts = self.max_attempts.max(1);
        let mut outcome = op();
        for retry in 0..attempts - 1 {
            let retry_after = match &outcome {
                Ok(response) if accept(response) => return outcome,
                Ok(response) => response.retry_after(),
                Err(_) => None,
            };
            std::thread::sleep(self.delay(retry, &mut rng, retry_after));
            outcome = op();
        }
        outcome
    }
}

/// True for responses worth retrying as a plain HTTP request: `503` (server
/// saturated or stopping) and `500` (a request aborted by a sampler-core
/// panic; the supervisor respawns the core, so a retry hits a fresh one).
fn transient_status(status: u16) -> bool {
    status == 503 || status == 500
}

/// Send one request with retries under `policy`: transport errors (including
/// truncated chunked bodies) and transient statuses are retried.
pub fn request_with_retry(
    addr: SocketAddr,
    method: &str,
    target: &str,
    policy: &RetryPolicy,
) -> io::Result<Response> {
    policy.run(
        || request(addr, method, target),
        |response| !transient_status(response.status),
    )
}

/// Run `/synthesize` with retries under `policy`. On top of the transport
/// and status retries of [`request_with_retry`], a `200` whose body ends in
/// an `aborted` terminator (a failure after the response head was written)
/// is also retried — the response body is deterministic, so the retry
/// reproduces the lost bytes.
pub fn synthesize_with_retry(
    addr: SocketAddr,
    params: &SynthesisParams,
    policy: &RetryPolicy,
) -> io::Result<Response> {
    let target = synthesize_target(params);
    policy.run(
        || post(addr, &target),
        |response| {
            response.is_complete_synthesis()
                || (!transient_status(response.status) && response.status != 200)
        },
    )
}

fn read_line(reader: &mut impl BufRead) -> io::Result<String> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

fn bad_data(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Send one request and read the full response.
pub fn request(addr: SocketAddr, method: &str, target: &str) -> io::Result<Response> {
    request_with_body(addr, method, target, &[])
}

/// Send one request carrying a body (`Content-Length`-framed) and read the
/// full response. An empty body sends no body bytes and no length header.
pub fn request_with_body(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    if body.is_empty() {
        write!(
            stream,
            "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
        )?;
    } else {
        write!(
            stream,
            "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )?;
        stream.write_all(body)?;
    }
    stream.flush()?;
    let mut reader = BufReader::new(stream);

    let status_line = read_line(&mut reader)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad_data("malformed status line"))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    let mut body = Vec::new();
    if find("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
        loop {
            let size_line = read_line(&mut reader)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad_data("malformed chunk size"))?;
            if size == 0 {
                let _ = read_line(&mut reader); // trailing CRLF
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk)?;
            body.extend_from_slice(&chunk);
            let _ = read_line(&mut reader)?; // chunk-terminating CRLF
        }
    } else if let Some(len) = find("content-length") {
        let len: usize = len.parse().map_err(|_| bad_data("bad Content-Length"))?;
        body.resize(len, 0);
        reader.read_exact(&mut body)?;
    } else {
        reader.read_to_end(&mut body)?;
    }

    Ok(Response {
        status,
        headers,
        body,
    })
}

/// `GET` a path.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
    request(addr, "GET", path)
}

/// `POST` a path.
pub fn post(addr: SocketAddr, path: &str) -> io::Result<Response> {
    request(addr, "POST", path)
}

/// `POST` a path with a request body (how the harness endpoints take their
/// kernel source).
pub fn post_body(addr: SocketAddr, path: &str, body: &[u8]) -> io::Result<Response> {
    request_with_body(addr, "POST", path, body)
}

/// The `/synthesize` query string for a parameter set.
pub fn synthesize_target(params: &SynthesisParams) -> String {
    let mut target = format!(
        "/synthesize?count={}&temperature={}&max_chars={}&seed={}&max_attempts={}",
        params.count, params.temperature, params.max_chars, params.seed, params.max_attempts
    );
    if let Some(ms) = params.deadline_ms {
        target.push_str(&format!("&deadline_ms={ms}"));
    }
    target
}

/// Run one `/synthesize` request and return the full response (NDJSON body).
pub fn synthesize(addr: SocketAddr, params: &SynthesisParams) -> io::Result<Response> {
    post(addr, &synthesize_target(params))
}

/// Strip the additive trace annotations (the done line's `"trace"` object
/// and the harness event lines' `"trace_id"` field) from a response body,
/// recovering the deterministic bytes the byte-identity guarantee covers.
pub fn strip_traces(body: &str) -> String {
    crate::json::strip_trace_body(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response(status: u16, headers: &[(&str, &str)], body: &str) -> Response {
        Response {
            status,
            headers: headers
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn backoff_is_deterministic_capped_and_honors_retry_after() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(800),
            jitter_seed: 42,
        };
        let mut a = StdRng::seed_from_u64(policy.jitter_seed);
        let mut b = StdRng::seed_from_u64(policy.jitter_seed);
        for retry in 0..3 {
            let da = policy.delay(retry, &mut a, None);
            let db = policy.delay(retry, &mut b, None);
            assert_eq!(da, db, "same seed, same schedule");
            // Jitter stays within [0.5, 1.0) of the exponential backoff,
            // before the cap.
            let backoff = Duration::from_millis(100 * (1 << retry));
            assert!(da >= backoff.mul_f64(0.5).min(policy.max_delay));
            assert!(da <= policy.max_delay);
        }
        // Retry-After raises the delay but never beyond the cap.
        let mut rng = StdRng::seed_from_u64(7);
        let raised = policy.delay(0, &mut rng, Some(600));
        assert!(raised <= policy.max_delay);
        assert!(raised >= Duration::from_millis(550).min(policy.max_delay));
    }

    #[test]
    fn synthesis_completion_detection() {
        let done = response(
            200,
            &[],
            "{\"kernel\":\"k\"}\n{\"done\":true,\"kernels\":1}\n",
        );
        assert!(done.is_complete_synthesis());
        let aborted = response(
            200,
            &[],
            "{\"kernel\":\"k\"}\n{\"aborted\":\"sampler core panicked\",\"status\":500}\n",
        );
        assert!(!aborted.is_complete_synthesis());
        let unavailable = response(503, &[("retry-after", "1")], "{\"error\":\"queue full\"}\n");
        assert!(!unavailable.is_complete_synthesis());
        assert_eq!(unavailable.retry_after(), Some(1));
    }
}
