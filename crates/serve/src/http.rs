//! Minimal, bounds-checked HTTP/1.1 framing.
//!
//! The build environment has no async runtime or HTTP stack (the vendored
//! crates rule out tokio/hyper), so the service hand-rolls the narrow slice
//! of HTTP/1.1 it needs, the way `clgen-wire` hand-rolls serialization:
//!
//! * a request parser with hard limits on request-line, header and body
//!   sizes — malformed or oversized input is a typed [`HttpError`], never a
//!   panic or an unbounded allocation;
//! * fixed-length response writing ([`write_response`]) and a chunked
//!   transfer encoder ([`ChunkedWriter`]) for streaming NDJSON synthesis
//!   responses whose length is unknown up front.
//!
//! Connections are `Connection: close`: one request per connection keeps the
//! framing trivial and suits the service's long-lived streaming responses.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Maximum accepted request-line length in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Maximum accepted header-line length in bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Maximum accepted number of headers.
pub const MAX_HEADERS: usize = 64;
/// Maximum accepted request body length in bytes.
pub const MAX_BODY: usize = 64 * 1024;

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The connection closed before a full request was read.
    UnexpectedEof,
    /// A request line, header or body exceeded its size limit.
    TooLarge {
        /// Which part of the request overflowed.
        what: &'static str,
    },
    /// The request line or a header was not well-formed HTTP/1.1.
    Malformed {
        /// Description of the violated rule.
        what: &'static str,
    },
    /// The request uses a feature this server does not implement
    /// (e.g. request bodies with `Transfer-Encoding`).
    Unsupported {
        /// The unsupported feature.
        what: &'static str,
    },
    /// Reading from the socket failed.
    Io(io::ErrorKind),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::UnexpectedEof => f.write_str("connection closed mid-request"),
            HttpError::TooLarge { what } => write!(f, "{what} exceeds the size limit"),
            HttpError::Malformed { what } => write!(f, "malformed request: {what}"),
            HttpError::Unsupported { what } => write!(f, "unsupported: {what}"),
            HttpError::Io(kind) => write!(f, "socket read failed: {kind:?}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e.kind())
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercase as sent.
    pub method: String,
    /// Path component of the request target (before `?`).
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers in order of appearance (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first query parameter named `name`, if any.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read one CRLF- (or LF-) terminated line, rejecting lines longer than
/// `limit` before buffering more than `limit` bytes.
fn read_line_limited(
    reader: &mut impl BufRead,
    limit: usize,
    what: &'static str,
) -> Result<String, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Err(HttpError::UnexpectedEof);
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            if line.len() + pos > limit {
                return Err(HttpError::TooLarge { what });
            }
            line.extend_from_slice(&buf[..pos]);
            reader.consume(pos + 1);
            break;
        }
        if line.len() + buf.len() > limit {
            return Err(HttpError::TooLarge { what });
        }
        line.extend_from_slice(buf);
        let n = buf.len();
        reader.consume(n);
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::Malformed {
        what: "line holds invalid UTF-8",
    })
}

/// Decode `%XX` escapes and `+`-as-space in a query component. Invalid
/// escapes pass through literally (the service's parameters are numeric, so
/// strictness buys nothing).
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| -> Option<u8> {
                    match b {
                        b'0'..=b'9' => Some(b - b'0'),
                        b'a'..=b'f' => Some(b - b'a' + 10),
                        b'A'..=b'F' => Some(b - b'A' + 10),
                        _ => None,
                    }
                };
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(hi), Some(lo)) => {
                        out.push(hi * 16 + lo);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Split a request target into its path and decoded query parameters.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, query)) => {
            let params = query
                .split('&')
                .filter(|part| !part.is_empty())
                .map(|part| match part.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(part), String::new()),
                })
                .collect();
            (path.to_string(), params)
        }
    }
}

/// Read and parse one HTTP/1.1 request from `reader`.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let request_line = read_line_limited(reader, MAX_REQUEST_LINE, "request line")?;
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(HttpError::Malformed {
                what: "request line is not `METHOD target HTTP/1.x`",
            })
        }
    };
    if version != "HTTP/1.1" {
        // HTTP/1.0 clients cannot be served either: synthesis responses use
        // chunked transfer encoding, which 1.0 does not understand.
        return Err(HttpError::Unsupported {
            what: "HTTP versions other than 1.1 (responses are chunked)",
        });
    }
    let (path, query) = parse_target(target);

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line_limited(reader, MAX_HEADER_LINE, "header line")?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge {
                what: "header count",
            });
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed {
                what: "header line has no colon",
            });
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(HttpError::Unsupported {
            what: "request bodies with Transfer-Encoding",
        });
    }
    let mut body = Vec::new();
    if let Some(len) = headers.iter().find(|(k, _)| k == "content-length") {
        let len: usize = len.1.parse().map_err(|_| HttpError::Malformed {
            what: "Content-Length is not an integer",
        })?;
        if len > MAX_BODY {
            return Err(HttpError::TooLarge {
                what: "request body",
            });
        }
        body.resize(len, 0);
        reader.read_exact(&mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                HttpError::UnexpectedEof
            } else {
                HttpError::Io(e.kind())
            }
        })?;
    }

    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    })
}

/// Write a complete fixed-length response with the given extra headers.
pub fn write_response_with(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Write a complete fixed-length response.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write_response_with(w, status, reason, &[], content_type, body)
}

/// Streams a `Transfer-Encoding: chunked` response body.
///
/// Construction writes the response head; [`chunk`](ChunkedWriter::chunk)
/// emits one chunk per call, and [`finish`](ChunkedWriter::finish) writes
/// the terminating zero-length chunk.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    w: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Write the response head and return the chunk writer.
    pub fn new(mut w: W, status: u16, reason: &str, content_type: &str) -> io::Result<Self> {
        write!(
            w,
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        )?;
        w.flush()?;
        Ok(ChunkedWriter { w })
    }

    /// Write one chunk (empty input writes nothing: a zero-length chunk
    /// would terminate the stream).
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Terminate the chunked body.
    pub fn finish(mut self) -> io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_a_request_with_query_and_body() {
        let req = parse(
            b"POST /synthesize?count=3&temperature=0.9&note=a%20b+c HTTP/1.1\r\n\
              Host: localhost\r\n\
              Content-Length: 4\r\n\
              \r\nbody",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/synthesize");
        assert_eq!(req.query_param("count"), Some("3"));
        assert_eq!(req.query_param("temperature"), Some("0.9"));
        assert_eq!(req.query_param("note"), Some("a b c"));
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("HOST"), Some("localhost"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn truncated_requests_are_typed_errors() {
        assert_eq!(parse(b"GET /x HT"), Err(HttpError::UnexpectedEof));
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::UnexpectedEof)
        );
    }

    #[test]
    fn malformed_and_oversized_requests_are_rejected() {
        assert!(matches!(
            parse(b"GARBAGE\r\n\r\n"),
            Err(HttpError::Malformed { .. })
        ));
        assert!(matches!(
            parse(b"GET / SPDY/3\r\n\r\n"),
            Err(HttpError::Unsupported { .. })
        ));
        // HTTP/1.0 cannot consume the chunked responses this server sends.
        assert!(matches!(
            parse(b"GET /healthz HTTP/1.0\r\n\r\n"),
            Err(HttpError::Unsupported { .. })
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::Malformed { .. })
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: zzz\r\n\r\n"),
            Err(HttpError::Malformed { .. })
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"),
            Err(HttpError::TooLarge { .. })
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Unsupported { .. })
        ));

        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + 1));
        assert!(matches!(
            parse(long_line.as_bytes()),
            Err(HttpError::TooLarge { .. })
        ));
        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            "X-H: v\r\n".repeat(MAX_HEADERS + 1)
        );
        assert!(matches!(
            parse(many_headers.as_bytes()),
            Err(HttpError::TooLarge { .. })
        ));
    }

    #[test]
    fn lf_only_line_endings_are_accepted() {
        let req = parse(b"GET /healthz HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn chunked_writer_frames_chunks() {
        let mut out = Vec::new();
        let mut w = ChunkedWriter::new(&mut out, 200, "OK", "text/plain").unwrap();
        w.chunk(b"hello\n").unwrap();
        w.chunk(b"").unwrap();
        w.chunk(b"world\n").unwrap();
        w.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("6\r\nhello\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
