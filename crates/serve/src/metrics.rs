//! The serving stack's metric catalog: every counter, gauge and histogram
//! the server records, pre-registered once into a [`Registry`] so hot paths
//! only touch atomics.
//!
//! `/stats` renders from these same handles (see `server::render_stats`),
//! so the text blob and the Prometheus exposition can never disagree — they
//! are two views of one set of atomics. The full catalog is documented in
//! the README's "Observability" section.

use clgen_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Pre-registered handles for the serving metric catalog.
#[derive(Debug)]
pub(crate) struct ServeMetrics {
    /// The registry everything is registered in (also receives the
    /// harness-side and training-side metrics; rendered by `GET /metrics`).
    pub registry: Arc<Registry>,
    /// `clgen_requests_received_total`.
    pub requests_received: Counter,
    /// `clgen_requests_completed_total`.
    pub requests_completed: Counter,
    /// `clgen_requests_rejected_total` (queue-full 503s).
    pub requests_rejected: Counter,
    /// `clgen_requests_shed_total` (expired while queued).
    pub requests_shed: Counter,
    /// `clgen_requests_timed_out_total` (partial response, `timeout` marker).
    pub requests_timed_out: Counter,
    /// `clgen_requests_failed_total` (panic quarantine, drain cutoff).
    pub requests_failed: Counter,
    /// `clgen_sampling_kernels_total` (accepted kernels).
    pub kernels: Counter,
    /// `clgen_sampling_attempts_total` (candidates absorbed).
    pub attempts: Counter,
    /// `clgen_generated_chars_total`.
    pub generated_chars: Counter,
    /// `clgen_filter_accepted_total`.
    pub filter_accepted: Counter,
    /// `clgen_queue_depth` gauge (refreshed on scrape).
    pub queue_depth: Gauge,
    /// `clgen_lanes_busy` gauge.
    pub lanes_busy: Gauge,
    /// `clgen_active_requests` gauge.
    pub active_requests: Gauge,
    /// `clgen_lane_occupancy` histogram: occupied lanes per sampling round.
    pub lane_occupancy: Histogram,
    /// `clgen_queue_wait_us{outcome="admitted"}`.
    pub queue_wait_admitted: Histogram,
    /// `clgen_queue_wait_us{outcome="shed"}` — recorded on both the
    /// traffic-driven and the idle `recv_timeout` sweep paths.
    pub queue_wait_shed: Histogram,
    /// `clgen_supervisor_restarts_total`.
    pub supervisor_restarts: Counter,
}

const LATENCY: &str = "clgen_request_latency_us";
const REJECTED_BY_REASON: &str = "clgen_filter_rejects_total";
const CANDIDATES: &str = "clgen_candidates_total";

/// The label values of the `clgen_candidates_total{outcome}` family, in
/// exposition order. Outcomes are mutually exclusive and sum to the absorbed
/// attempts: `accepted` (natively valid), `repaired` (accepted only after
/// deterministic repair), `aborted_midstream` (reaped by the incremental
/// validator mid-kernel), `rejected` (every other filter rejection).
pub(crate) const CANDIDATE_OUTCOMES: [&str; 4] =
    ["accepted", "repaired", "aborted_midstream", "rejected"];

impl ServeMetrics {
    /// Register the full serving catalog in `registry` and return the
    /// handles. Harness families are pre-registered too (at zero), so
    /// `/stats` and `/metrics` expose them before the first drive.
    pub fn new(registry: Arc<Registry>) -> ServeMetrics {
        let c = |name: &str, help: &str| registry.counter(name, &[], help);
        let g = |name: &str, help: &str| registry.gauge(name, &[], help);
        for outcome in ["ok", "budget_killed", "panicked"] {
            registry.counter(
                "clgen_harness_units_total",
                &[("outcome", outcome)],
                "Harness work units by outcome",
            );
        }
        registry.counter(
            "clgen_harness_kernels_driven_total",
            &[],
            "Kernels driven through the harness",
        );
        registry.counter(
            "clgen_harness_predictions_total",
            &[],
            "CPU/GPU mapping predictions produced",
        );
        registry.histogram(
            "clgen_harness_unit_run_us",
            &[],
            "Per-unit drive wall-clock in microseconds",
        );
        // Candidate outcomes are pre-registered at zero so the family is
        // complete in `/metrics` before the first candidate is absorbed.
        for outcome in CANDIDATE_OUTCOMES {
            registry.counter(
                CANDIDATES,
                &[("outcome", outcome)],
                "Absorbed candidates by outcome",
            );
        }
        ServeMetrics {
            requests_received: c(
                "clgen_requests_received_total",
                "Requests accepted onto the admission queue",
            ),
            requests_completed: c(
                "clgen_requests_completed_total",
                "Requests fully answered with a done line",
            ),
            requests_rejected: c(
                "clgen_requests_rejected_total",
                "Requests rejected 503 at the queue-full gate",
            ),
            requests_shed: c(
                "clgen_requests_shed_total",
                "Queued requests shed because their deadline expired",
            ),
            requests_timed_out: c(
                "clgen_requests_timed_out_total",
                "Requests that hit their deadline mid-flight (partial response)",
            ),
            requests_failed: c(
                "clgen_requests_failed_total",
                "Requests aborted by a sampler-core panic or drain cutoff",
            ),
            kernels: c(
                "clgen_sampling_kernels_total",
                "Accepted kernels absorbed into responses",
            ),
            attempts: c(
                "clgen_sampling_attempts_total",
                "Sampled candidates absorbed into responses",
            ),
            generated_chars: c(
                "clgen_generated_chars_total",
                "Characters generated across absorbed candidates",
            ),
            filter_accepted: c(
                "clgen_filter_accepted_total",
                "Candidates accepted by the rejection filter",
            ),
            queue_depth: g(
                "clgen_queue_depth",
                "Requests queued ahead of the sampler core",
            ),
            lanes_busy: g(
                "clgen_lanes_busy",
                "Lanes running a candidate after the last round",
            ),
            active_requests: g(
                "clgen_active_requests",
                "Requests active in the sampler core",
            ),
            lane_occupancy: registry.histogram(
                "clgen_lane_occupancy",
                &[],
                "Occupied batch lanes per sampling round",
            ),
            queue_wait_admitted: registry.histogram(
                "clgen_queue_wait_us",
                &[("outcome", "admitted")],
                "Microseconds spent queued, by admission outcome",
            ),
            queue_wait_shed: registry.histogram(
                "clgen_queue_wait_us",
                &[("outcome", "shed")],
                "Microseconds spent queued, by admission outcome",
            ),
            supervisor_restarts: c(
                "clgen_supervisor_restarts_total",
                "Sampler-core restarts recorded by the supervisor",
            ),
            registry,
        }
    }

    /// The request-latency histogram for one endpoint/outcome pair
    /// (get-or-create; recorded once per request, so the registry lookup is
    /// off the hot path).
    pub fn request_latency(&self, endpoint: &'static str, outcome: &'static str) -> Histogram {
        self.registry.histogram(
            LATENCY,
            &[("endpoint", endpoint), ("outcome", outcome)],
            "Request latency in microseconds, by endpoint and outcome",
        )
    }

    /// Record one request's latency observation.
    pub fn observe_latency(&self, endpoint: &'static str, outcome: &'static str, us: u64) {
        self.request_latency(endpoint, outcome).observe(us);
    }

    /// The rejection counter for one filter-rejection reason.
    pub fn filter_rejected(&self, reason: &str) -> Counter {
        self.registry.counter(
            REJECTED_BY_REASON,
            &[("reason", reason)],
            "Candidates rejected by the filter, by reason",
        )
    }

    /// Snapshot the per-reason rejection counts (sorted by reason).
    pub fn rejection_counts(&self) -> Vec<(String, u64)> {
        self.registry
            .counter_values(REJECTED_BY_REASON)
            .into_iter()
            .filter_map(|(labels, value)| {
                labels
                    .into_iter()
                    .find(|(k, _)| k == "reason")
                    .map(|(_, reason)| (reason, value))
            })
            .collect()
    }

    /// The candidate counter for one outcome
    /// (see [`CANDIDATE_OUTCOMES`]).
    pub fn candidate_outcome(&self, outcome: &'static str) -> Counter {
        self.registry.counter(
            CANDIDATES,
            &[("outcome", outcome)],
            "Absorbed candidates by outcome",
        )
    }

    /// Snapshot the candidate-outcome counts in [`CANDIDATE_OUTCOMES`] order.
    pub fn candidate_counts(&self) -> [(&'static str, u64); 4] {
        CANDIDATE_OUTCOMES.map(|outcome| (outcome, self.candidate_outcome(outcome).get()))
    }
}
