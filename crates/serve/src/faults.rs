//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] names a set of **fault points** compiled into the server
//! and arms each one to fire at a chosen hit count. Every point keeps a
//! process-wide monotonic hit counter, so for a fixed plan and a fixed
//! request sequence the faults fire at exactly the same places on every run —
//! which is what lets the chaos suite (`tests/chaos.rs`) assert that
//! *unaffected* concurrent requests still produce byte-identical responses
//! while faults fire around them.
//!
//! The hooks are compiled in only under the `faults` cargo feature; without
//! it [`FaultPlan::fire`] is a `const None` the optimizer deletes, so the
//! production build pays nothing for the instrumentation (measured in
//! `BENCH_serving.json`).
//!
//! # Plan grammar
//!
//! A plan is a comma-separated list of entries, e.g.
//! `sampler_panic@40,slow_write@1+:25,seed=7`:
//!
//! | entry | meaning |
//! |---|---|
//! | `NAME@N` | fire exactly on the Nth hit of the point (1-based) |
//! | `NAME@N+` | fire on every hit from the Nth on |
//! | `NAME@N:ARG` | as above, with an integer argument (milliseconds for the stall/delay points) |
//! | `seed=S` | seed for fault randomness (e.g. which checkpoint byte to corrupt) |
//!
//! Plans come from the `--faults` CLI flag or the `CLGEN_SERVE_FAULTS`
//! environment variable (see [`FaultPlan::from_env`]).
//!
//! # Fault points
//!
//! | name | where it fires | effect |
//! |---|---|---|
//! | `sampler_panic` | sampler core, once per batched step round | `panic!` inside the supervised core (exercises panic isolation + respawn) |
//! | `sampler_stall` | sampler core, once per scheduler loop iteration | sleeps `ARG` ms (drives queue saturation / backpressure) |
//! | `slow_write` | connection handler, before each response chunk | sleeps `ARG` ms (a slow client link) |
//! | `drop_response` | connection handler, after a chunk is written | hard-closes the socket mid-body |
//! | `corrupt_reload` | supervisor, on checkpoint reload after a panic | flips one seed-chosen byte of the checkpoint header, failing the reload |
//! | `filter_panic` | rejection-filter worker, once per candidate | `panic!` inside the filter (isolated to a typed rejection) |

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A named fault point compiled into the serving stack (see the module docs
/// for where each one fires).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Panic in the sampler core, once per batched step round.
    SamplerPanic,
    /// Sleep in the sampler core loop (saturates the admission queue).
    SamplerStall,
    /// Sleep before each response chunk write (a slow client link).
    SlowWrite,
    /// Hard-close the client socket right after a chunk write.
    DropResponse,
    /// Corrupt one byte of the checkpoint image on supervisor reload.
    CorruptReload,
    /// Panic inside the rejection filter for one candidate.
    FilterPanic,
}

impl FaultPoint {
    const ALL: [FaultPoint; 6] = [
        FaultPoint::SamplerPanic,
        FaultPoint::SamplerStall,
        FaultPoint::SlowWrite,
        FaultPoint::DropResponse,
        FaultPoint::CorruptReload,
        FaultPoint::FilterPanic,
    ];

    /// The point's name in the plan grammar.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::SamplerPanic => "sampler_panic",
            FaultPoint::SamplerStall => "sampler_stall",
            FaultPoint::SlowWrite => "slow_write",
            FaultPoint::DropResponse => "drop_response",
            FaultPoint::CorruptReload => "corrupt_reload",
            FaultPoint::FilterPanic => "filter_panic",
        }
    }

    fn index(self) -> usize {
        FaultPoint::ALL
            .iter()
            .position(|&p| p == self)
            .expect("point is in ALL")
    }
}

/// One armed fault point: fire at hit `at` (1-based), optionally on every
/// later hit too, with an integer argument for the points that take one.
/// Only the feature-gated [`FaultPlan::fire`] reads the fields.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(not(feature = "faults"), allow(dead_code))]
struct Arm {
    at: u64,
    repeat: bool,
    arg: u64,
}

#[derive(Debug, Default)]
struct Inner {
    seed: u64,
    arms: [Option<Arm>; 6],
    hits: [AtomicU64; 6],
}

/// A seeded, deterministic fault-injection plan (inert by default; see the
/// module docs for the grammar and the fault points).
///
/// Cloning a plan shares its hit counters: the server config can be cloned
/// freely and every thread still sees one process-wide counter per point.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<Inner>>,
}

impl FaultPlan {
    /// The inert plan: no fault ever fires.
    pub fn inert() -> FaultPlan {
        FaultPlan::default()
    }

    /// True if any fault point is armed.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// The plan's randomness seed (`seed=S` entry; 0 if unset or inert).
    pub fn seed(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.seed)
    }

    /// Parse a plan from the grammar in the module docs. The empty string is
    /// the inert plan. Without the `faults` cargo feature, any non-empty spec
    /// is an error: the hooks are compiled out, so an armed plan would be
    /// silently ignored — failing loudly is safer.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(FaultPlan::inert());
        }
        if !cfg!(feature = "faults") {
            return Err(
                "fault injection requested but clgen-serve was built without the `faults` \
                 feature (rebuild with `--features faults`)"
                    .to_string(),
            );
        }
        let mut inner = Inner::default();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            if let Some(seed) = entry.strip_prefix("seed=") {
                inner.seed = seed
                    .parse()
                    .map_err(|_| format!("fault plan: seed is not an integer: {entry:?}"))?;
                continue;
            }
            let (name, trigger) = entry
                .split_once('@')
                .ok_or_else(|| format!("fault plan: entry is not NAME@N[+][:ARG]: {entry:?}"))?;
            let point = FaultPoint::ALL
                .iter()
                .find(|p| p.name() == name)
                .ok_or_else(|| format!("fault plan: unknown fault point {name:?}"))?;
            let (trigger, arg) = match trigger.split_once(':') {
                None => (trigger, 0),
                Some((t, arg)) => (
                    t,
                    arg.parse().map_err(|_| {
                        format!("fault plan: argument is not an integer: {entry:?}")
                    })?,
                ),
            };
            let (at_str, repeat) = match trigger.strip_suffix('+') {
                Some(at) => (at, true),
                None => (trigger, false),
            };
            let at: u64 = at_str
                .parse()
                .map_err(|_| format!("fault plan: hit count is not an integer: {entry:?}"))?;
            if at == 0 {
                return Err(format!("fault plan: hit counts are 1-based: {entry:?}"));
            }
            inner.arms[point.index()] = Some(Arm { at, repeat, arg });
        }
        Ok(FaultPlan {
            inner: Some(Arc::new(inner)),
        })
    }

    /// Parse the plan from the `CLGEN_SERVE_FAULTS` environment variable
    /// (unset or empty means inert).
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var("CLGEN_SERVE_FAULTS") {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => Ok(FaultPlan::inert()),
        }
    }

    /// Record one hit at `point` and return `Some(arg)` if the fault fires on
    /// this hit. Compiled to a constant `None` without the `faults` feature.
    #[cfg(feature = "faults")]
    pub fn fire(&self, point: FaultPoint) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let hit = inner.hits[point.index()].fetch_add(1, Ordering::SeqCst) + 1;
        let arm = inner.arms[point.index()]?;
        let fires = if arm.repeat {
            hit >= arm.at
        } else {
            hit == arm.at
        };
        fires.then_some(arm.arg)
    }

    /// Record one hit at `point` and return `Some(arg)` if the fault fires on
    /// this hit. Compiled to a constant `None` without the `faults` feature.
    #[cfg(not(feature = "faults"))]
    #[inline(always)]
    pub fn fire(&self, _point: FaultPoint) -> Option<u64> {
        None
    }

    /// Hits recorded at `point` so far (0 without the `faults` feature).
    pub fn hits(&self, point: FaultPoint) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.hits[point.index()].load(Ordering::SeqCst))
    }

    /// Corrupt `bytes` in place if [`FaultPoint::CorruptReload`] fires on
    /// this hit: one byte of the checkpoint container header, chosen
    /// deterministically from the plan seed and the hit ordinal, is
    /// bit-flipped. Targeting the header (magic + version — the checkpoint
    /// format carries no payload checksum) guarantees the decode fails
    /// loudly, which is the supervisor path this fault exists to exercise.
    /// Returns the flipped index.
    pub fn corrupt_reload(&self, bytes: &mut [u8]) -> Option<usize> {
        self.fire(FaultPoint::CorruptReload).map(|_| {
            if bytes.is_empty() {
                return 0;
            }
            let ordinal = self.hits(FaultPoint::CorruptReload);
            let mut state = self.seed() ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            // One SplitMix64 round: spread the seed over the byte range.
            state = (state ^ (state >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            let header = bytes.len().min(12) as u64;
            let index = (state % header) as usize;
            bytes[index] ^= 0xFF;
            index
        })
    }

    /// Sleep for the fault's argument (milliseconds) if `point` fires on this
    /// hit. The shape of the `sampler_stall` and `slow_write` points.
    pub fn stall(&self, point: FaultPoint) {
        if let Some(ms) = self.fire(point) {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }
}

#[cfg(all(test, feature = "faults"))]
mod tests {
    use super::*;

    #[test]
    fn parse_and_fire_semantics() {
        let plan = FaultPlan::parse("sampler_panic@3,slow_write@2+:25,seed=9").unwrap();
        assert!(plan.is_active());
        assert_eq!(plan.seed(), 9);

        // One-shot: fires exactly on the 3rd hit.
        assert_eq!(plan.fire(FaultPoint::SamplerPanic), None);
        assert_eq!(plan.fire(FaultPoint::SamplerPanic), None);
        assert_eq!(plan.fire(FaultPoint::SamplerPanic), Some(0));
        assert_eq!(plan.fire(FaultPoint::SamplerPanic), None);

        // Repeating: fires on every hit from the 2nd, carrying its argument.
        assert_eq!(plan.fire(FaultPoint::SlowWrite), None);
        assert_eq!(plan.fire(FaultPoint::SlowWrite), Some(25));
        assert_eq!(plan.fire(FaultPoint::SlowWrite), Some(25));

        // Unarmed points never fire but still count hits.
        assert_eq!(plan.fire(FaultPoint::FilterPanic), None);
        assert_eq!(plan.hits(FaultPoint::FilterPanic), 1);
    }

    #[test]
    fn clones_share_hit_counters() {
        let plan = FaultPlan::parse("drop_response@2").unwrap();
        let clone = plan.clone();
        assert_eq!(plan.fire(FaultPoint::DropResponse), None);
        assert_eq!(clone.fire(FaultPoint::DropResponse), Some(0));
    }

    #[test]
    fn corruption_is_deterministic_and_seeded() {
        let corrupt_once = |seed: u64| {
            let plan = FaultPlan::parse(&format!("corrupt_reload@1,seed={seed}")).unwrap();
            let mut bytes = vec![0u8; 64];
            let index = plan.corrupt_reload(&mut bytes).expect("fires on first hit");
            assert_eq!(bytes[index], 0xFF);
            assert_eq!(bytes.iter().filter(|&&b| b != 0).count(), 1);
            // Second reload is untouched: the arm is one-shot.
            let mut clean = vec![0u8; 64];
            assert_eq!(plan.corrupt_reload(&mut clean), None);
            assert!(clean.iter().all(|&b| b == 0));
            index
        };
        assert_eq!(corrupt_once(7), corrupt_once(7), "same seed, same byte");
    }

    #[test]
    fn rejected_specs() {
        assert!(FaultPlan::parse("nope@1").is_err());
        assert!(FaultPlan::parse("sampler_panic=3").is_err());
        assert!(FaultPlan::parse("sampler_panic@0").is_err());
        assert!(FaultPlan::parse("sampler_panic@x").is_err());
        assert!(FaultPlan::parse("slow_write@1:ms").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(!FaultPlan::parse("").unwrap().is_active());
    }
}
