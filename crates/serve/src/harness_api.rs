//! The served side of the drive-and-predict harness: `POST /drive`,
//! `POST /features` and `POST /pipeline`.
//!
//! `/drive` and `/features` take raw OpenCL source as the request body, fan
//! it through the [`clgen_harness`] work-unit pool on the connection thread,
//! and stream one NDJSON stage back (`run` records, or feature vectors).
//! `/pipeline` closes the paper's loop over one socket: it runs a normal
//! `/synthesize` job through the batching scheduler and, after each accepted
//! kernel line, drives that kernel through the harness inline — so the
//! client sees `kernel`, `run`, `features` and `prediction` events
//! interleaved per kernel, then the synthesis summary line.
//!
//! All three share the server's admission machinery: the bounded `queued`
//! gate answers `503` with `Retry-After` under load, the deadline clock
//! starts at admission, and hostile kernels are contained by the harness's
//! per-unit budgets and `catch_unwind` — a panic or budget kill becomes a
//! typed `unit_error` NDJSON line, never a sampler-core restart.

use crate::http::{self, Request};
use crate::json;
use crate::scheduler::SchedMsg;
use crate::server::{client_disconnected, stream_synthesis, write_error, Shared, MAX_DEADLINE_MS};
use clgen_harness::{Deadline, Harness, HarnessReport};
use clgen_obs::Trace;
use grewe_features::FeatureSet;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Maximum number of payload sizes accepted per request.
pub const MAX_DRIVE_SIZES: usize = 16;
/// Largest accepted payload (global) size. Driving cost is bounded by the
/// profiling caps, not the size, but astronomically large sizes are typos.
pub const MAX_DRIVE_SIZE: usize = 1 << 26;

/// Which NDJSON stages a drive endpoint streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DriveStage {
    /// `/drive`: `run` + `unit_error` lines.
    Runs,
    /// `/features`: feature-vector lines (plus `unit_error` lines, so
    /// failed units are visible rather than silently absent).
    Features,
}

/// Parsed and bounds-checked harness parameters, shared by all three
/// endpoints (`/pipeline` reads them alongside the synthesis parameters).
#[derive(Debug, Clone, Default)]
pub(crate) struct DriveParams {
    sizes: Option<Vec<usize>>,
    drive_seed: Option<u64>,
    feature_set: Option<FeatureSet>,
    deadline_ms: Option<u64>,
}

/// Parse `sizes`, `drive_seed`, `feature_set` and `deadline_ms`.
pub(crate) fn parse_drive_params(request: &Request) -> Result<DriveParams, String> {
    let mut params = DriveParams::default();
    if let Some(raw) = request.query_param("sizes") {
        let mut sizes = Vec::new();
        for part in raw.split(',').filter(|p| !p.is_empty()) {
            let size: usize = part
                .parse()
                .map_err(|_| format!("parameter \"sizes\" holds a non-integer: {part:?}"))?;
            if size == 0 || size > MAX_DRIVE_SIZE {
                return Err(format!("sizes must be in 1..={MAX_DRIVE_SIZE}"));
            }
            sizes.push(size);
        }
        if sizes.is_empty() || sizes.len() > MAX_DRIVE_SIZES {
            return Err(format!("sizes must list 1..={MAX_DRIVE_SIZES} values"));
        }
        params.sizes = Some(sizes);
    }
    if let Some(raw) = request.query_param("drive_seed") {
        params.drive_seed = Some(
            raw.parse()
                .map_err(|_| format!("parameter \"drive_seed\" is not valid: {raw:?}"))?,
        );
    }
    if let Some(raw) = request.query_param("feature_set") {
        params.feature_set = Some(match raw {
            "grewe" => FeatureSet::Grewe,
            "extended" => FeatureSet::Extended,
            _ => return Err("feature_set must be \"grewe\" or \"extended\"".to_string()),
        });
    }
    if let Some(raw) = request.query_param("deadline_ms") {
        let ms: u64 = raw
            .parse()
            .map_err(|_| format!("parameter \"deadline_ms\" is not valid: {raw:?}"))?;
        if ms == 0 || ms > MAX_DEADLINE_MS {
            return Err(format!("deadline_ms must be in 1..={MAX_DEADLINE_MS}"));
        }
        params.deadline_ms = Some(ms);
    }
    Ok(params)
}

/// Build the per-request harness: the server's configured harness with the
/// request's overrides applied, plus the loaded mapping model (if any).
pub(crate) fn build_harness(shared: &Shared, params: &DriveParams) -> Harness {
    let mut config = shared.config.harness.clone();
    if let Some(sizes) = &params.sizes {
        config.sizes = sizes.clone();
    }
    if let Some(seed) = params.drive_seed {
        config.driver.seed = seed;
    }
    if let Some(feature_set) = params.feature_set {
        config.feature_set = feature_set;
    }
    Harness::new(config, shared.config.mapping_model.clone())
        .with_metrics(shared.metrics.registry.clone())
}

/// Resolve the request's deadline (its own `deadline_ms`, else the server
/// default) into a harness [`Deadline`]; the clock starts at admission.
pub(crate) fn drive_deadline(params: &DriveParams, shared: &Shared) -> Deadline {
    match params
        .deadline_ms
        .or(shared.config.default_deadline_ms)
        .map(|ms| Instant::now() + Duration::from_millis(ms))
    {
        Some(at) => Deadline::at(at),
        None => Deadline::none(),
    }
}

/// Decrements the admission queue counter when dropped, so every exit path
/// (including a panicking connection thread) releases its slot.
struct QueueSlot<'a>(&'a AtomicUsize);

impl Drop for QueueSlot<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Admit a request through the bounded queue gate, answering `503` with
/// `Retry-After` (and counting the rejection) when saturated or stopping.
/// Returns the slot guard on success.
fn admit<'a>(stream: &mut TcpStream, shared: &'a Shared) -> Option<QueueSlot<'a>> {
    let depth = shared.queued.fetch_add(1, Ordering::SeqCst);
    let slot = QueueSlot(&shared.queued);
    if depth >= shared.config.queue_cap || shared.shutdown.load(Ordering::SeqCst) {
        drop(slot);
        shared.metrics.requests_rejected.inc();
        let _ = http::write_response_with(
            stream,
            503,
            "Service Unavailable",
            &[("Retry-After", "1")],
            "application/json",
            format!("{{\"error\":\"queue full\",\"queue_depth\":{depth}}}\n").as_bytes(),
        );
        return None;
    }
    Some(slot)
}

/// The NDJSON lines a drive endpoint streams for a report.
fn stage_lines(report: &HarnessReport, stage: DriveStage) -> Vec<String> {
    match stage {
        DriveStage::Runs => report.ndjson_runs(),
        DriveStage::Features => {
            let mut lines: Vec<String> = report
                .ndjson_runs()
                .into_iter()
                .filter(|l| l.starts_with("{\"event\":\"unit_error\""))
                .collect();
            lines.extend(report.ndjson_features());
            lines
        }
    }
}

/// The terminal summary line for `/drive` and `/features`.
fn done_line(report: &HarnessReport, model_attached: bool) -> String {
    let c = report.counters();
    format!(
        "{{\"done\":true,\"kernels\":{},\"units\":{},\"ok\":{},\"budget_killed\":{},\
         \"panicked\":{},\"predictions\":{},\"model\":{}}}",
        c.kernels_driven,
        c.units_total,
        c.units_ok,
        c.units_budget_killed,
        c.units_panicked,
        c.predictions,
        model_attached,
    )
}

/// `POST /drive` and `POST /features`: drive the POSTed kernel source and
/// stream one harness stage as NDJSON.
pub(crate) fn handle_drive(
    request: Request,
    mut stream: TcpStream,
    shared: &Shared,
    stage: DriveStage,
) {
    let endpoint = match stage {
        DriveStage::Runs => "drive",
        DriveStage::Features => "features",
    };
    let received_at = Instant::now();
    let finish = |outcome: &'static str| {
        shared
            .metrics
            .observe_latency(endpoint, outcome, received_at.elapsed().as_micros() as u64);
    };
    let params = match parse_drive_params(&request) {
        Ok(params) => params,
        Err(message) => {
            write_error(&mut stream, 400, "Bad Request", &message);
            finish("bad_request");
            return;
        }
    };
    let source = match std::str::from_utf8(&request.body) {
        Ok(s) if !s.trim().is_empty() => s.to_string(),
        _ => {
            write_error(
                &mut stream,
                400,
                "Bad Request",
                "request body must be non-empty UTF-8 OpenCL source",
            );
            finish("bad_request");
            return;
        }
    };
    let Some(_slot) = admit(&mut stream, shared) else {
        finish("rejected");
        return;
    };
    let trace = Trace::from_client(
        request.header("trace-id"),
        params
            .drive_seed
            .unwrap_or(shared.config.harness.driver.seed),
    );
    let deadline = drive_deadline(&params, shared);
    let harness = build_harness(shared, &params);
    // The harness runs on this connection thread; its per-unit catch_unwind
    // and budgets contain hostile kernels, so failures here are typed lines
    // or typed HTTP errors — the sampler core is never involved.
    let report = match harness.drive_source(&source, &deadline) {
        Ok(report) => report,
        Err(e) => {
            // The response head is not yet written, so a source-level
            // failure is still a clean typed error.
            write_error(&mut stream, 422, "Unprocessable Entity", &e.to_string());
            finish("unprocessable");
            return;
        }
    };
    record_stage_spans(&trace, &report);
    if client_disconnected(&stream) {
        finish("disconnect");
        return;
    }
    let respond_started = Instant::now();
    let Ok(mut chunks) = http::ChunkedWriter::new(&mut stream, 200, "OK", "application/x-ndjson")
    else {
        finish("disconnect");
        return;
    };
    let trace_tag = format!("\"trace_id\":{}", json::escaped(trace.id()));
    for line in stage_lines(&report, stage) {
        let line = json::splice_field(&line, &trace_tag);
        if chunks.chunk(format!("{line}\n").as_bytes()).is_err() {
            finish("disconnect");
            return;
        }
    }
    trace.record_since("respond", respond_started);
    let done = json::splice_field(
        &done_line(&report, harness.has_model()),
        &format!("\"trace\":{}", trace.render_json()),
    );
    let _ = chunks.chunk(format!("{done}\n").as_bytes());
    // Sample before the terminating chunk: a client that has seen the full
    // response is guaranteed to find it on an immediate `/metrics` scrape.
    finish("ok");
    let _ = chunks.finish();
}

/// Fold a report's per-stage wall-clock totals into a trace: `drive` (unit
/// execution), `features` (extraction) and `predict` (mapping inference).
fn record_stage_spans(trace: &Trace, report: &HarnessReport) {
    let (run_us, features_us, predict_us) = report.stage_timing_us();
    trace.record("drive", run_us);
    trace.record("features", features_us);
    trace.record("predict", predict_us);
}

/// `POST /pipeline`: synthesize kernels through the batching scheduler and
/// drive each accepted kernel through the harness inline, streaming the full
/// loop (`kernel` → `run` → `features` → `prediction` events, then the
/// synthesis summary) over one socket.
pub(crate) fn handle_pipeline(
    request: Request,
    mut stream: TcpStream,
    tx: mpsc::Sender<SchedMsg>,
    shared: &Shared,
) {
    let params = match parse_drive_params(&request) {
        Ok(params) => params,
        Err(message) => {
            write_error(&mut stream, 400, "Bad Request", &message);
            return;
        }
    };
    let harness = build_harness(shared, &params);
    stream_synthesis(request, stream, tx, shared, Some(harness), "pipeline");
}

/// Render the harness block of `/stats` from the shared registry — the same
/// `clgen_harness_*` series `GET /metrics` exposes, so the two views agree.
pub(crate) fn render_harness_stats(shared: &Shared) -> String {
    let registry = &shared.metrics.registry;
    let outcomes = registry.counter_values("clgen_harness_units_total");
    let total: u64 = outcomes.iter().map(|(_, v)| v).sum();
    let by_outcome = |wanted: &str| -> u64 {
        outcomes
            .iter()
            .find(|(labels, _)| labels.iter().any(|(k, v)| k == "outcome" && v == wanted))
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    let kernels_driven = registry
        .counter("clgen_harness_kernels_driven_total", &[], "")
        .get();
    let predictions = registry
        .counter("clgen_harness_predictions_total", &[], "")
        .get();
    format!(
        "{{\"model\":{},\"kernels_driven\":{},\"units\":{{\"total\":{},\"ok\":{},\
         \"budget_killed\":{},\"panicked\":{}}},\"predictions\":{}}}",
        shared.config.mapping_model.is_some(),
        kernels_driven,
        total,
        by_outcome("ok"),
        by_outcome("budget_killed"),
        by_outcome("panicked"),
        predictions,
    )
}

/// The harness NDJSON lines for one synthesized kernel inside `/pipeline`:
/// drive the kernel extracted from the rendered synthesis line (the harness
/// reports its counters into the shared registry itself), tag each event
/// line with the request's trace id, and return the staged event lines. A
/// source the harness cannot compile (synthesized kernels passed the
/// rejection filter, so this is rare) becomes one typed `harness_error`
/// line — it must not kill the stream.
pub(crate) fn pipeline_lines(
    harness: &Harness,
    kernel_line: &str,
    deadline: &Deadline,
    trace: &Trace,
) -> Vec<String> {
    let Some(source) = json::extract_str(kernel_line, "kernel") else {
        return Vec::new();
    };
    let trace_tag = format!("\"trace_id\":{}", json::escaped(trace.id()));
    match harness.drive_source(&source, deadline) {
        Ok(report) => {
            record_stage_spans(trace, &report);
            report
                .ndjson()
                .into_iter()
                .map(|line| json::splice_field(&line, &trace_tag))
                .collect()
        }
        Err(e) => vec![json::splice_field(
            &format!(
                "{{\"event\":\"harness_error\",\"detail\":{}}}",
                json::escaped(&e.to_string())
            ),
            &trace_tag,
        )],
    }
}
