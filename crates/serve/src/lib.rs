//! # clgen-serve
//!
//! A synthesis service over a checkpoint-loaded
//! [`TrainedModel`](clgen::TrainedModel) with
//! **cross-request continuous batching**: the paper's train-once/sample-many
//! workflow, served.
//!
//! The server is dependency-free — a hand-rolled, bounds-checked HTTP/1.1
//! layer over `std::net::TcpListener` ([`http`]) in the same spirit as
//! `clgen-wire`'s hand-rolled serialization — and its heart is the batching
//! [`scheduler`]: connection-handler threads enqueue sampling requests onto
//! a bounded queue, and a single sampler-core thread drains them into the
//! lanes of one continuously-batched
//! [`BatchEngine`](clgen::BatchEngine) run, admitting new requests into
//! free lanes mid-flight. N concurrent clients therefore share one batched
//! forward pass instead of running N serial ones, so serving throughput
//! inherits the batched-sampling win measured in `BENCH_synthesis.json`.
//! Rejection filtering fans out over the rayon pool on its own thread,
//! overlapping the next sampling round exactly like `SynthesisStream`.
//!
//! ## Endpoints
//!
//! | Endpoint | Behaviour |
//! |---|---|
//! | `POST /synthesize?count=&temperature=&max_chars=&seed=&max_attempts=&deadline_ms=` | Streams accepted kernels as NDJSON (one object per kernel with its `KernelStats`, then a `"done"` summary line), `Transfer-Encoding: chunked`. |
//! | `POST /drive?sizes=&drive_seed=&deadline_ms=` | Body = OpenCL source. Drives every (kernel × size) work unit through the [`clgen_harness`] pool and streams `run` / `unit_error` NDJSON events, then a `"done"` summary. |
//! | `POST /features?sizes=&drive_seed=&feature_set=&deadline_ms=` | Body = OpenCL source. Same drive, streaming the Grewe `features` vectors (`feature_set=grewe\|extended`) plus `unit_error` events. |
//! | `POST /pipeline?count=&seed=&sizes=&drive_seed=&feature_set=&deadline_ms=…` | The paper's loop over one socket: synthesis through the batching scheduler, each accepted `kernel` line followed inline by its `run`, `features` and `prediction` events, then the synthesis summary. |
//! | `GET /healthz` | Liveness + supervisor health: `ok`/`degraded`/`failed` with restart counts (`503` once failed). |
//! | `GET /stats` | Aggregate throughput ([`StatsSummary`](clgen::StatsSummary)), lane occupancy, queue depth, request counters, harness counters, health. |
//! | `GET /metrics` | The full metric catalog in the Prometheus text exposition format — request-latency histograms by endpoint and outcome, queue depth/wait, lane occupancy, filter accept/reject, harness unit outcomes, supervisor restarts. Rendered from the same atomics as `/stats`. |
//! | `GET /debug/flight` | The flight recorder's recent-event ring as NDJSON (admissions, sheds, reaps, sampling steps, faults). Gated behind `--debug-flight`; `404` otherwise. |
//! | `POST /shutdown` | Graceful shutdown with a bounded drain: in-flight requests finish, or get `503` once the drain timeout passes. |
//!
//! `prediction` events carry the CPU/GPU class from the `CLGENPRD` mapping
//! model loaded at startup (`--mapping-model`); without one, `/drive`,
//! `/features` and `/pipeline` still stream runs and features.
//!
//! Backpressure: at most `queue_cap` requests wait ahead of the sampler
//! core; beyond that `/synthesize` (and the harness endpoints, which share
//! the same admission gate) answer `503` with `Retry-After`. Harness work
//! units run under bounded step/resource budgets inside `catch_unwind`: a
//! hostile kernel becomes a typed `unit_error` line on its own unit — never
//! a sampler-core restart.
//!
//! ## Fault tolerance
//!
//! The sampler core is **supervised**: a panic (a poisoned request, a model
//! bug) fails only the in-flight requests — with typed `500` replies, never
//! retried into a fresh batch — and the core respawns from the checkpoint
//! image, within a restart budget per sliding window ([`Supervisor`]).
//! Per-request **deadlines** (`deadline_ms` parameter, or a server default)
//! shed expired queued jobs with `503` and reap expired in-flight requests
//! mid-step, returning the partial response with a `"timeout"` marker. The
//! whole stack is testable under **deterministic fault injection**
//! ([`faults::FaultPlan`], compiled in with the `faults` cargo feature):
//! seeded, named fault points cover sampler panics, stalls, slow and
//! dropped client writes, and checkpoint corruption on reload, and the
//! chaos suite (`tests/chaos.rs`) asserts that concurrent *unaffected*
//! requests still produce byte-identical responses while faults fire.
//! [`client`] provides the matching retry policy (capped exponential
//! backoff with deterministic jitter, honoring `Retry-After`).
//!
//! ## Determinism
//!
//! For a fixed checkpoint, a request's response body is byte-identical
//! across runs and **independent of request arrival order** — candidate `i`
//! of a request samples from a seed derived only from the request's `seed`
//! parameter, candidates are absorbed into the response in candidate order,
//! and the response covers a deterministic prefix of them (see the
//! [`scheduler`] docs). The property is exercised end-to-end over real
//! sockets in `tests/serve_roundtrip.rs`.
//!
//! Observability is **additive** on top of that guarantee: instrumentation
//! reads monotonic clocks but never feeds sampled bytes, so the only
//! timing-dependent bytes in a response are the spliced `"trace"` object on
//! the done line and the `"trace_id"` field on harness event lines. Strip
//! them with [`json::strip_trace_body`] (or [`client::strip_traces`]) to
//! recover the byte-identical deterministic body.
//!
//! ```no_run
//! use clgen::TrainedModel;
//! use clgen_serve::{Server, ServerConfig};
//!
//! let model = TrainedModel::load("model.ckpt").expect("checkpoint");
//! let handle = Server::start(model, ServerConfig::default()).expect("bind");
//! println!("serving on http://{}", handle.addr());
//! handle.join(); // until a client POSTs /shutdown
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod faults;
pub mod harness_api;
pub mod http;
pub mod json;
mod metrics;
pub mod scheduler;
pub mod server;

pub use faults::{FaultPlan, FaultPoint};
pub use scheduler::{ResponseEvent, ServeError, ServiceHealth, Supervisor, SynthesisParams};
pub use server::{Server, ServerConfig, ServerHandle, MAX_DEADLINE_MS};

/// Default cap on candidates sampled per requested kernel when a request
/// does not set `max_attempts` explicitly.
pub const DEFAULT_MAX_ATTEMPTS_PER_KERNEL: usize = 64;
