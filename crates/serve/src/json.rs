//! Hand-rolled JSON rendering and field extraction.
//!
//! The vendored `serde` is a marker-only stand-in, so the service writes its
//! NDJSON lines by hand (as `record_synthesis` writes its benchmark files)
//! and the client side pulls individual fields back out with a small
//! extractor instead of a full parser. Rendering is deterministic — map
//! fields are emitted in sorted order — because synthesis response bodies
//! carry a byte-identical reproducibility guarantee.

/// Append `s` to `out` as a JSON string literal (with surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a JSON string literal.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// Extract the value of a top-level-ish `"key":` whose value is an unsigned
/// integer. Purely textual: finds the first occurrence of the quoted key
/// followed by a colon and digits. Good enough for the service's own NDJSON
/// lines; not a general JSON parser.
pub fn extract_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = json[start..].trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

/// Extract the value of a `"key":` whose value is a JSON string, undoing the
/// escapes [`escape_into`] produces.
pub fn extract_str(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = json[start..].trim_start();
    let mut chars = rest.chars();
    if chars.next() != Some('"') {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = (0..4).filter_map(|_| chars.next()).collect();
                    let value = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(value)?);
                }
                c => out.push(c),
            },
            c => out.push(c),
        }
    }
}

/// Splice an already-rendered `"key":value` fragment into a one-line JSON
/// object, immediately before its final `}`. Used to attach the additive
/// `"trace"` object (and `"trace_id"` field) to lines rendered by
/// deterministic code that must stay trace-free.
pub fn splice_field(line: &str, fragment: &str) -> String {
    match line.rfind('}') {
        Some(end) => {
            let mut out = String::with_capacity(line.len() + fragment.len() + 1);
            out.push_str(&line[..end]);
            if !line[..end].ends_with('{') {
                out.push(',');
            }
            out.push_str(fragment);
            out.push_str(&line[end..]);
            out
        }
        None => line.to_string(),
    }
}

/// Strip the trace annotations [`splice_field`] attaches — the
/// `,"trace":{…}` object and the `,"trace_id":"…"` field — from one NDJSON
/// line, recovering the deterministic bytes underneath. The needles contain
/// unescaped quotes, so they can never match inside a JSON string value
/// (where quotes are `\"`-escaped).
pub fn strip_trace(line: &str) -> String {
    let mut out = line.to_string();
    if let Some(start) = out.find(",\"trace\":{") {
        // Brace-scan to the matching close; trace payloads contain no
        // braces inside strings (ids and stage names are sanitized).
        let open = start + ",\"trace\":".len();
        let mut depth = 0usize;
        let mut end = None;
        for (i, b) in out[open..].bytes().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(open + i + 1);
                        break;
                    }
                }
                _ => {}
            }
        }
        if let Some(end) = end {
            out.replace_range(start..end, "");
        }
    }
    if let Some(start) = out.find(",\"trace_id\":\"") {
        let open = start + ",\"trace_id\":\"".len();
        if let Some(close) = out[open..].find('"') {
            out.replace_range(start..open + close + 1, "");
        }
    }
    out
}

/// [`strip_trace`] applied to every line of a response body.
pub fn strip_trace_body(body: &str) -> String {
    let mut out = String::with_capacity(body.len());
    for line in body.lines() {
        out.push_str(&strip_trace(line));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splice_and_strip_are_inverses() {
        let line = "{\"done\":true,\"kernels\":1,\"rejected\":{}}";
        let spliced = splice_field(
            line,
            "\"trace\":{\"id\":\"ab\",\"total_us\":9,\"stages\":{\"queued\":1}}",
        );
        assert!(
            spliced.ends_with("\"stages\":{\"queued\":1}}}"),
            "{spliced}"
        );
        assert_eq!(strip_trace(&spliced), line);

        let event = "{\"event\":\"run\",\"kernel\":\"a\"}";
        let tagged = splice_field(event, "\"trace_id\":\"deadbeef\"");
        assert_eq!(
            tagged,
            "{\"event\":\"run\",\"kernel\":\"a\",\"trace_id\":\"deadbeef\"}"
        );
        assert_eq!(strip_trace(&tagged), event);

        // A kernel whose source mentions trace keys cannot fool the strip:
        // quotes inside JSON strings are escaped, so the needle never
        // matches string content.
        let hostile = "{\"kernel\":\"x ,\\\"trace\\\":{ y\",\"attempts\":1}";
        assert_eq!(strip_trace(hostile), hostile);
        assert_eq!(strip_trace_body("{\"a\":1}\n"), "{\"a\":1}\n");
    }

    #[test]
    fn escaping_roundtrips_through_extraction() {
        let source = "__kernel void A() {\n  int a = \"x\\y\";\t\u{1} }";
        let line = format!("{{\"kernel\":{},\"attempts\":12}}", escaped(source));
        assert_eq!(extract_str(&line, "kernel").as_deref(), Some(source));
        assert_eq!(extract_u64(&line, "attempts"), Some(12));
        assert_eq!(extract_u64(&line, "missing"), None);
        assert_eq!(extract_str(&line, "attempts"), None);
    }
}
