//! Hand-rolled JSON rendering and field extraction.
//!
//! The vendored `serde` is a marker-only stand-in, so the service writes its
//! NDJSON lines by hand (as `record_synthesis` writes its benchmark files)
//! and the client side pulls individual fields back out with a small
//! extractor instead of a full parser. Rendering is deterministic — map
//! fields are emitted in sorted order — because synthesis response bodies
//! carry a byte-identical reproducibility guarantee.

/// Append `s` to `out` as a JSON string literal (with surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a JSON string literal.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// Extract the value of a top-level-ish `"key":` whose value is an unsigned
/// integer. Purely textual: finds the first occurrence of the quoted key
/// followed by a colon and digits. Good enough for the service's own NDJSON
/// lines; not a general JSON parser.
pub fn extract_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = json[start..].trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

/// Extract the value of a `"key":` whose value is a JSON string, undoing the
/// escapes [`escape_into`] produces.
pub fn extract_str(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = json[start..].trim_start();
    let mut chars = rest.chars();
    if chars.next() != Some('"') {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = (0..4).filter_map(|_| chars.next()).collect();
                    let value = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(value)?);
                }
                c => out.push(c),
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_roundtrips_through_extraction() {
        let source = "__kernel void A() {\n  int a = \"x\\y\";\t\u{1} }";
        let line = format!("{{\"kernel\":{},\"attempts\":12}}", escaped(source));
        assert_eq!(extract_str(&line, "kernel").as_deref(), Some(source));
        assert_eq!(extract_u64(&line, "attempts"), Some(12));
        assert_eq!(extract_u64(&line, "missing"), None);
        assert_eq!(extract_str(&line, "attempts"), None);
    }
}
