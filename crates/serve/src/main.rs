//! The `clgen-serve` binary: load a `CLGENCKP` checkpoint once, serve it.
//!
//! ```text
//! clgen-serve --checkpoint model.ckpt [--mapping-model model.prd]
//!             [--addr 127.0.0.1:8090] [--lanes 8]
//!             [--queue-cap 64] [--read-timeout-ms N] [--write-timeout-ms N]
//!             [--drain-timeout-ms N] [--deadline-ms N]
//!             [--restart-budget N] [--restart-window-ms N] [--faults PLAN]
//!             [--debug-flight]
//! ```
//!
//! `--mapping-model` loads a `CLGENPRD` decision-tree checkpoint so the
//! harness endpoints (`/drive`, `/features`, `/pipeline`) stream CPU/GPU
//! `prediction` events; without it they stream runs and features only.
//!
//! Timeout flags take milliseconds; `0` disables the timeout (unbounded).
//! Each resilience flag also reads a `CLGEN_SERVE_*` environment variable
//! (`READ_TIMEOUT_MS`, `WRITE_TIMEOUT_MS`, `DRAIN_TIMEOUT_MS`,
//! `DEADLINE_MS`, `RESTART_BUDGET`, `RESTART_WINDOW_MS`, `FAULTS`,
//! `MAPPING_MODEL`, `DEBUG_FLIGHT`), with the flag winning when both are
//! set.
//!
//! The binary wires the process-global metric registry into the server, so
//! `GET /metrics` exposes the whole process (training hooks included).
//! `--debug-flight` additionally serves the flight recorder's recent-event
//! ring at `GET /debug/flight`; the ring dumps to stderr on sampler-core
//! panics, reload failures and restart-budget exhaustion regardless.
//!
//! The process runs until a client sends `POST /shutdown`, then shuts down
//! gracefully (in-flight requests drain, bounded by the drain timeout) and
//! exits 0. It exits nonzero only if the supervisor exhausted its sampler-
//! core restart budget (`/healthz` reported `failed`).

use clgen::TrainedModel;
use clgen_serve::{FaultPlan, Server, ServerConfig, ServiceHealth};
use predictive::MappingModel;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: clgen-serve --checkpoint PATH \
                     [--mapping-model PATH] \
                     [--addr HOST:PORT] [--lanes N] [--queue-cap N] \
                     [--read-timeout-ms N] [--write-timeout-ms N] \
                     [--drain-timeout-ms N] [--deadline-ms N] \
                     [--restart-budget N] [--restart-window-ms N] \
                     [--faults PLAN] [--debug-flight]";

/// Load a `CLGENPRD` mapping-model checkpoint into the config.
fn load_mapping_model(config: &mut ServerConfig, path: &str) -> Result<(), String> {
    let model =
        MappingModel::load(path).map_err(|e| format!("cannot load mapping model {path:?}: {e}"))?;
    config.mapping_model = Some(Arc::new(model));
    Ok(())
}

/// Parse a millisecond count where `0` means "disabled".
fn parse_ms_option(raw: &str, flag: &str) -> Result<Option<Duration>, String> {
    let ms: u64 = raw
        .parse()
        .map_err(|_| format!("{flag} needs an integer (milliseconds; 0 disables)"))?;
    Ok((ms > 0).then(|| Duration::from_millis(ms)))
}

/// Apply the `CLGEN_SERVE_*` environment to a default config; CLI flags are
/// applied afterwards and win.
fn apply_env(config: &mut ServerConfig) -> Result<(), String> {
    let var = |name: &str| std::env::var(format!("CLGEN_SERVE_{name}")).ok();
    if let Some(raw) = var("READ_TIMEOUT_MS") {
        config.read_timeout = parse_ms_option(&raw, "CLGEN_SERVE_READ_TIMEOUT_MS")?;
    }
    if let Some(raw) = var("WRITE_TIMEOUT_MS") {
        config.write_timeout = parse_ms_option(&raw, "CLGEN_SERVE_WRITE_TIMEOUT_MS")?;
    }
    if let Some(raw) = var("DRAIN_TIMEOUT_MS") {
        config.drain_timeout = parse_ms_option(&raw, "CLGEN_SERVE_DRAIN_TIMEOUT_MS")?;
    }
    if let Some(raw) = var("DEADLINE_MS") {
        config.default_deadline_ms =
            parse_ms_option(&raw, "CLGEN_SERVE_DEADLINE_MS")?.map(|d| d.as_millis() as u64);
    }
    if let Some(raw) = var("RESTART_BUDGET") {
        config.restart_budget = raw
            .parse()
            .map_err(|_| "CLGEN_SERVE_RESTART_BUDGET needs an integer".to_string())?;
    }
    if let Some(raw) = var("RESTART_WINDOW_MS") {
        config.restart_window = parse_ms_option(&raw, "CLGEN_SERVE_RESTART_WINDOW_MS")?
            .ok_or("CLGEN_SERVE_RESTART_WINDOW_MS must be nonzero")?;
    }
    if let Some(path) = var("MAPPING_MODEL") {
        load_mapping_model(config, &path)?;
    }
    if let Some(raw) = var("DEBUG_FLIGHT") {
        config.debug_flight = raw != "0" && !raw.is_empty();
    }
    config.faults = FaultPlan::from_env()?;
    Ok(())
}

fn main() -> ExitCode {
    let mut checkpoint: Option<String> = None;
    let mut config = ServerConfig::default();
    if let Err(message) = apply_env(&mut config) {
        eprintln!("clgen-serve: {message}");
        return ExitCode::FAILURE;
    }

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--checkpoint" => checkpoint = Some(value("--checkpoint")?),
                "--addr" => config.addr = value("--addr")?,
                "--lanes" => {
                    config.lanes = value("--lanes")?
                        .parse()
                        .map_err(|_| "--lanes needs an integer".to_string())?;
                    if config.lanes == 0 {
                        return Err("--lanes must be at least 1".to_string());
                    }
                }
                "--queue-cap" => {
                    config.queue_cap = value("--queue-cap")?
                        .parse()
                        .map_err(|_| "--queue-cap needs an integer".to_string())?;
                }
                "--read-timeout-ms" => {
                    config.read_timeout = parse_ms_option(&value("--read-timeout-ms")?, &flag)?;
                }
                "--write-timeout-ms" => {
                    config.write_timeout = parse_ms_option(&value("--write-timeout-ms")?, &flag)?;
                }
                "--drain-timeout-ms" => {
                    config.drain_timeout = parse_ms_option(&value("--drain-timeout-ms")?, &flag)?;
                }
                "--deadline-ms" => {
                    config.default_deadline_ms = parse_ms_option(&value("--deadline-ms")?, &flag)?
                        .map(|d| d.as_millis() as u64);
                }
                "--restart-budget" => {
                    config.restart_budget = value("--restart-budget")?
                        .parse()
                        .map_err(|_| "--restart-budget needs an integer".to_string())?;
                }
                "--restart-window-ms" => {
                    config.restart_window = parse_ms_option(&value("--restart-window-ms")?, &flag)?
                        .ok_or("--restart-window-ms must be nonzero")?;
                }
                "--mapping-model" => {
                    load_mapping_model(&mut config, &value("--mapping-model")?)?;
                }
                "--faults" => config.faults = FaultPlan::parse(&value("--faults")?)?,
                "--debug-flight" => config.debug_flight = true,
                "--help" | "-h" => {
                    println!("{USAGE}");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
            }
            Ok(())
        })();
        if let Err(message) = result {
            eprintln!("clgen-serve: {message}");
            return ExitCode::FAILURE;
        }
    }

    let Some(checkpoint) = checkpoint else {
        eprintln!("clgen-serve: --checkpoint is required\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let model = match TrainedModel::load(&checkpoint) {
        Ok(model) => model,
        Err(e) => {
            eprintln!("clgen-serve: cannot load checkpoint {checkpoint:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let backend = model.backend_kind();
    let lanes = config.lanes;
    config.metrics = Some(clgen_obs::global());
    if config.faults.is_active() {
        eprintln!("clgen-serve: fault injection ACTIVE (not a production configuration)");
    }
    let handle = match Server::start(model, config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("clgen-serve: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "clgen-serve: listening on http://{} ({backend} backend, {lanes} lanes); \
         POST /shutdown to stop",
        handle.addr()
    );
    match handle.join() {
        ServiceHealth::Failed => {
            eprintln!("clgen-serve: shut down after exhausting the sampler-core restart budget");
            ExitCode::FAILURE
        }
        _ => {
            println!("clgen-serve: graceful shutdown complete");
            ExitCode::SUCCESS
        }
    }
}
