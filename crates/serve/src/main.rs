//! The `clgen-serve` binary: load a `CLGENCKP` checkpoint once, serve it.
//!
//! ```text
//! clgen-serve --checkpoint model.ckpt [--addr 127.0.0.1:8090] [--lanes 8] [--queue-cap 64]
//! ```
//!
//! The process runs until a client sends `POST /shutdown`, then shuts down
//! gracefully (in-flight requests finish) and exits 0.

use clgen::TrainedModel;
use clgen_serve::{Server, ServerConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: clgen-serve --checkpoint PATH \
                     [--addr HOST:PORT] [--lanes N] [--queue-cap N]";

fn main() -> ExitCode {
    let mut checkpoint: Option<String> = None;
    let mut config = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--checkpoint" => checkpoint = Some(value("--checkpoint")?),
                "--addr" => config.addr = value("--addr")?,
                "--lanes" => {
                    config.lanes = value("--lanes")?
                        .parse()
                        .map_err(|_| "--lanes needs an integer".to_string())?;
                    if config.lanes == 0 {
                        return Err("--lanes must be at least 1".to_string());
                    }
                }
                "--queue-cap" => {
                    config.queue_cap = value("--queue-cap")?
                        .parse()
                        .map_err(|_| "--queue-cap needs an integer".to_string())?;
                }
                "--help" | "-h" => {
                    println!("{USAGE}");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
            }
            Ok(())
        })();
        if let Err(message) = result {
            eprintln!("clgen-serve: {message}");
            return ExitCode::FAILURE;
        }
    }

    let Some(checkpoint) = checkpoint else {
        eprintln!("clgen-serve: --checkpoint is required\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let model = match TrainedModel::load(&checkpoint) {
        Ok(model) => model,
        Err(e) => {
            eprintln!("clgen-serve: cannot load checkpoint {checkpoint:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let backend = model.backend_kind();
    let lanes = config.lanes;
    let handle = match Server::start(model, config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("clgen-serve: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "clgen-serve: listening on http://{} ({backend} backend, {lanes} lanes); \
         POST /shutdown to stop",
        handle.addr()
    );
    handle.join();
    println!("clgen-serve: graceful shutdown complete");
    ExitCode::SUCCESS
}
