//! The batching scheduler: one **supervised** sampler core draining every
//! request into the lanes of a single continuously-batched [`BatchEngine`]
//! run.
//!
//! Connection-handler threads enqueue [`Job`]s; the sampler-core thread
//! (`run_sampler_core`) owns the model and folds the candidates of every
//! in-flight request into one shared batch, admitting new candidates into
//! lanes the moment they free up — so N concurrent clients share one batched
//! forward pass instead of running N serial ones. Completed candidates are
//! handed (in sampling rounds) to a rejection-filter thread that fans out
//! over the rayon pool, exactly like `SynthesisStream`'s pipelined filter
//! stage, and accepted kernels stream back to each request's connection as
//! they are absorbed.
//!
//! # Fault model
//!
//! The sampler core runs under a **supervisor** ([`Supervisor`]): each
//! generation of the core executes inside `catch_unwind`, and a panic —
//! whether a real bug or an injected [`FaultPoint::SamplerPanic`] — is
//! contained to that generation. In-flight requests are answered with typed
//! `500` errors and **quarantined** (their jobs are dropped, never retried
//! into a fresh batch; still-queued jobs are innocent and survive), then the
//! watchdog respawns the core from the shared checkpoint image. Restarts are
//! budgeted over a sliding window; exceeding the budget marks the service
//! [`ServiceHealth::Failed`] and triggers shutdown, so a hard-crash loop
//! cannot spin forever.
//!
//! Per-request **deadlines** bound how long a request may hold lanes: the
//! scheduler sheds queued jobs whose deadline already passed (fail-fast 503)
//! and reaps expired in-flight requests mid-step through the engine's
//! lane-abort predicate ([`BatchEngine::step_into_abortable`]), returning the
//! partial response with a `"timeout"` marker.
//!
//! # Determinism
//!
//! A request's response body is a pure function of the model checkpoint and
//! the request's own parameters, *regardless of what else the server is
//! doing*:
//!
//! * candidate `i` of a request draws from the RNG stream
//!   [`stream_seed`]`(request.seed, i)` — independent of lane assignment and
//!   of the other requests sharing the batch (the [`BatchEngine`]
//!   guarantee);
//! * filter verdicts are pure functions of candidate text;
//! * candidates are absorbed into the response in candidate order, and the
//!   response covers exactly the candidates up to the `count`-th acceptance
//!   (or all `max_attempts` if the target is never met) — over-dispatched
//!   candidates beyond that deterministic cut are discarded.
//!
//! The fault model preserves this: supervisor respawns reload the **same**
//! checkpoint bytes (bit-identical weights), lane aborts cannot influence
//! surviving lanes, and a request that is retried after a `500` therefore
//! reproduces the byte-identical body it would have had without the fault.
//! The chaos suite (`tests/chaos.rs`) asserts exactly that invariant while
//! faults fire.
//!
//! The scheduler may *sample* more candidates than a request's response ends
//! up covering (lanes run ahead while earlier candidates are still in the
//! filter); that overshoot costs throughput only, never determinism.

use crate::faults::{FaultPlan, FaultPoint};
use crate::json;
use crate::metrics::ServeMetrics;
use clgen::stream::{filter_candidate, stream_seed};
use clgen::synthesizer::SynthesizedKernel;
use clgen::{
    BatchEngine, KernelStats, SampleOptions, SampledCandidate, StatsSummary, TrainedModel,
};
use clgen_corpus::filter::FilterConfig;
use clgen_corpus::RejectReason;
use clgen_obs::{FlightRecorder, Trace};
use rayon::prelude::*;
use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Candidates a request may keep in flight per still-wanted kernel, beyond
/// the ones already absorbed. Mirrors the stream pipeline's round
/// oversubscription: it keeps lanes busy while earlier candidates filter,
/// bounded so one request cannot monopolise the batch.
const REQUEST_OVERSUBSCRIPTION: usize = 4;

/// How often the idle (or draining) sampler core wakes to sweep deadlines
/// and the drain timer when no messages arrive.
const IDLE_TICK: Duration = Duration::from_millis(200);

/// Parameters of one `/synthesize` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisParams {
    /// Accepted kernels requested.
    pub count: usize,
    /// Sampling temperature.
    pub temperature: f32,
    /// Per-candidate generated-character budget.
    pub max_chars: usize,
    /// Request seed: candidate `i` samples from
    /// [`stream_seed`]`(seed, i)`.
    pub seed: u64,
    /// Hard cap on candidates sampled for this request.
    pub max_attempts: usize,
    /// Deadline in milliseconds from admission, after which the request is
    /// answered with whatever it has (a partial response carrying a
    /// `"timeout"` marker, or a fail-fast `503` if it never left the queue).
    /// `None` falls back to the server's default deadline, if any.
    pub deadline_ms: Option<u64>,
}

/// A typed request failure produced by the scheduler or supervisor, rendered
/// by the connection handler as an HTTP error (head not yet written) or as a
/// terminal `"aborted"` NDJSON line (response already streaming).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// HTTP status the failure maps to (`500` panic, `503` shed/stopping).
    pub status: u16,
    /// `Retry-After` seconds to advertise, if retrying makes sense.
    pub retry_after: Option<u32>,
    /// Human-readable failure description.
    pub message: String,
}

/// One line of a streaming synthesis response.
#[derive(Debug)]
pub enum ResponseEvent {
    /// An accepted kernel (one rendered NDJSON line, no trailing newline).
    Kernel(String),
    /// The request is complete (the final summary NDJSON line).
    Done(String),
    /// The request failed: shed from the queue, aborted by a panic, or cut
    /// off by shutdown. Terminal, like `Done`.
    Error(ServeError),
}

/// A synthesis request handed to the sampler core.
#[derive(Debug)]
pub struct Job {
    /// Request parameters.
    pub params: SynthesisParams,
    /// Absolute deadline resolved at admission time (`None` = no deadline).
    pub deadline: Option<Instant>,
    /// When the job entered the admission queue (drives the queue-wait
    /// metrics and the trace's `queued` span).
    pub enqueued_at: Instant,
    /// The request's span accumulator; the scheduler records the `queued`,
    /// `sampling` and `filter` stages into it.
    pub trace: Arc<Trace>,
    /// Where response lines are streamed.
    pub reply: mpsc::Sender<ResponseEvent>,
    /// Set by the connection handler when it observes the client has gone
    /// away, so the sampler core stops spending lanes on the request even
    /// if no acceptance (the other disconnect signal) ever happens.
    pub cancelled: Arc<AtomicBool>,
}

/// Everything the sampler core can receive.
pub enum SchedMsg {
    /// A new synthesis request.
    Job(Job),
    /// One round of filter verdicts coming back.
    Filtered(Vec<Filtered>),
    /// Drain accepted work, then exit — but no later than `drain_deadline`,
    /// after which remaining jobs are failed with `503` and the core exits
    /// anyway (bounded graceful shutdown).
    Shutdown {
        /// When draining gives up (`None` = unbounded drain).
        drain_deadline: Option<Instant>,
    },
}

/// One candidate with its filter verdict.
pub struct Filtered {
    ticket: u64,
    candidate: SampledCandidate,
    verdict: Result<SynthesizedKernel, RejectReason>,
    /// Wall-clock cost of this candidate's filter verdict (µs), accumulated
    /// into the owning request's `filter` trace span.
    filter_us: u64,
}

/// Service health as reported by `/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceHealth {
    /// No sampler-core restart within the supervisor window.
    Ok,
    /// The sampler core restarted recently; service continues on the
    /// respawned core.
    Degraded,
    /// The restart budget was exceeded; the server is shutting down.
    Failed,
}

impl ServiceHealth {
    /// The status string used in `/healthz` and `/stats` bodies.
    pub fn as_str(self) -> &'static str {
        match self {
            ServiceHealth::Ok => "ok",
            ServiceHealth::Degraded => "degraded",
            ServiceHealth::Failed => "failed",
        }
    }
}

/// Watchdog state for the supervised sampler core: restart accounting over a
/// sliding window, shared between the core thread and the HTTP front-end
/// (`/healthz`, `/stats`).
#[derive(Debug)]
pub struct Supervisor {
    budget: u32,
    window: Duration,
    restarts_total: AtomicU64,
    recent: Mutex<VecDeque<Instant>>,
    failed: AtomicBool,
}

impl Supervisor {
    pub(crate) fn new(budget: u32, window: Duration) -> Supervisor {
        Supervisor {
            budget,
            window,
            restarts_total: AtomicU64::new(0),
            recent: Mutex::new(VecDeque::new()),
            failed: AtomicBool::new(false),
        }
    }

    /// Record one restart attempt (a panic respawn or a failed checkpoint
    /// reload). Returns `true` — and latches [`ServiceHealth::Failed`] — if
    /// the budget is now exceeded within the window.
    fn record_restart(&self) -> bool {
        let now = Instant::now();
        let mut recent = self.recent.lock().expect("supervisor lock");
        recent.push_back(now);
        while recent
            .front()
            .is_some_and(|&t| now.duration_since(t) > self.window)
        {
            recent.pop_front();
        }
        self.restarts_total.fetch_add(1, Ordering::SeqCst);
        let exceeded = recent.len() as u32 > self.budget;
        if exceeded {
            self.failed.store(true, Ordering::SeqCst);
        }
        exceeded
    }

    /// Total sampler-core restarts since boot.
    pub fn restarts(&self) -> u64 {
        self.restarts_total.load(Ordering::SeqCst)
    }

    /// Restarts within the trailing window (prunes expired entries).
    pub fn recent_restarts(&self) -> usize {
        let now = Instant::now();
        let mut recent = self.recent.lock().expect("supervisor lock");
        while recent
            .front()
            .is_some_and(|&t| now.duration_since(t) > self.window)
        {
            recent.pop_front();
        }
        recent.len()
    }

    /// Current service health: `failed` once the budget is exceeded,
    /// `degraded` while any restart sits within the window, `ok` otherwise.
    pub fn health(&self) -> ServiceHealth {
        if self.failed.load(Ordering::SeqCst) {
            ServiceHealth::Failed
        } else if self.recent_restarts() > 0 {
            ServiceHealth::Degraded
        } else {
            ServiceHealth::Ok
        }
    }
}

/// One request being served by the sampler core.
struct ActiveRequest {
    key: u32,
    params: SynthesisParams,
    deadline: Option<Instant>,
    reply: mpsc::Sender<ResponseEvent>,
    /// When the request was activated (starts the `sampling` trace span).
    admitted_at: Instant,
    /// Accumulated filter wall-clock across this request's candidates (µs).
    filter_us: u64,
    /// Span accumulator shared with the connection thread.
    trace: Arc<Trace>,
    /// Candidates handed to lanes so far.
    next_dispatch: u64,
    /// Next candidate index to fold into the response.
    next_absorb: u64,
    /// Filter verdicts that arrived ahead of `next_absorb`, with their
    /// filter cost in µs.
    pending: HashMap<
        u64,
        (
            SampledCandidate,
            Result<SynthesizedKernel, RejectReason>,
            u64,
        ),
    >,
    /// Accumulation since the last accepted kernel.
    window: KernelStats,
    /// Request totals (drives the trailing summary line).
    summary: StatsSummary,
    accepted: usize,
    /// A reply send failed (client went away mid-stream); sample no more,
    /// absorb silently.
    failed: bool,
    /// The deadline passed mid-flight: finish now with a partial response.
    timed_out: bool,
    /// Disconnect flag shared with the connection handler.
    cancelled: Arc<AtomicBool>,
}

impl ActiveRequest {
    /// True once nobody is listening: a reply send failed, or the handler
    /// observed the client closing its socket.
    fn is_abandoned(&self) -> bool {
        self.failed || self.cancelled.load(Ordering::Relaxed)
    }

    /// True once the request must stop holding lanes: abandoned or expired.
    fn is_dead(&self) -> bool {
        self.is_abandoned() || self.timed_out
    }

    fn wants_dispatch(&self) -> bool {
        if self.is_dead()
            || self.accepted >= self.params.count
            || self.next_dispatch >= self.params.max_attempts as u64
        {
            return false;
        }
        let outstanding = (self.next_dispatch - self.next_absorb) as usize;
        let wanted = self.params.count - self.accepted;
        outstanding < wanted.saturating_mul(REQUEST_OVERSUBSCRIPTION)
    }
}

fn ticket(key: u32, index: u64) -> u64 {
    (u64::from(key) << 32) | index
}

fn ticket_key(ticket: u64) -> u32 {
    (ticket >> 32) as u32
}

fn ticket_index(ticket: u64) -> u64 {
    ticket & 0xFFFF_FFFF
}

/// Render the sorted rejection map shared by kernel lines, summary lines
/// and the `/stats` endpoint.
pub(crate) fn render_rejections(out: &mut String, rejected: &HashMap<RejectReason, usize>) {
    let mut reasons: Vec<(String, usize)> = rejected
        .iter()
        .map(|(reason, &count)| (reason.to_string(), count))
        .collect();
    reasons.sort();
    out.push('{');
    for (i, (reason, count)) in reasons.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::escape_into(out, reason);
        out.push(':');
        out.push_str(&count.to_string());
    }
    out.push('}');
}

/// Render one accepted kernel + its [`KernelStats`] as an NDJSON line.
fn render_kernel_line(kernel: &SynthesizedKernel, stats: &KernelStats) -> String {
    let mut line = String::with_capacity(kernel.source.len() + 128);
    line.push_str("{\"kernel\":");
    json::escape_into(&mut line, &kernel.source);
    line.push_str(&format!(
        ",\"instructions\":{},\"candidate_index\":{},\"attempts\":{},\"generated_chars\":{},",
        kernel.instructions, stats.candidate_index, stats.attempts, stats.generated_chars
    ));
    if kernel.repaired {
        // Only emitted when set, so natively-valid kernel lines keep their
        // exact pre-repair byte layout.
        line.push_str("\"repaired\":true,");
    }
    line.push_str("\"rejected\":");
    render_rejections(&mut line, &stats.rejected);
    line.push('}');
    line
}

/// Render the trailing per-request summary as an NDJSON line. The
/// `timed_out` marker is only emitted when set, so responses that never hit
/// their deadline are byte-identical to those of a deadline-free server.
fn render_done_line(summary: &StatsSummary, exhausted: bool, timed_out: bool) -> String {
    let mut line = String::with_capacity(160);
    line.push_str(&format!(
        "{{\"done\":true,\"kernels\":{},\"attempts\":{},\"generated_chars\":{},\"repaired\":{},\"exhausted\":{},",
        summary.kernels, summary.attempts, summary.generated_chars, summary.repaired, exhausted
    ));
    if timed_out {
        line.push_str("\"timeout\":true,");
    }
    line.push_str("\"rejected\":");
    render_rejections(&mut line, &summary.rejected);
    line.push('}');
    line
}

/// Why one generation of the sampler core returned (as opposed to panicking
/// out of `catch_unwind`).
enum Exit {
    /// Clean shutdown: drained (or drain deadline enforced) after
    /// [`SchedMsg::Shutdown`], or every sender hung up.
    Finished,
}

struct Scheduler {
    rx: mpsc::Receiver<SchedMsg>,
    filter_tx: mpsc::Sender<Vec<(u64, SampledCandidate)>>,
    backlog: VecDeque<Job>,
    active: Vec<ActiveRequest>,
    queued: Arc<AtomicUsize>,
    metrics: Arc<ServeMetrics>,
    flight: Arc<FlightRecorder>,
    faults: FaultPlan,
    seed_text: String,
    next_key: u32,
    rr: usize,
    in_flight_filter: usize,
    max_active: usize,
    shutdown: bool,
    drain_deadline: Option<Instant>,
}

impl Scheduler {
    fn handle(&mut self, msg: SchedMsg) {
        match msg {
            SchedMsg::Job(job) => self.backlog.push_back(job),
            SchedMsg::Shutdown { drain_deadline } => {
                self.shutdown = true;
                self.drain_deadline = drain_deadline;
            }
            SchedMsg::Filtered(batch) => {
                // Saturating: a panic between a filter send and the matching
                // increment can leave the counter one short after recovery.
                self.in_flight_filter = self.in_flight_filter.saturating_sub(1);
                for item in batch {
                    let key = ticket_key(item.ticket);
                    // A request that already finished (satisfied early,
                    // timed out, or its client went away) simply drops late
                    // verdicts.
                    if let Some(req) = self.active.iter_mut().find(|r| r.key == key) {
                        req.pending.insert(
                            ticket_index(item.ticket),
                            (item.candidate, item.verdict, item.filter_us),
                        );
                    }
                }
            }
        }
    }

    fn is_drained(&self) -> bool {
        self.active.is_empty() && self.backlog.is_empty() && self.in_flight_filter == 0
    }

    /// Fold every in-order verdict of every request into its response,
    /// completing requests that reach their target, their attempt cap or
    /// their deadline. The metric counters are bumped *before* the final
    /// `Done` line is sent, so `/stats` (or `/metrics`) read after a
    /// completed response reflects it.
    fn absorb_all(&mut self, engine: &mut BatchEngine<'_>) {
        let mut i = 0;
        while i < self.active.len() {
            if let Some(done_line) = Self::absorb_request(&mut self.active[i]) {
                let req = self.active.swap_remove(i);
                for lane in 0..engine.num_lanes() {
                    if engine
                        .lane_ticket(lane)
                        .is_some_and(|t| ticket_key(t) == req.key)
                    {
                        engine.abort(lane);
                    }
                }
                // `window` is already folded into `summary` on the partial-
                // response paths and empty there; on the satisfied path it
                // holds the trailing rejections after the last acceptance.
                self.metrics.kernels.add(req.summary.kernels as u64);
                self.metrics
                    .attempts
                    .add((req.summary.attempts + req.window.attempts) as u64);
                self.metrics
                    .generated_chars
                    .add((req.summary.generated_chars + req.window.generated_chars) as u64);
                self.metrics.filter_accepted.add(req.summary.kernels as u64);
                let mut aborted = 0u64;
                let mut other_rejected = 0u64;
                for (reason, &count) in req.summary.rejected.iter().chain(&req.window.rejected) {
                    match reason {
                        RejectReason::AbortedMidstream => aborted += count as u64,
                        _ => other_rejected += count as u64,
                    }
                    self.metrics
                        .filter_rejected(&reason.to_string())
                        .add(count as u64);
                }
                // Mutually-exclusive outcome taxonomy: the four counters sum
                // to the request's absorbed attempts.
                self.metrics
                    .candidate_outcome("accepted")
                    .add((req.summary.kernels - req.summary.repaired) as u64);
                self.metrics
                    .candidate_outcome("repaired")
                    .add(req.summary.repaired as u64);
                self.metrics
                    .candidate_outcome("aborted_midstream")
                    .add(aborted);
                self.metrics
                    .candidate_outcome("rejected")
                    .add(other_rejected);
                self.metrics.requests_completed.inc();
                if req.timed_out {
                    self.metrics.requests_timed_out.inc();
                }
                self.metrics.active_requests.set(self.active.len() as f64);
                req.trace.record_since("sampling", req.admitted_at);
                req.trace.record("filter", req.filter_us);
                let _ = req.reply.send(ResponseEvent::Done(done_line));
            } else {
                i += 1;
            }
        }
    }

    /// Absorb one request's ready verdicts in candidate order. Returns the
    /// rendered summary line once the request is complete.
    fn absorb_request(req: &mut ActiveRequest) -> Option<String> {
        while let Some((candidate, verdict, filter_us)) = req.pending.remove(&req.next_absorb) {
            let index = req.next_absorb;
            req.next_absorb += 1;
            req.filter_us += filter_us;
            req.window.attempts += 1;
            req.window.generated_chars += candidate.generated_chars;
            match verdict {
                Ok(kernel) => {
                    let mut stats = std::mem::take(&mut req.window);
                    stats.candidate_index = index;
                    stats.repaired = kernel.repaired as usize;
                    let line = render_kernel_line(&kernel, &stats);
                    req.summary.merge(&stats);
                    req.accepted += 1;
                    if !req.is_dead() && req.reply.send(ResponseEvent::Kernel(line)).is_err() {
                        req.failed = true;
                    }
                    if req.accepted >= req.params.count {
                        return Some(render_done_line(&req.summary, false, false));
                    }
                }
                Err(reason) => {
                    *req.window.rejected.entry(reason).or_insert(0) += 1;
                }
            }
        }
        if req.is_dead() {
            // Deadline passed mid-flight, or the client went away: answer
            // now with what was absorbed. Still-outstanding candidates are
            // dropped — their lanes are reaped by the step-abort predicate
            // (so they can never come back), and late filter verdicts are
            // dropped by the key lookup.
            req.summary.merge_window(&req.window);
            req.window = KernelStats::default();
            return Some(render_done_line(&req.summary, true, req.timed_out));
        }
        if req.next_absorb >= req.params.max_attempts as u64 {
            // Attempt cap reached with the target unmet: the trailing
            // rejected window joins the summary so every absorbed candidate
            // is accounted.
            req.summary.merge_window(&req.window);
            req.window = KernelStats::default();
            return Some(render_done_line(&req.summary, true, false));
        }
        None
    }

    /// Shed queued jobs whose deadline has already passed: fail fast with
    /// `503` + `Retry-After` instead of spending lanes on a request whose
    /// client has stopped waiting.
    fn shed_expired_backlog(&mut self) {
        if self.backlog.is_empty() {
            return;
        }
        let now = Instant::now();
        let queued = &self.queued;
        let metrics = &self.metrics;
        let flight = &self.flight;
        self.backlog.retain(|job| {
            if job.deadline.is_some_and(|d| d <= now) {
                queued.fetch_sub(1, Ordering::SeqCst);
                // Recorded here — on the shared sweep reached from both the
                // busy loop and the idle `recv_timeout` tick — so sheds are
                // counted even with zero concurrent traffic.
                let wait_us = job.enqueued_at.elapsed().as_micros() as u64;
                metrics.queue_wait_shed.observe(wait_us);
                metrics.requests_shed.inc();
                flight.record(
                    "shed",
                    format!("trace={} wait_us={wait_us}", job.trace.id()),
                );
                let _ = job.reply.send(ResponseEvent::Error(ServeError {
                    status: 503,
                    retry_after: Some(1),
                    message: "deadline expired while queued".to_string(),
                }));
                false
            } else {
                true
            }
        });
    }

    /// Mark in-flight requests whose deadline has passed and complete them
    /// with their partial results.
    fn reap_expired(&mut self, engine: &mut BatchEngine<'_>) {
        if self.active.is_empty() {
            return;
        }
        let now = Instant::now();
        let mut any = false;
        for req in &mut self.active {
            if !req.timed_out && req.deadline.is_some_and(|d| d <= now) {
                req.timed_out = true;
                self.flight
                    .record("reap", format!("trace={} key={}", req.trace.id(), req.key));
                any = true;
            }
        }
        if any {
            self.absorb_all(engine);
        }
    }

    /// Activate backlog jobs and refill free lanes, round-robin across
    /// active requests so no request monopolises the batch.
    fn admit(&mut self, engine: &mut BatchEngine<'_>) {
        while self.active.len() < self.max_active {
            let Some(job) = self.backlog.pop_front() else {
                break;
            };
            self.queued.fetch_sub(1, Ordering::SeqCst);
            let key = self.next_key;
            self.next_key = self.next_key.wrapping_add(1);
            let wait_us = job.enqueued_at.elapsed().as_micros() as u64;
            self.metrics.queue_wait_admitted.observe(wait_us);
            job.trace.record("queued", wait_us);
            self.flight.record(
                "admit",
                format!(
                    "trace={} key={key} seed={} count={} wait_us={wait_us}",
                    job.trace.id(),
                    job.params.seed,
                    job.params.count
                ),
            );
            self.active.push(ActiveRequest {
                key,
                params: job.params,
                deadline: job.deadline,
                reply: job.reply,
                cancelled: job.cancelled,
                admitted_at: Instant::now(),
                filter_us: 0,
                trace: job.trace,
                next_dispatch: 0,
                next_absorb: 0,
                pending: HashMap::new(),
                window: KernelStats::default(),
                summary: StatsSummary::default(),
                accepted: 0,
                failed: false,
                timed_out: false,
            });
        }
        // Reap abandoned requests (their finish condition can become true
        // without any filter verdict arriving — e.g. a disconnect observed
        // while nothing of theirs was in flight). This must run AFTER
        // backlog activation: a request can arrive already-cancelled, and
        // if it were activated after the sweep the scheduler could go to
        // sleep holding it, with no further message ever waking it.
        if self.active.iter().any(ActiveRequest::is_dead) {
            self.absorb_all(engine);
        }
        'lanes: while let Some(lane) = engine.free_lane() {
            let n = self.active.len();
            let mut tried = 0;
            loop {
                if tried >= n {
                    break 'lanes;
                }
                let i = self.rr % n;
                self.rr = self.rr.wrapping_add(1);
                tried += 1;
                let req = &mut self.active[i];
                if !req.wants_dispatch() {
                    continue;
                }
                let index = req.next_dispatch;
                req.next_dispatch += 1;
                let ticket = ticket(req.key, index);
                let options = SampleOptions {
                    max_chars: req.params.max_chars,
                    temperature: req.params.temperature,
                };
                let rng_seed = stream_seed(req.params.seed, index);
                if let Some(done) = engine.admit(lane, ticket, &self.seed_text, options, rng_seed) {
                    // Zero-budget candidates complete at admission; route
                    // them through the filter like any other round.
                    if self.filter_tx.send(vec![(ticket, done)]).is_ok() {
                        self.in_flight_filter += 1;
                    }
                }
                continue 'lanes;
            }
        }
    }

    fn publish(&self, engine: &BatchEngine<'_>) {
        self.metrics.lanes_busy.set(engine.occupied_lanes() as f64);
        self.metrics.active_requests.set(self.active.len() as f64);
    }

    /// Fail every in-flight request with `error`, dropping the requests (the
    /// panic quarantine: an in-flight job is never retried into a fresh
    /// batch). The engine of the failed generation is already gone.
    fn fail_in_flight(&mut self, error: &ServeError) {
        let n = self.active.len() as u64;
        for req in self.active.drain(..) {
            let _ = req.reply.send(ResponseEvent::Error(error.clone()));
        }
        self.metrics.requests_failed.add(n);
        self.metrics.active_requests.set(0.0);
        self.metrics.lanes_busy.set(0.0);
    }

    /// Fail every queued job with `error` (shutdown gave up on them).
    fn fail_backlog(&mut self, error: &ServeError) {
        let n = self.backlog.len() as u64;
        for job in self.backlog.drain(..) {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            let _ = job.reply.send(ResponseEvent::Error(error.clone()));
        }
        self.metrics.requests_failed.add(n);
    }

    /// The drain deadline passed with work still in the system: answer
    /// everything with `503 server stopping` so the process can still exit.
    fn enforce_drain_deadline(&mut self) -> bool {
        if !self.shutdown {
            return false;
        }
        let Some(deadline) = self.drain_deadline else {
            return false;
        };
        if Instant::now() < deadline || self.is_drained() {
            return false;
        }
        let error = ServeError {
            status: 503,
            retry_after: None,
            message: "server stopping: drain timeout expired".to_string(),
        };
        self.fail_in_flight(&error);
        self.fail_backlog(&error);
        true
    }

    /// One generation of the sampler core: drain requests into `engine`
    /// until shutdown completes or every sender hangs up. Runs under the
    /// supervisor's `catch_unwind`; a panic anywhere in here (model compute,
    /// absorption, an injected fault) aborts only this generation.
    fn run(&mut self, engine: &mut BatchEngine<'_>) -> Exit {
        let mut completed: Vec<(u64, SampledCandidate)> = Vec::new();
        loop {
            if self.enforce_drain_deadline() {
                return Exit::Finished;
            }
            self.shed_expired_backlog();
            self.reap_expired(engine);
            self.admit(engine);
            if engine.occupied_lanes() == 0 {
                let drained = self.is_drained();
                self.publish(engine);
                if self.shutdown && drained {
                    return Exit::Finished;
                }
                // Fully idle (or blocked on the filter): wait for input
                // instead of spinning, waking on a tick to sweep deadlines
                // and the drain timer.
                match self.rx.recv_timeout(IDLE_TICK) {
                    Ok(msg) => self.handle(msg),
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => return Exit::Finished,
                }
                while let Ok(msg) = self.rx.try_recv() {
                    self.handle(msg);
                }
                self.absorb_all(engine);
                continue;
            }
            // Busy: poll the inbox opportunistically so arriving requests
            // join the batch this round, then advance every lane one
            // character.
            self.faults.stall(FaultPoint::SamplerStall);
            while let Ok(msg) = self.rx.try_recv() {
                self.handle(msg);
            }
            self.absorb_all(engine);
            self.admit(engine);
            if self.faults.fire(FaultPoint::SamplerPanic).is_some() {
                self.flight.record("fault", "sampler_panic".to_string());
                panic!("injected fault: sampler_panic");
            }
            self.metrics
                .lane_occupancy
                .observe(engine.occupied_lanes() as u64);
            completed.clear();
            {
                // Lanes whose request is gone (completed, expired, or its
                // client vanished) are reaped mid-step through the engine's
                // abort predicate instead of sampling to their budget.
                let active = &self.active;
                engine.step_into_abortable(&mut completed, |t| {
                    let key = ticket_key(t);
                    match active.iter().find(|r| r.key == key) {
                        None => true,
                        Some(req) => req.is_dead(),
                    }
                });
            }
            if !completed.is_empty() {
                self.flight
                    .record("step", format!("completed={}", completed.len()));
                if self.filter_tx.send(std::mem::take(&mut completed)).is_err() {
                    // The filter thread died; nothing can complete any more.
                    return Exit::Finished;
                }
                self.in_flight_filter += 1;
            }
            self.publish(engine);
        }
    }
}

/// Everything the supervised sampler core needs beyond its inbox: the shared
/// checkpoint image it respawns from, the shared statistics, the fault plan,
/// and the server's shutdown trigger for budget exhaustion.
pub(crate) struct CoreContext {
    pub lanes: usize,
    pub seed_text: String,
    pub filter: FilterConfig,
    /// Pristine checkpoint image (the bytes of the model the server booted
    /// with); every respawn decodes a fresh model from it.
    pub checkpoint: Arc<Vec<u8>>,
    pub queued: Arc<AtomicUsize>,
    pub metrics: Arc<ServeMetrics>,
    pub flight: Arc<FlightRecorder>,
    pub supervisor: Arc<Supervisor>,
    pub faults: FaultPlan,
    /// Server shutdown flag + bound address: budget exhaustion triggers the
    /// same graceful-shutdown path as `POST /shutdown`.
    pub shutdown: Arc<AtomicBool>,
    pub addr: SocketAddr,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run the supervised sampler core until shutdown: the body of the
/// sampler-core thread spawned by the server.
///
/// Each generation of the core runs under `catch_unwind`; panics fail the
/// in-flight requests with typed 500s and respawn the core from the shared
/// checkpoint image, within the supervisor's restart budget (see the module
/// docs). `sched_tx` is the loop's own inbox sender, handed to the filter
/// thread so verdicts come back through the same channel as new jobs.
pub(crate) fn run_sampler_core(
    model: TrainedModel,
    ctx: CoreContext,
    rx: mpsc::Receiver<SchedMsg>,
    sched_tx: mpsc::Sender<SchedMsg>,
) {
    let (filter_tx, filter_rx) = mpsc::channel::<Vec<(u64, SampledCandidate)>>();
    let filter_config = ctx.filter.clone();
    let filter_faults = ctx.faults.clone();
    let filter_thread = std::thread::spawn(move || {
        // Filter stage: each round fans out over the rayon pool; verdicts
        // return to the scheduler inbox as one message per round. Each
        // candidate's verdict is computed under `catch_unwind`, so one
        // poisoned candidate panicking the filter becomes a typed rejection
        // instead of wedging every in-flight request.
        while let Ok(batch) = filter_rx.recv() {
            let filtered: Vec<Filtered> = batch
                .into_par_iter()
                .map(|(ticket, candidate)| {
                    let started = Instant::now();
                    let verdict = catch_unwind(AssertUnwindSafe(|| {
                        if filter_faults.fire(FaultPoint::FilterPanic).is_some() {
                            panic!("injected fault: filter_panic");
                        }
                        filter_candidate(&filter_config, &candidate)
                    }))
                    .unwrap_or(Err(RejectReason::FilterPanicked));
                    Filtered {
                        ticket,
                        candidate,
                        verdict,
                        filter_us: started.elapsed().as_micros() as u64,
                    }
                })
                .collect();
            if sched_tx.send(SchedMsg::Filtered(filtered)).is_err() {
                break;
            }
        }
    });

    let mut sched = Scheduler {
        rx,
        filter_tx,
        backlog: VecDeque::new(),
        active: Vec::new(),
        queued: ctx.queued.clone(),
        metrics: ctx.metrics.clone(),
        flight: ctx.flight.clone(),
        faults: ctx.faults.clone(),
        seed_text: ctx.seed_text.clone(),
        next_key: 0,
        rr: 0,
        in_flight_filter: 0,
        max_active: ctx.lanes.max(1),
        shutdown: false,
        drain_deadline: None,
    };

    // The model the server booted with serves the first generation; every
    // respawn decodes a fresh model from the pristine checkpoint image.
    let mut boot_model = Some(model);
    loop {
        let model = match boot_model.take() {
            Some(model) => model,
            None => {
                let mut image = ctx.checkpoint.as_ref().clone();
                if let Some(index) = ctx.faults.corrupt_reload(&mut image) {
                    ctx.flight
                        .record("fault", format!("corrupt_reload byte={index}"));
                    eprintln!(
                        "clgen-serve: injected fault: corrupt_reload (byte {index} of the \
                         checkpoint image)"
                    );
                }
                match TrainedModel::from_bytes(&image) {
                    Ok(model) => model,
                    Err(e) => {
                        ctx.flight.record("reload_failure", format!("{e}"));
                        eprint!("{}", ctx.flight.dump("reload_failure"));
                        eprintln!("clgen-serve: checkpoint reload failed: {e}; retrying");
                        ctx.metrics.supervisor_restarts.inc();
                        if ctx.supervisor.record_restart() {
                            give_up(&mut sched, &ctx);
                            break;
                        }
                        continue;
                    }
                }
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut streams = model.streams(ctx.lanes.max(1));
            let mut engine = BatchEngine::new(streams.as_mut(), model.vocabulary());
            sched.run(&mut engine)
        }));
        match outcome {
            Ok(Exit::Finished) => break,
            Err(payload) => {
                let message = panic_message(payload);
                ctx.flight.record("panic", message.clone());
                // Dump the flight ring before anything else: the recent
                // admissions/steps/faults leading up to the panic are the
                // post-mortem record.
                eprint!("{}", ctx.flight.dump("sampler_panic"));
                eprintln!(
                    "clgen-serve: sampler core panicked ({message}); failing in-flight \
                     requests and respawning from the checkpoint image"
                );
                sched.fail_in_flight(&ServeError {
                    status: 500,
                    retry_after: None,
                    message: format!("sampler core panicked: {message}"),
                });
                ctx.metrics.supervisor_restarts.inc();
                if ctx.supervisor.record_restart() {
                    give_up(&mut sched, &ctx);
                    break;
                }
            }
        }
    }

    // Closing the filter channel ends the filter thread's receive loop.
    drop(sched.filter_tx);
    let _ = filter_thread.join();
}

/// The restart budget is exhausted: answer everything still in the system
/// and trigger the server's graceful shutdown so the process exits instead
/// of spinning through a crash loop.
fn give_up(sched: &mut Scheduler, ctx: &CoreContext) {
    ctx.flight.record(
        "budget_exhausted",
        format!("restarts={}", ctx.supervisor.restarts()),
    );
    eprint!("{}", ctx.flight.dump("restart_budget_exhausted"));
    eprintln!(
        "clgen-serve: sampler core restart budget exhausted ({} restarts); shutting down",
        ctx.supervisor.restarts()
    );
    let error = ServeError {
        status: 503,
        retry_after: None,
        message: "server stopping: sampler core restart budget exhausted".to_string(),
    };
    sched.fail_in_flight(&error);
    sched.fail_backlog(&error);
    if !ctx.shutdown.swap(true, Ordering::SeqCst) {
        // Wake the blocking accept call so the shutdown sequence starts.
        let _ = std::net::TcpStream::connect(ctx.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn done_line_timeout_marker_is_additive() {
        let summary = StatsSummary {
            kernels: 1,
            attempts: 3,
            generated_chars: 120,
            repaired: 1,
            rejected: HashMap::new(),
        };
        let plain = render_done_line(&summary, false, false);
        assert_eq!(
            plain,
            "{\"done\":true,\"kernels\":1,\"attempts\":3,\"generated_chars\":120,\
             \"repaired\":1,\"exhausted\":false,\"rejected\":{}}"
        );
        let timed = render_done_line(&summary, true, true);
        assert!(timed.contains("\"timeout\":true"));
        assert!(timed.contains("\"exhausted\":true"));
        // The marker is strictly additive: stripping it yields the same
        // bytes as the exhausted fault-free line, preserving byte-identical
        // happy-path responses.
        assert_eq!(
            timed.replace("\"timeout\":true,", ""),
            render_done_line(&summary, true, false)
        );
    }

    /// With zero concurrent traffic nothing drives the scheduler's busy
    /// loop, so an expired queued job can only be shed by the idle
    /// `recv_timeout` tick — and that path must bump the shed metrics too.
    #[test]
    fn idle_tick_sheds_expired_job_and_records_metrics() {
        use clgen_corpus::Vocabulary;
        use clgen_neural::lstm::{LstmConfig, LstmModel};
        use clgen_neural::StatefulLstm;

        let vocab = Vocabulary::from_text("__kernel void A(__global int* a) { a[0] = 1; }\n");
        let config = LstmConfig::small(vocab.len());
        let model =
            TrainedModel::from_parts(vocab, Box::new(StatefulLstm::new(LstmModel::new(config))))
                .expect("model");

        let (tx, rx) = mpsc::channel::<SchedMsg>();
        let (filter_tx, _filter_rx) = mpsc::channel();
        let metrics = Arc::new(ServeMetrics::new(Arc::new(clgen_obs::Registry::new())));
        let flight = Arc::new(FlightRecorder::new(16));
        let mut sched = Scheduler {
            rx,
            filter_tx,
            backlog: VecDeque::new(),
            active: Vec::new(),
            queued: Arc::new(AtomicUsize::new(1)),
            metrics: metrics.clone(),
            flight: flight.clone(),
            faults: FaultPlan::inert(),
            seed_text: "__kernel".to_string(),
            next_key: 0,
            rr: 0,
            in_flight_filter: 0,
            // No lane capacity: the job can never activate, exactly like a
            // server with zero concurrent traffic ahead of admission.
            max_active: 0,
            shutdown: false,
            drain_deadline: None,
        };
        let core = std::thread::spawn(move || {
            let mut streams = model.streams(1);
            let mut engine = BatchEngine::new(streams.as_mut(), model.vocabulary());
            sched.run(&mut engine)
        });

        let (reply_tx, reply_rx) = mpsc::channel();
        tx.send(SchedMsg::Job(Job {
            params: SynthesisParams {
                count: 1,
                temperature: 1.0,
                max_chars: 64,
                seed: 7,
                max_attempts: 4,
                deadline_ms: Some(50),
            },
            deadline: Some(Instant::now() + Duration::from_millis(50)),
            enqueued_at: Instant::now(),
            trace: Arc::new(Trace::new("idle-shed-test".to_string())),
            reply: reply_tx,
            cancelled: Arc::new(AtomicBool::new(false)),
        }))
        .expect("send job");

        match reply_rx.recv_timeout(Duration::from_secs(10)) {
            Ok(ResponseEvent::Error(e)) => {
                assert_eq!(e.status, 503);
                assert_eq!(e.retry_after, Some(1));
                assert!(e.message.contains("deadline expired while queued"), "{e:?}");
            }
            other => panic!("expected shed error, got {other:?}"),
        }
        assert_eq!(metrics.requests_shed.get(), 1);
        assert_eq!(metrics.queue_wait_shed.count(), 1);
        assert!(
            flight.snapshot().iter().any(|e| e.kind == "shed"),
            "flight ring records the shed"
        );

        tx.send(SchedMsg::Shutdown {
            drain_deadline: None,
        })
        .expect("send shutdown");
        core.join().expect("core thread");
    }

    #[test]
    fn supervisor_window_accounting() {
        let sup = Supervisor::new(2, Duration::from_secs(3600));
        assert_eq!(sup.health(), ServiceHealth::Ok);
        assert!(!sup.record_restart());
        assert_eq!(sup.health(), ServiceHealth::Degraded);
        assert!(!sup.record_restart());
        assert!(sup.record_restart(), "third restart exceeds budget 2");
        assert_eq!(sup.health(), ServiceHealth::Failed);
        assert_eq!(sup.restarts(), 3);
    }

    #[test]
    fn supervisor_window_expires_restarts() {
        let sup = Supervisor::new(0, Duration::from_millis(30));
        assert!(sup.record_restart(), "budget 0 fails on the first restart");
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(sup.recent_restarts(), 0, "window pruned");
        // Failure latches even after the window empties.
        assert_eq!(sup.health(), ServiceHealth::Failed);
    }
}
