//! The batching scheduler: one sampler core draining every request into the
//! lanes of a single continuously-batched [`BatchEngine`] run.
//!
//! Connection-handler threads enqueue [`Job`]s; the sampler-core thread
//! ([`run_sampler_core`]) owns the model and folds the candidates of every
//! in-flight request into one shared batch, admitting new candidates into
//! lanes the moment they free up — so N concurrent clients share one batched
//! forward pass instead of running N serial ones. Completed candidates are
//! handed (in sampling rounds) to a rejection-filter thread that fans out
//! over the rayon pool, exactly like `SynthesisStream`'s pipelined filter
//! stage, and accepted kernels stream back to each request's connection as
//! they are absorbed.
//!
//! # Determinism
//!
//! A request's response body is a pure function of the model checkpoint and
//! the request's own parameters, *regardless of what else the server is
//! doing*:
//!
//! * candidate `i` of a request draws from the RNG stream
//!   [`stream_seed`]`(request.seed, i)` — independent of lane assignment and
//!   of the other requests sharing the batch (the [`BatchEngine`]
//!   guarantee);
//! * filter verdicts are pure functions of candidate text;
//! * candidates are absorbed into the response in candidate order, and the
//!   response covers exactly the candidates up to the `count`-th acceptance
//!   (or all `max_attempts` if the target is never met) — over-dispatched
//!   candidates beyond that deterministic cut are discarded.
//!
//! The scheduler may *sample* more candidates than a request's response ends
//! up covering (lanes run ahead while earlier candidates are still in the
//! filter); that overshoot costs throughput only, never determinism.

use crate::json;
use clgen::stream::{filter_candidate, stream_seed};
use clgen::synthesizer::SynthesizedKernel;
use clgen::{
    BatchEngine, KernelStats, SampleOptions, SampledCandidate, StatsSummary, TrainedModel,
};
use clgen_corpus::filter::FilterConfig;
use clgen_corpus::RejectReason;
use rayon::prelude::*;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// Candidates a request may keep in flight per still-wanted kernel, beyond
/// the ones already absorbed. Mirrors the stream pipeline's round
/// oversubscription: it keeps lanes busy while earlier candidates filter,
/// bounded so one request cannot monopolise the batch.
const REQUEST_OVERSUBSCRIPTION: usize = 4;

/// Parameters of one `/synthesize` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisParams {
    /// Accepted kernels requested.
    pub count: usize,
    /// Sampling temperature.
    pub temperature: f32,
    /// Per-candidate generated-character budget.
    pub max_chars: usize,
    /// Request seed: candidate `i` samples from
    /// [`stream_seed`]`(seed, i)`.
    pub seed: u64,
    /// Hard cap on candidates sampled for this request.
    pub max_attempts: usize,
}

/// One line of a streaming synthesis response.
#[derive(Debug)]
pub enum ResponseEvent {
    /// An accepted kernel (one rendered NDJSON line, no trailing newline).
    Kernel(String),
    /// The request is complete (the final summary NDJSON line).
    Done(String),
}

/// A synthesis request handed to the sampler core.
#[derive(Debug)]
pub struct Job {
    /// Request parameters.
    pub params: SynthesisParams,
    /// Where response lines are streamed.
    pub reply: mpsc::Sender<ResponseEvent>,
    /// Set by the connection handler when it observes the client has gone
    /// away, so the sampler core stops spending lanes on the request even
    /// if no acceptance (the other disconnect signal) ever happens.
    pub cancelled: Arc<AtomicBool>,
}

/// Everything the sampler core can receive.
pub enum SchedMsg {
    /// A new synthesis request.
    Job(Job),
    /// One round of filter verdicts coming back.
    Filtered(Vec<Filtered>),
    /// Drain all accepted work, then exit.
    Shutdown,
}

/// One candidate with its filter verdict.
pub struct Filtered {
    ticket: u64,
    candidate: SampledCandidate,
    verdict: Result<SynthesizedKernel, RejectReason>,
}

/// Aggregate service statistics shared with the HTTP front-end.
#[derive(Debug, Default)]
pub struct Aggregate {
    /// Totals over every candidate absorbed into a response.
    pub summary: StatsSummary,
    /// Requests accepted onto the queue.
    pub requests_received: u64,
    /// Requests fully answered.
    pub requests_completed: u64,
    /// Requests rejected with 503 (queue full).
    pub requests_rejected: u64,
    /// Lanes running a candidate after the most recent round.
    pub lanes_busy: usize,
    /// Requests currently active in the sampler core.
    pub active_requests: usize,
}

/// One request being served by the sampler core.
struct ActiveRequest {
    key: u32,
    params: SynthesisParams,
    reply: mpsc::Sender<ResponseEvent>,
    /// Candidates handed to lanes so far.
    next_dispatch: u64,
    /// Next candidate index to fold into the response.
    next_absorb: u64,
    /// Filter verdicts that arrived ahead of `next_absorb`.
    pending: HashMap<u64, (SampledCandidate, Result<SynthesizedKernel, RejectReason>)>,
    /// Accumulation since the last accepted kernel.
    window: KernelStats,
    /// Request totals (drives the trailing summary line).
    summary: StatsSummary,
    accepted: usize,
    /// A reply send failed (client went away mid-stream); sample no more,
    /// absorb silently.
    failed: bool,
    /// Disconnect flag shared with the connection handler.
    cancelled: Arc<AtomicBool>,
}

impl ActiveRequest {
    /// True once nobody is listening: a reply send failed, or the handler
    /// observed the client closing its socket.
    fn is_abandoned(&self) -> bool {
        self.failed || self.cancelled.load(Ordering::Relaxed)
    }

    fn wants_dispatch(&self) -> bool {
        if self.is_abandoned()
            || self.accepted >= self.params.count
            || self.next_dispatch >= self.params.max_attempts as u64
        {
            return false;
        }
        let outstanding = (self.next_dispatch - self.next_absorb) as usize;
        let wanted = self.params.count - self.accepted;
        outstanding < wanted.saturating_mul(REQUEST_OVERSUBSCRIPTION)
    }
}

fn ticket(key: u32, index: u64) -> u64 {
    (u64::from(key) << 32) | index
}

fn ticket_key(ticket: u64) -> u32 {
    (ticket >> 32) as u32
}

fn ticket_index(ticket: u64) -> u64 {
    ticket & 0xFFFF_FFFF
}

/// Render the sorted rejection map shared by kernel lines, summary lines
/// and the `/stats` endpoint.
pub(crate) fn render_rejections(out: &mut String, rejected: &HashMap<RejectReason, usize>) {
    let mut reasons: Vec<(String, usize)> = rejected
        .iter()
        .map(|(reason, &count)| (reason.to_string(), count))
        .collect();
    reasons.sort();
    out.push('{');
    for (i, (reason, count)) in reasons.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::escape_into(out, reason);
        out.push(':');
        out.push_str(&count.to_string());
    }
    out.push('}');
}

/// Render one accepted kernel + its [`KernelStats`] as an NDJSON line.
fn render_kernel_line(kernel: &SynthesizedKernel, stats: &KernelStats) -> String {
    let mut line = String::with_capacity(kernel.source.len() + 128);
    line.push_str("{\"kernel\":");
    json::escape_into(&mut line, &kernel.source);
    line.push_str(&format!(
        ",\"instructions\":{},\"candidate_index\":{},\"attempts\":{},\"generated_chars\":{},\"rejected\":",
        kernel.instructions, stats.candidate_index, stats.attempts, stats.generated_chars
    ));
    render_rejections(&mut line, &stats.rejected);
    line.push('}');
    line
}

/// Render the trailing per-request summary as an NDJSON line.
fn render_done_line(summary: &StatsSummary, exhausted: bool) -> String {
    let mut line = String::with_capacity(160);
    line.push_str(&format!(
        "{{\"done\":true,\"kernels\":{},\"attempts\":{},\"generated_chars\":{},\"exhausted\":{},\"rejected\":",
        summary.kernels, summary.attempts, summary.generated_chars, exhausted
    ));
    render_rejections(&mut line, &summary.rejected);
    line.push('}');
    line
}

struct Scheduler {
    rx: mpsc::Receiver<SchedMsg>,
    filter_tx: mpsc::Sender<Vec<(u64, SampledCandidate)>>,
    backlog: VecDeque<Job>,
    active: Vec<ActiveRequest>,
    queued: Arc<AtomicUsize>,
    aggregate: Arc<Mutex<Aggregate>>,
    seed_text: String,
    next_key: u32,
    rr: usize,
    in_flight_filter: usize,
    max_active: usize,
    shutdown: bool,
}

impl Scheduler {
    fn handle(&mut self, msg: SchedMsg, engine: &mut BatchEngine<'_>) {
        match msg {
            SchedMsg::Job(job) => self.backlog.push_back(job),
            SchedMsg::Shutdown => self.shutdown = true,
            SchedMsg::Filtered(batch) => {
                self.in_flight_filter -= 1;
                for item in batch {
                    let key = ticket_key(item.ticket);
                    // A request that already finished (satisfied early, or
                    // its client went away) simply drops late verdicts.
                    if let Some(req) = self.active.iter_mut().find(|r| r.key == key) {
                        req.pending
                            .insert(ticket_index(item.ticket), (item.candidate, item.verdict));
                    }
                }
                self.absorb_all(engine);
            }
        }
    }

    /// Fold every in-order verdict of every request into its response,
    /// completing requests that reach their target or their attempt cap.
    /// The aggregate statistics are merged *before* the final `Done` line is
    /// sent, so `/stats` read after a completed response reflects it.
    fn absorb_all(&mut self, engine: &mut BatchEngine<'_>) {
        let mut i = 0;
        while i < self.active.len() {
            if let Some(done_line) = Self::absorb_request(&mut self.active[i]) {
                let req = self.active.swap_remove(i);
                for lane in 0..engine.num_lanes() {
                    if engine
                        .lane_ticket(lane)
                        .is_some_and(|t| ticket_key(t) == req.key)
                    {
                        engine.abort(lane);
                    }
                }
                {
                    let mut agg = self.aggregate.lock().expect("aggregate lock");
                    agg.summary.merge_summary(&req.summary);
                    agg.summary.merge_window(&req.window);
                    agg.requests_completed += 1;
                    agg.active_requests = self.active.len();
                }
                let _ = req.reply.send(ResponseEvent::Done(done_line));
            } else {
                i += 1;
            }
        }
    }

    /// Absorb one request's ready verdicts in candidate order. Returns the
    /// rendered summary line once the request is complete.
    fn absorb_request(req: &mut ActiveRequest) -> Option<String> {
        while let Some((candidate, verdict)) = req.pending.remove(&req.next_absorb) {
            let index = req.next_absorb;
            req.next_absorb += 1;
            req.window.attempts += 1;
            req.window.generated_chars += candidate.generated_chars;
            match verdict {
                Ok(kernel) => {
                    let mut stats = std::mem::take(&mut req.window);
                    stats.candidate_index = index;
                    let line = render_kernel_line(&kernel, &stats);
                    req.summary.merge(&stats);
                    req.accepted += 1;
                    if !req.is_abandoned() && req.reply.send(ResponseEvent::Kernel(line)).is_err() {
                        req.failed = true;
                    }
                    if req.accepted >= req.params.count {
                        return Some(render_done_line(&req.summary, false));
                    }
                }
                Err(reason) => {
                    *req.window.rejected.entry(reason).or_insert(0) += 1;
                }
            }
        }
        if req.is_abandoned() && req.next_absorb >= req.next_dispatch {
            // The client went away and every dispatched candidate has been
            // absorbed: nothing left to stream to anyone.
            return Some(render_done_line(&req.summary, true));
        }
        if req.next_absorb >= req.params.max_attempts as u64 {
            // Attempt cap reached with the target unmet: the trailing
            // rejected window joins the summary so every absorbed candidate
            // is accounted.
            req.summary.merge_window(&req.window);
            req.window = KernelStats::default();
            return Some(render_done_line(&req.summary, true));
        }
        None
    }

    /// Activate backlog jobs and refill free lanes, round-robin across
    /// active requests so no request monopolises the batch.
    fn admit(&mut self, engine: &mut BatchEngine<'_>) {
        while self.active.len() < self.max_active {
            let Some(job) = self.backlog.pop_front() else {
                break;
            };
            self.queued.fetch_sub(1, Ordering::SeqCst);
            let key = self.next_key;
            self.next_key = self.next_key.wrapping_add(1);
            self.active.push(ActiveRequest {
                key,
                params: job.params,
                reply: job.reply,
                cancelled: job.cancelled,
                next_dispatch: 0,
                next_absorb: 0,
                pending: HashMap::new(),
                window: KernelStats::default(),
                summary: StatsSummary::default(),
                accepted: 0,
                failed: false,
            });
        }
        // Reap abandoned requests (their finish condition can become true
        // without any filter verdict arriving — e.g. a disconnect observed
        // while nothing of theirs was in flight). This must run AFTER
        // backlog activation: a request can arrive already-cancelled, and
        // if it were activated after the sweep the scheduler could go to
        // sleep holding it, with no further message ever waking it.
        if self.active.iter().any(ActiveRequest::is_abandoned) {
            self.absorb_all(engine);
        }
        'lanes: while let Some(lane) = engine.free_lane() {
            let n = self.active.len();
            let mut tried = 0;
            loop {
                if tried >= n {
                    break 'lanes;
                }
                let i = self.rr % n;
                self.rr = self.rr.wrapping_add(1);
                tried += 1;
                let req = &mut self.active[i];
                if !req.wants_dispatch() {
                    continue;
                }
                let index = req.next_dispatch;
                req.next_dispatch += 1;
                let ticket = ticket(req.key, index);
                let options = SampleOptions {
                    max_chars: req.params.max_chars,
                    temperature: req.params.temperature,
                };
                let rng_seed = stream_seed(req.params.seed, index);
                if let Some(done) = engine.admit(lane, ticket, &self.seed_text, options, rng_seed) {
                    // Zero-budget candidates complete at admission; route
                    // them through the filter like any other round.
                    self.in_flight_filter += 1;
                    if self.filter_tx.send(vec![(ticket, done)]).is_err() {
                        self.in_flight_filter -= 1;
                    }
                }
                continue 'lanes;
            }
        }
    }

    fn publish(&self, engine: &BatchEngine<'_>) {
        let mut agg = self.aggregate.lock().expect("aggregate lock");
        agg.lanes_busy = engine.occupied_lanes();
        agg.active_requests = self.active.len();
    }
}

/// Run the sampler core over `model` until shutdown: the body of the
/// sampler-core thread spawned by the server.
///
/// `sched_tx` is the loop's own inbox sender, handed to the filter thread so
/// verdicts come back through the same channel as new jobs.
#[allow(clippy::too_many_arguments)]
pub fn run_sampler_core(
    model: TrainedModel,
    lanes: usize,
    seed_text: String,
    filter: FilterConfig,
    rx: mpsc::Receiver<SchedMsg>,
    sched_tx: mpsc::Sender<SchedMsg>,
    queued: Arc<AtomicUsize>,
    aggregate: Arc<Mutex<Aggregate>>,
) {
    let (filter_tx, filter_rx) = mpsc::channel::<Vec<(u64, SampledCandidate)>>();
    let filter_thread = std::thread::spawn(move || {
        // Filter stage: each round fans out over the rayon pool; verdicts
        // return to the scheduler inbox as one message per round.
        while let Ok(batch) = filter_rx.recv() {
            let filtered: Vec<Filtered> = batch
                .into_par_iter()
                .map(|(ticket, candidate)| {
                    let verdict = filter_candidate(&filter, &candidate);
                    Filtered {
                        ticket,
                        candidate,
                        verdict,
                    }
                })
                .collect();
            if sched_tx.send(SchedMsg::Filtered(filtered)).is_err() {
                break;
            }
        }
    });

    let mut streams = model.streams(lanes.max(1));
    let mut engine = BatchEngine::new(streams.as_mut(), model.vocabulary());
    let mut sched = Scheduler {
        rx,
        filter_tx,
        backlog: VecDeque::new(),
        active: Vec::new(),
        queued,
        aggregate,
        seed_text,
        next_key: 0,
        rr: 0,
        in_flight_filter: 0,
        max_active: lanes.max(1),
        shutdown: false,
    };

    let mut completed: Vec<(u64, SampledCandidate)> = Vec::new();
    loop {
        sched.admit(&mut engine);
        if engine.occupied_lanes() == 0 {
            let drained =
                sched.active.is_empty() && sched.backlog.is_empty() && sched.in_flight_filter == 0;
            sched.publish(&engine);
            if sched.shutdown && drained {
                break;
            }
            // Fully idle (or blocked on the filter): wait for input instead
            // of spinning.
            match sched.rx.recv() {
                Ok(msg) => sched.handle(msg, &mut engine),
                Err(_) => break,
            }
            while let Ok(msg) = sched.rx.try_recv() {
                sched.handle(msg, &mut engine);
            }
            continue;
        }
        // Busy: poll the inbox opportunistically so arriving requests join
        // the batch this round, then advance every lane one character.
        while let Ok(msg) = sched.rx.try_recv() {
            sched.handle(msg, &mut engine);
        }
        sched.admit(&mut engine);
        completed.clear();
        engine.step_into(&mut completed);
        if !completed.is_empty() {
            sched.in_flight_filter += 1;
            if sched
                .filter_tx
                .send(std::mem::take(&mut completed))
                .is_err()
            {
                // The filter thread died; nothing can complete any more.
                break;
            }
        }
        sched.publish(&engine);
    }

    // Closing the filter channel ends the filter thread's receive loop.
    drop(sched.filter_tx);
    let _ = filter_thread.join();
}
