//! The HTTP front-end: accept loop, request routing, backpressure and
//! graceful shutdown over the batching scheduler.

use crate::http::{self, HttpError, Request};
use crate::scheduler::{
    run_sampler_core, Aggregate, Job, ResponseEvent, SchedMsg, SynthesisParams,
};
use crate::{json, DEFAULT_MAX_ATTEMPTS_PER_KERNEL};
use clgen::spec::FREE_SEED;
use clgen::TrainedModel;
use clgen_corpus::filter::FilterConfig;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Sample-stream lanes of the shared continuously-batched run.
    pub lanes: usize,
    /// Maximum requests queued ahead of the sampler core; beyond it,
    /// `/synthesize` answers `503 Service Unavailable` (backpressure).
    pub queue_cap: usize,
    /// Upper bound accepted for a request's `count` parameter.
    pub max_count: usize,
    /// Upper bound accepted for a request's `max_chars` parameter.
    pub max_chars_cap: usize,
    /// Upper bound accepted for a request's `max_attempts` parameter.
    pub max_attempts_cap: usize,
    /// Rejection-filter configuration applied to sampled candidates.
    pub filter: FilterConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:8090".to_string(),
            lanes: 8,
            queue_cap: 64,
            max_count: 1024,
            max_chars_cap: 64 * 1024,
            max_attempts_cap: 1 << 20,
            filter: FilterConfig {
                use_shim: false,
                min_instructions: 3,
            },
        }
    }
}

/// State shared between the accept loop and every connection handler.
struct Shared {
    aggregate: Arc<Mutex<Aggregate>>,
    queued: Arc<AtomicUsize>,
    shutdown: Arc<AtomicBool>,
    started: Instant,
    addr: SocketAddr,
    backend_kind: &'static str,
    config: ServerConfig,
}

/// The synthesis service: a model loaded once, served by one batching
/// sampler core behind a thread-per-connection HTTP/1.1 front-end.
pub struct Server;

impl Server {
    /// Bind, spawn the sampler core and the accept loop, and return a handle
    /// to the running server.
    pub fn start(model: TrainedModel, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let backend_kind = model.backend_kind();

        let (sched_tx, sched_rx) = mpsc::channel::<SchedMsg>();
        let aggregate = Arc::new(Mutex::new(Aggregate::default()));
        let queued = Arc::new(AtomicUsize::new(0));
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            aggregate: aggregate.clone(),
            queued: queued.clone(),
            shutdown: shutdown.clone(),
            started: Instant::now(),
            addr,
            backend_kind,
            config: config.clone(),
        });

        let core_tx = sched_tx.clone();
        let sampler_core = thread::Builder::new()
            .name("clgen-serve-sampler".to_string())
            .spawn(move || {
                run_sampler_core(
                    model,
                    config.lanes,
                    FREE_SEED.to_string(),
                    config.filter,
                    sched_rx,
                    core_tx,
                    queued,
                    aggregate,
                )
            })?;

        let accept_shutdown = shutdown.clone();
        let accept_thread = thread::Builder::new()
            .name("clgen-serve-accept".to_string())
            .spawn(move || {
                let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let tx = sched_tx.clone();
                    let shared = shared.clone();
                    handlers.retain(|h| !h.is_finished());
                    handlers.push(thread::spawn(move || handle_connection(stream, tx, shared)));
                }
                // Graceful shutdown: in-flight connections finish their
                // requests (the sampler core is still running), then the
                // core drains and exits.
                for handler in handlers {
                    let _ = handler.join();
                }
                let _ = sched_tx.send(SchedMsg::Shutdown);
                drop(sched_tx);
                let _ = sampler_core.join();
            })?;

        Ok(ServerHandle {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }
}

/// Handle to a running [`Server`].
///
/// Dropping the handle shuts the server down gracefully (as does
/// [`shutdown`](ServerHandle::shutdown)); [`join`](ServerHandle::join)
/// instead blocks until something else stops it — a `POST /shutdown` from a
/// client, typically.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Gracefully stop the server: stop accepting connections, let every
    /// in-flight request finish, drain the sampler core, join all threads.
    pub fn shutdown(mut self) {
        self.trigger();
        self.join_inner();
    }

    /// Block until the server stops (e.g. a client sent `POST /shutdown`).
    pub fn join(mut self) {
        self.join_inner();
    }

    fn trigger(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Wake the blocking accept call.
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn join_inner(&mut self) {
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.trigger();
            self.join_inner();
        }
    }
}

/// Parse and bounds-check `/synthesize` parameters.
fn parse_params(request: &Request, config: &ServerConfig) -> Result<SynthesisParams, String> {
    fn parse<T: std::str::FromStr>(request: &Request, name: &str, default: T) -> Result<T, String> {
        match request.query_param(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("parameter {name:?} is not valid: {raw:?}")),
        }
    }

    let count: usize = parse(request, "count", 1)?;
    if count == 0 || count > config.max_count {
        return Err(format!("count must be in 1..={}", config.max_count));
    }
    let max_chars: usize = parse(request, "max_chars", 2048)?;
    if max_chars == 0 || max_chars > config.max_chars_cap {
        return Err(format!("max_chars must be in 1..={}", config.max_chars_cap));
    }
    let temperature: f32 = parse(request, "temperature", 0.9)?;
    if !temperature.is_finite() || !(0.01..=100.0).contains(&temperature) {
        return Err("temperature must be a finite number in 0.01..=100".to_string());
    }
    let seed: u64 = parse(request, "seed", 0)?;
    let default_attempts = count
        .saturating_mul(DEFAULT_MAX_ATTEMPTS_PER_KERNEL)
        .min(config.max_attempts_cap);
    let max_attempts: usize = parse(request, "max_attempts", default_attempts)?;
    if max_attempts == 0 || max_attempts > config.max_attempts_cap {
        return Err(format!(
            "max_attempts must be in 1..={}",
            config.max_attempts_cap
        ));
    }
    Ok(SynthesisParams {
        count,
        temperature,
        max_chars,
        seed,
        max_attempts,
    })
}

fn write_json(stream: &mut TcpStream, status: u16, reason: &str, body: &str) {
    let _ = http::write_response(stream, status, reason, "application/json", body.as_bytes());
}

fn write_error(stream: &mut TcpStream, status: u16, reason: &str, message: &str) {
    let body = format!("{{\"error\":{}}}\n", json::escaped(message));
    write_json(stream, status, reason, &body);
}

fn handle_connection(stream: TcpStream, tx: mpsc::Sender<SchedMsg>, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    let request = match http::read_request(&mut reader) {
        Ok(request) => request,
        Err(HttpError::Io(_)) | Err(HttpError::UnexpectedEof) => return,
        Err(e) => {
            write_error(&mut stream, 400, "Bad Request", &e.to_string());
            return;
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let body = format!(
                "{{\"status\":\"ok\",\"backend\":{},\"lanes\":{}}}\n",
                json::escaped(shared.backend_kind),
                shared.config.lanes
            );
            write_json(&mut stream, 200, "OK", &body);
        }
        ("GET", "/stats") => {
            let body = render_stats(&shared);
            write_json(&mut stream, 200, "OK", &body);
        }
        ("POST", "/synthesize") => handle_synthesize(request, stream, tx, &shared),
        ("POST", "/shutdown") => {
            write_json(&mut stream, 200, "OK", "{\"shutting_down\":true}\n");
            drop(stream);
            if !shared.shutdown.swap(true, Ordering::SeqCst) {
                // Wake the blocking accept call so the graceful-shutdown
                // sequence starts.
                let _ = TcpStream::connect(shared.addr);
            }
        }
        (_, "/healthz" | "/stats") => {
            write_error(&mut stream, 405, "Method Not Allowed", "use GET");
        }
        (_, "/synthesize" | "/shutdown") => {
            write_error(&mut stream, 405, "Method Not Allowed", "use POST");
        }
        _ => write_error(&mut stream, 404, "Not Found", "unknown path"),
    }
}

fn handle_synthesize(
    request: Request,
    mut stream: TcpStream,
    tx: mpsc::Sender<SchedMsg>,
    shared: &Shared,
) {
    let params = match parse_params(&request, &shared.config) {
        Ok(params) => params,
        Err(message) => {
            write_error(&mut stream, 400, "Bad Request", &message);
            return;
        }
    };

    // Backpressure: a bounded admission queue ahead of the sampler core.
    let depth = shared.queued.fetch_add(1, Ordering::SeqCst);
    if depth >= shared.config.queue_cap || shared.shutdown.load(Ordering::SeqCst) {
        shared.queued.fetch_sub(1, Ordering::SeqCst);
        shared
            .aggregate
            .lock()
            .expect("aggregate lock")
            .requests_rejected += 1;
        let _ = http::write_response_with(
            &mut stream,
            503,
            "Service Unavailable",
            &[("Retry-After", "1")],
            "application/json",
            format!("{{\"error\":\"queue full\",\"queue_depth\":{depth}}}\n").as_bytes(),
        );
        return;
    }

    let (reply_tx, reply_rx) = mpsc::channel::<ResponseEvent>();
    let cancelled = Arc::new(AtomicBool::new(false));
    if tx
        .send(SchedMsg::Job(Job {
            params,
            reply: reply_tx,
            cancelled: cancelled.clone(),
        }))
        .is_err()
    {
        shared.queued.fetch_sub(1, Ordering::SeqCst);
        write_error(&mut stream, 503, "Service Unavailable", "server stopping");
        return;
    }
    shared
        .aggregate
        .lock()
        .expect("aggregate lock")
        .requests_received += 1;

    // A second handle onto the same socket, for the disconnect probe while
    // `chunks` holds the write borrow.
    let probe_handle = stream.try_clone();
    let Ok(mut chunks) = http::ChunkedWriter::new(&mut stream, 200, "OK", "application/x-ndjson")
    else {
        cancelled.store(true, Ordering::Relaxed);
        return;
    };
    loop {
        match reply_rx.recv_timeout(Duration::from_millis(500)) {
            Ok(ResponseEvent::Kernel(line)) => {
                if chunks.chunk(format!("{line}\n").as_bytes()).is_err() {
                    // Client went away mid-stream: tell the scheduler to
                    // stop sampling for this request.
                    cancelled.store(true, Ordering::Relaxed);
                    return;
                }
            }
            Ok(ResponseEvent::Done(line)) => {
                let _ = chunks.chunk(format!("{line}\n").as_bytes());
                let _ = chunks.finish();
                return;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Nothing accepted recently, so a vanished client would go
                // unnoticed by failing sends alone — probe the socket for
                // EOF so the sampler core stops spending lanes on it.
                if probe_handle.as_ref().is_ok_and(client_disconnected) {
                    cancelled.store(true, Ordering::Relaxed);
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Scheduler went away without completing the request.
                let _ = chunks.finish();
                return;
            }
        }
    }
}

/// True if the client's socket is gone: clean EOF (orderly close) or a hard
/// connection error (a client that closed with our response head unread
/// resets the connection, so reads yield `ECONNRESET`, not EOF). The request
/// is fully read and clients do not pipeline (`Connection: close`), so
/// `WouldBlock` is the only state that counts as alive.
fn client_disconnected(stream: &TcpStream) -> bool {
    use std::io::Read;
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let disconnected = match (&mut (&*stream)).read(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) => e.kind() != io::ErrorKind::WouldBlock,
    };
    let _ = stream.set_nonblocking(false);
    disconnected
}

fn render_stats(shared: &Shared) -> String {
    let queue_depth = shared.queued.load(Ordering::SeqCst);
    let agg = shared.aggregate.lock().expect("aggregate lock");
    let elapsed = shared.started.elapsed().as_secs_f64().max(1e-9);
    let mut rejected_json = String::new();
    crate::scheduler::render_rejections(&mut rejected_json, &agg.summary.rejected);
    format!(
        concat!(
            "{{\"backend\":{backend},\"uptime_seconds\":{uptime:.3},",
            "\"lanes\":{lanes},\"lanes_busy\":{lanes_busy},",
            "\"queue_depth\":{queue_depth},\"queue_cap\":{queue_cap},",
            "\"active_requests\":{active},",
            "\"requests\":{{\"received\":{received},\"completed\":{completed},\"rejected_503\":{rejected}}},",
            "\"sampling\":{{\"kernels\":{kernels},\"attempts\":{attempts},",
            "\"generated_chars\":{chars},\"acceptance_rate\":{rate:.4},",
            "\"chars_per_sec\":{cps:.0}}},",
            "\"rejections\":{rejections}}}\n"
        ),
        backend = json::escaped(shared.backend_kind),
        uptime = elapsed,
        lanes = shared.config.lanes,
        lanes_busy = agg.lanes_busy,
        queue_depth = queue_depth,
        queue_cap = shared.config.queue_cap,
        active = agg.active_requests,
        received = agg.requests_received,
        completed = agg.requests_completed,
        rejected = agg.requests_rejected,
        kernels = agg.summary.kernels,
        attempts = agg.summary.attempts,
        chars = agg.summary.generated_chars,
        rate = agg.summary.acceptance_rate(),
        cps = agg.summary.generated_chars as f64 / elapsed,
        rejections = rejected_json,
    )
}
