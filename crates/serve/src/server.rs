//! The HTTP front-end: accept loop, request routing, backpressure, deadlines
//! and bounded graceful shutdown over the supervised batching scheduler.

use crate::faults::{FaultPlan, FaultPoint};
use crate::harness_api::{self, DriveStage};
use crate::http::{self, HttpError, Request};
use crate::metrics::ServeMetrics;
use crate::scheduler::{
    run_sampler_core, CoreContext, Job, ResponseEvent, SchedMsg, ServeError, ServiceHealth,
    Supervisor, SynthesisParams,
};
use crate::{json, DEFAULT_MAX_ATTEMPTS_PER_KERNEL};
use clgen::spec::FREE_SEED;
use clgen::TrainedModel;
use clgen_corpus::filter::FilterConfig;
use clgen_harness::{Deadline, Harness, HarnessConfig};
use clgen_obs::{FlightRecorder, Registry, Trace};
use predictive::MappingModel;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Largest accepted `deadline_ms` (24 hours): anything longer is a typo.
pub const MAX_DEADLINE_MS: u64 = 86_400_000;

/// Events retained by the flight recorder (enough context to cover the
/// rounds leading up to a crash without unbounded growth).
const FLIGHT_CAPACITY: usize = 256;

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Sample-stream lanes of the shared continuously-batched run.
    pub lanes: usize,
    /// Maximum requests queued ahead of the sampler core; beyond it,
    /// `/synthesize` answers `503 Service Unavailable` (backpressure).
    pub queue_cap: usize,
    /// Upper bound accepted for a request's `count` parameter.
    pub max_count: usize,
    /// Upper bound accepted for a request's `max_chars` parameter.
    pub max_chars_cap: usize,
    /// Upper bound accepted for a request's `max_attempts` parameter.
    pub max_attempts_cap: usize,
    /// Rejection-filter configuration applied to sampled candidates.
    pub filter: FilterConfig,
    /// Socket read timeout per connection (`None` disables): bounds how long
    /// a stalled client can pin a connection thread while sending its
    /// request.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout per connection (`None` disables): bounds how
    /// long a reader that stops draining its socket can pin a connection
    /// thread mid-response.
    pub write_timeout: Option<Duration>,
    /// Graceful-shutdown drain bound: after `POST /shutdown` (or a restart-
    /// budget failure), in-flight and queued requests get this long to
    /// finish before they are answered `503 server stopping` and the
    /// process exits anyway. `None` drains without bound.
    pub drain_timeout: Option<Duration>,
    /// Default per-request deadline applied when a request carries no
    /// `deadline_ms` parameter (`None` = no default deadline).
    pub default_deadline_ms: Option<u64>,
    /// Sampler-core restarts tolerated within [`restart_window`] before the
    /// supervisor gives up and shuts the server down
    /// ([`ServiceHealth::Failed`]).
    ///
    /// [`restart_window`]: ServerConfig::restart_window
    pub restart_budget: u32,
    /// Sliding window for [`restart_budget`] accounting; also how long
    /// `/healthz` reports `degraded` after a recovered restart.
    ///
    /// [`restart_budget`]: ServerConfig::restart_budget
    pub restart_window: Duration,
    /// Deterministic fault-injection plan (inert by default; armed plans
    /// require the `faults` cargo feature).
    pub faults: FaultPlan,
    /// Default drive-and-predict harness configuration used by `/drive`,
    /// `/features` and `/pipeline` (per-request `sizes`, `drive_seed` and
    /// `feature_set` parameters override it).
    pub harness: HarnessConfig,
    /// Trained CPU/GPU mapping model served by the harness endpoints
    /// (`--mapping-model`); `None` streams runs and features but no
    /// `prediction` events.
    pub mapping_model: Option<Arc<MappingModel>>,
    /// Metric registry `GET /metrics` renders. The binary wires the
    /// process-global [`clgen_obs::global`] registry in (so training and
    /// harness work surfaces on the same endpoint); `None` gives the server
    /// a private registry, keeping embedded/test servers hermetic.
    pub metrics: Option<Arc<Registry>>,
    /// Serve the flight recorder at `GET /debug/flight` (`--debug-flight`).
    /// Off by default: the ring is always recording and dumps to stderr on
    /// supervisor failures either way; this only gates the live endpoint.
    pub debug_flight: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:8090".to_string(),
            lanes: 8,
            queue_cap: 64,
            max_count: 1024,
            max_chars_cap: 64 * 1024,
            max_attempts_cap: 1 << 20,
            filter: FilterConfig {
                use_shim: false,
                min_instructions: 3,
            },
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            drain_timeout: Some(Duration::from_secs(5)),
            default_deadline_ms: None,
            restart_budget: 3,
            restart_window: Duration::from_secs(60),
            faults: FaultPlan::inert(),
            harness: HarnessConfig::default(),
            mapping_model: None,
            metrics: None,
            debug_flight: false,
        }
    }
}

/// State shared between the accept loop and every connection handler.
pub(crate) struct Shared {
    pub(crate) metrics: Arc<ServeMetrics>,
    pub(crate) flight: Arc<FlightRecorder>,
    pub(crate) queued: Arc<AtomicUsize>,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) supervisor: Arc<Supervisor>,
    pub(crate) started: Instant,
    pub(crate) addr: SocketAddr,
    pub(crate) backend_kind: &'static str,
    pub(crate) config: ServerConfig,
}

/// The synthesis service: a model loaded once, served by one supervised
/// batching sampler core behind a thread-per-connection HTTP/1.1 front-end.
pub struct Server;

impl Server {
    /// Bind, spawn the sampler core and the accept loop, and return a handle
    /// to the running server.
    pub fn start(model: TrainedModel, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let backend_kind = model.backend_kind();
        // The pristine checkpoint image the supervisor respawns the sampler
        // core from (`to_bytes`/`from_bytes` roundtrips are bit-exact, so a
        // respawned core reproduces the same responses).
        let checkpoint = Arc::new(model.to_bytes());

        let (sched_tx, sched_rx) = mpsc::channel::<SchedMsg>();
        let registry = config
            .metrics
            .clone()
            .unwrap_or_else(|| Arc::new(Registry::new()));
        let metrics = Arc::new(ServeMetrics::new(registry));
        let flight = Arc::new(FlightRecorder::new(FLIGHT_CAPACITY));
        let queued = Arc::new(AtomicUsize::new(0));
        let shutdown = Arc::new(AtomicBool::new(false));
        let supervisor = Arc::new(Supervisor::new(
            config.restart_budget,
            config.restart_window,
        ));
        let shared = Arc::new(Shared {
            metrics: metrics.clone(),
            flight: flight.clone(),
            queued: queued.clone(),
            shutdown: shutdown.clone(),
            supervisor: supervisor.clone(),
            started: Instant::now(),
            addr,
            backend_kind,
            config: config.clone(),
        });

        let ctx = CoreContext {
            lanes: config.lanes,
            seed_text: FREE_SEED.to_string(),
            filter: config.filter.clone(),
            checkpoint,
            queued,
            metrics,
            flight,
            supervisor: supervisor.clone(),
            faults: config.faults.clone(),
            shutdown: shutdown.clone(),
            addr,
        };
        let core_tx = sched_tx.clone();
        let sampler_core = thread::Builder::new()
            .name("clgen-serve-sampler".to_string())
            .spawn(move || run_sampler_core(model, ctx, sched_rx, core_tx))?;

        let accept_shutdown = shutdown.clone();
        let drain_timeout = config.drain_timeout;
        let accept_thread = thread::Builder::new()
            .name("clgen-serve-accept".to_string())
            .spawn(move || {
                let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let tx = sched_tx.clone();
                    let shared = shared.clone();
                    handlers.retain(|h| !h.is_finished());
                    handlers.push(thread::spawn(move || handle_connection(stream, tx, shared)));
                }
                // Graceful shutdown with a bounded drain: tell the core to
                // drain *now*, with a deadline — in-flight connections then
                // finish normally (the core answers their requests), or get
                // `503 server stopping` when the drain deadline hits, so a
                // wedged request cannot keep the process alive forever.
                let drain_deadline = drain_timeout.map(|t| Instant::now() + t);
                let _ = sched_tx.send(SchedMsg::Shutdown { drain_deadline });
                for handler in handlers {
                    let _ = handler.join();
                }
                drop(sched_tx);
                let _ = sampler_core.join();
            })?;

        Ok(ServerHandle {
            addr,
            shutdown,
            supervisor,
            accept_thread: Some(accept_thread),
        })
    }
}

/// Handle to a running [`Server`].
///
/// Dropping the handle shuts the server down gracefully (as does
/// [`shutdown`](ServerHandle::shutdown)); [`join`](ServerHandle::join)
/// instead blocks until something else stops it — a `POST /shutdown` from a
/// client, or the supervisor exhausting its restart budget. Both return the
/// final [`ServiceHealth`], so callers can exit nonzero on
/// [`ServiceHealth::Failed`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    supervisor: Arc<Supervisor>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current service health (the supervisor's view; what `/healthz`
    /// reports).
    pub fn health(&self) -> ServiceHealth {
        self.supervisor.health()
    }

    /// Gracefully stop the server: stop accepting connections, drain
    /// in-flight requests (bounded by the configured drain timeout), join
    /// all threads. Returns the final service health.
    pub fn shutdown(mut self) -> ServiceHealth {
        self.trigger();
        self.join_inner();
        self.supervisor.health()
    }

    /// Block until the server stops (a client sent `POST /shutdown`, or the
    /// supervisor gave up after exhausting its restart budget). Returns the
    /// final service health.
    pub fn join(mut self) -> ServiceHealth {
        self.join_inner();
        self.supervisor.health()
    }

    fn trigger(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Wake the blocking accept call.
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn join_inner(&mut self) {
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.trigger();
            self.join_inner();
        }
    }
}

/// Parse and bounds-check `/synthesize` parameters.
fn parse_params(request: &Request, config: &ServerConfig) -> Result<SynthesisParams, String> {
    fn parse<T: std::str::FromStr>(request: &Request, name: &str, default: T) -> Result<T, String> {
        match request.query_param(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("parameter {name:?} is not valid: {raw:?}")),
        }
    }

    let count: usize = parse(request, "count", 1)?;
    if count == 0 || count > config.max_count {
        return Err(format!("count must be in 1..={}", config.max_count));
    }
    let max_chars: usize = parse(request, "max_chars", 2048)?;
    if max_chars == 0 || max_chars > config.max_chars_cap {
        return Err(format!("max_chars must be in 1..={}", config.max_chars_cap));
    }
    let temperature: f32 = parse(request, "temperature", 0.9)?;
    if !temperature.is_finite() || !(0.01..=100.0).contains(&temperature) {
        return Err("temperature must be a finite number in 0.01..=100".to_string());
    }
    let seed: u64 = parse(request, "seed", 0)?;
    let default_attempts = count
        .saturating_mul(DEFAULT_MAX_ATTEMPTS_PER_KERNEL)
        .min(config.max_attempts_cap);
    let max_attempts: usize = parse(request, "max_attempts", default_attempts)?;
    if max_attempts == 0 || max_attempts > config.max_attempts_cap {
        return Err(format!(
            "max_attempts must be in 1..={}",
            config.max_attempts_cap
        ));
    }
    let deadline_ms: Option<u64> = match request.query_param("deadline_ms") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("parameter \"deadline_ms\" is not valid: {raw:?}"))?,
        ),
    };
    if let Some(ms) = deadline_ms {
        if ms == 0 || ms > MAX_DEADLINE_MS {
            return Err(format!("deadline_ms must be in 1..={MAX_DEADLINE_MS}"));
        }
    }
    Ok(SynthesisParams {
        count,
        temperature,
        max_chars,
        seed,
        max_attempts,
        deadline_ms,
    })
}

fn write_json(stream: &mut TcpStream, status: u16, reason: &str, body: &str) {
    let _ = http::write_response(stream, status, reason, "application/json", body.as_bytes());
}

pub(crate) fn write_error(stream: &mut TcpStream, status: u16, reason: &str, message: &str) {
    let body = format!("{{\"error\":{}}}\n", json::escaped(message));
    write_json(stream, status, reason, &body);
}

/// Render a [`ServeError`] as a plain HTTP error response (response head not
/// yet written).
fn write_serve_error(stream: &mut TcpStream, err: &ServeError) {
    let reason = match err.status {
        500 => "Internal Server Error",
        _ => "Service Unavailable",
    };
    let body = format!("{{\"error\":{}}}\n", json::escaped(&err.message));
    match err.retry_after {
        Some(secs) => {
            let retry = secs.to_string();
            let _ = http::write_response_with(
                stream,
                err.status,
                reason,
                &[("Retry-After", retry.as_str())],
                "application/json",
                body.as_bytes(),
            );
        }
        None => write_json(stream, err.status, reason, &body),
    }
}

fn handle_connection(stream: TcpStream, tx: mpsc::Sender<SchedMsg>, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(shared.config.read_timeout);
    let _ = stream.set_write_timeout(shared.config.write_timeout);
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    let request = match http::read_request(&mut reader) {
        Ok(request) => request,
        Err(HttpError::Io(_)) | Err(HttpError::UnexpectedEof) => return,
        Err(e) => {
            write_error(&mut stream, 400, "Bad Request", &e.to_string());
            return;
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let health = shared.supervisor.health();
            let (status, reason) = match health {
                ServiceHealth::Failed => (503, "Service Unavailable"),
                _ => (200, "OK"),
            };
            let body = format!(
                "{{\"status\":{},\"backend\":{},\"lanes\":{},\"restarts\":{},\"recent_restarts\":{}}}\n",
                json::escaped(health.as_str()),
                json::escaped(shared.backend_kind),
                shared.config.lanes,
                shared.supervisor.restarts(),
                shared.supervisor.recent_restarts(),
            );
            write_json(&mut stream, status, reason, &body);
        }
        ("GET", "/stats") => {
            let body = render_stats(&shared);
            write_json(&mut stream, 200, "OK", &body);
        }
        ("GET", "/metrics") => {
            shared
                .metrics
                .queue_depth
                .set(shared.queued.load(Ordering::SeqCst) as f64);
            let body = shared.metrics.registry.render_prometheus();
            let _ = http::write_response(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4",
                body.as_bytes(),
            );
        }
        ("GET", "/debug/flight") => {
            if shared.config.debug_flight {
                let body = shared.flight.dump("debug_endpoint");
                let _ = http::write_response(
                    &mut stream,
                    200,
                    "OK",
                    "application/x-ndjson",
                    body.as_bytes(),
                );
            } else {
                write_error(
                    &mut stream,
                    404,
                    "Not Found",
                    "flight endpoint disabled (start with --debug-flight)",
                );
            }
        }
        ("POST", "/synthesize") => {
            stream_synthesis(request, stream, tx, &shared, None, "synthesize")
        }
        ("POST", "/drive") => harness_api::handle_drive(request, stream, &shared, DriveStage::Runs),
        ("POST", "/features") => {
            harness_api::handle_drive(request, stream, &shared, DriveStage::Features)
        }
        ("POST", "/pipeline") => harness_api::handle_pipeline(request, stream, tx, &shared),
        ("POST", "/shutdown") => {
            write_json(&mut stream, 200, "OK", "{\"shutting_down\":true}\n");
            drop(stream);
            if !shared.shutdown.swap(true, Ordering::SeqCst) {
                // Wake the blocking accept call so the graceful-shutdown
                // sequence starts.
                let _ = TcpStream::connect(shared.addr);
            }
        }
        (_, "/healthz" | "/stats" | "/metrics" | "/debug/flight") => {
            write_error(&mut stream, 405, "Method Not Allowed", "use GET");
        }
        (_, "/synthesize" | "/shutdown" | "/drive" | "/features" | "/pipeline") => {
            write_error(&mut stream, 405, "Method Not Allowed", "use POST");
        }
        _ => write_error(&mut stream, 404, "Not Found", "unknown path"),
    }
}

/// Run one synthesis request through the batching scheduler and stream its
/// NDJSON response. With a harness attached (`/pipeline`), each accepted
/// kernel line is followed inline by that kernel's harness events — the
/// drive runs on this connection thread, so a hostile synthesized kernel is
/// contained by the harness budgets and never touches the sampler core.
pub(crate) fn stream_synthesis(
    request: Request,
    mut stream: TcpStream,
    tx: mpsc::Sender<SchedMsg>,
    shared: &Shared,
    harness: Option<Harness>,
    endpoint: &'static str,
) {
    let received_at = Instant::now();
    let finish = |outcome: &'static str| {
        shared
            .metrics
            .observe_latency(endpoint, outcome, received_at.elapsed().as_micros() as u64);
    };
    let params = match parse_params(&request, &shared.config) {
        Ok(params) => params,
        Err(message) => {
            write_error(&mut stream, 400, "Bad Request", &message);
            finish("bad_request");
            return;
        }
    };

    // Backpressure: a bounded admission queue ahead of the sampler core.
    let depth = shared.queued.fetch_add(1, Ordering::SeqCst);
    if depth >= shared.config.queue_cap || shared.shutdown.load(Ordering::SeqCst) {
        shared.queued.fetch_sub(1, Ordering::SeqCst);
        shared.metrics.requests_rejected.inc();
        let _ = http::write_response_with(
            &mut stream,
            503,
            "Service Unavailable",
            &[("Retry-After", "1")],
            "application/json",
            format!("{{\"error\":\"queue full\",\"queue_depth\":{depth}}}\n").as_bytes(),
        );
        finish("rejected");
        return;
    }

    // The deadline clock starts at admission: queueing time counts against
    // it (that is what lets the scheduler shed jobs that expired while
    // queued).
    let deadline = params
        .deadline_ms
        .or(shared.config.default_deadline_ms)
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let trace = Arc::new(Trace::from_client(request.header("trace-id"), params.seed));
    let (reply_tx, reply_rx) = mpsc::channel::<ResponseEvent>();
    let cancelled = Arc::new(AtomicBool::new(false));
    if tx
        .send(SchedMsg::Job(Job {
            params,
            deadline,
            enqueued_at: Instant::now(),
            trace: trace.clone(),
            reply: reply_tx,
            cancelled: cancelled.clone(),
        }))
        .is_err()
    {
        shared.queued.fetch_sub(1, Ordering::SeqCst);
        write_error(&mut stream, 503, "Service Unavailable", "server stopping");
        finish("error");
        return;
    }
    shared.metrics.requests_received.inc();

    // Phase 1: wait for the first event *before* writing the response head,
    // so failures (queue shed, panic quarantine, shutdown) can still be
    // typed HTTP errors instead of a truncated 200.
    let first = loop {
        match reply_rx.recv_timeout(Duration::from_millis(500)) {
            Ok(event) => break event,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if client_disconnected(&stream) {
                    cancelled.store(true, Ordering::Relaxed);
                    finish("disconnect");
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Sampler core went away without answering the request.
                write_error(&mut stream, 503, "Service Unavailable", "server stopping");
                finish("error");
                return;
            }
        }
    };
    if let ResponseEvent::Error(err) = &first {
        write_serve_error(&mut stream, err);
        finish(if err.message.contains("deadline expired while queued") {
            "shed"
        } else {
            "error"
        });
        return;
    }

    // A second handle onto the same socket, for the disconnect probe while
    // `chunks` holds the write borrow.
    let probe_handle = stream.try_clone();
    // The `respond` span covers everything from the response head to the
    // final chunk: streaming writes plus the tail of sampling they overlap.
    let respond_started = Instant::now();
    let Ok(mut chunks) = http::ChunkedWriter::new(&mut stream, 200, "OK", "application/x-ndjson")
    else {
        cancelled.store(true, Ordering::Relaxed);
        finish("disconnect");
        return;
    };
    let mut next = Some(first);
    loop {
        let event = match next.take() {
            Some(event) => event,
            None => match reply_rx.recv_timeout(Duration::from_millis(500)) {
                Ok(event) => event,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Nothing accepted recently, so a vanished client would
                    // go unnoticed by failing sends alone — probe the socket
                    // for EOF so the sampler core stops spending lanes on it.
                    if probe_handle.as_ref().is_ok_and(client_disconnected) {
                        cancelled.store(true, Ordering::Relaxed);
                        finish("disconnect");
                        return;
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // Scheduler went away without completing the request.
                    let _ = chunks.finish();
                    finish("error");
                    return;
                }
            },
        };
        match event {
            ResponseEvent::Kernel(line) => {
                if shared
                    .config
                    .faults
                    .fire(FaultPoint::DropResponse)
                    .is_some()
                {
                    // Injected mid-body disconnect: abandon the socket with
                    // the chunked body unterminated; the client sees a
                    // truncated response. The request itself keeps running
                    // and is absorbed silently once sends start failing.
                    shared.flight.record("fault", "drop_response".to_string());
                    finish("disconnect");
                    return;
                }
                shared.config.faults.stall(FaultPoint::SlowWrite);
                if chunks.chunk(format!("{line}\n").as_bytes()).is_err() {
                    // Client went away mid-stream: tell the scheduler to
                    // stop sampling for this request.
                    cancelled.store(true, Ordering::Relaxed);
                    finish("disconnect");
                    return;
                }
                if let Some(harness) = &harness {
                    let harness_deadline = match deadline {
                        Some(at) => Deadline::at(at),
                        None => Deadline::none(),
                    };
                    for hl in harness_api::pipeline_lines(harness, &line, &harness_deadline, &trace)
                    {
                        if chunks.chunk(format!("{hl}\n").as_bytes()).is_err() {
                            cancelled.store(true, Ordering::Relaxed);
                            finish("disconnect");
                            return;
                        }
                    }
                }
            }
            ResponseEvent::Done(line) => {
                shared.config.faults.stall(FaultPoint::SlowWrite);
                trace.record_since("respond", respond_started);
                // The trace object is additive: strip it (`json::strip_trace`)
                // to recover the deterministic done-line bytes.
                let line = json::splice_field(&line, &format!("\"trace\":{}", trace.render_json()));
                let _ = chunks.chunk(format!("{line}\n").as_bytes());
                // Record the sample before the terminating chunk: a client
                // that has seen the complete response is guaranteed to find
                // it on an immediate `/metrics` scrape.
                finish("ok");
                let _ = chunks.finish();
                return;
            }
            ResponseEvent::Error(err) => {
                // The head is already written: the failure becomes a
                // terminal NDJSON line with an `aborted` marker, so clients
                // can distinguish it from a clean summary.
                let line = format!(
                    "{{\"aborted\":{},\"status\":{}}}\n",
                    json::escaped(&err.message),
                    err.status
                );
                let _ = chunks.chunk(line.as_bytes());
                finish("error");
                let _ = chunks.finish();
                return;
            }
        }
    }
}

/// True if the client's socket is gone: clean EOF (orderly close) or a hard
/// connection error (a client that closed with our response head unread
/// resets the connection, so reads yield `ECONNRESET`, not EOF). The request
/// is fully read and clients do not pipeline (`Connection: close`), so
/// `WouldBlock` is the only state that counts as alive.
pub(crate) fn client_disconnected(stream: &TcpStream) -> bool {
    use std::io::Read;
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let disconnected = match (&mut (&*stream)).read(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) => e.kind() != io::ErrorKind::WouldBlock,
    };
    let _ = stream.set_nonblocking(false);
    disconnected
}

fn render_stats(shared: &Shared) -> String {
    let queue_depth = shared.queued.load(Ordering::SeqCst);
    let metrics = &shared.metrics;
    metrics.queue_depth.set(queue_depth as f64);
    let elapsed = shared.started.elapsed().as_secs_f64().max(1e-9);
    let kernels = metrics.kernels.get();
    let attempts = metrics.attempts.get();
    let generated_chars = metrics.generated_chars.get();
    // `/stats` and `/metrics` render from the same atomics (see
    // `ServeMetrics`): they are two views of one state and cannot disagree.
    let mut rejected_json = String::from("{");
    for (i, (reason, count)) in metrics.rejection_counts().iter().enumerate() {
        if i > 0 {
            rejected_json.push(',');
        }
        json::escape_into(&mut rejected_json, reason);
        rejected_json.push(':');
        rejected_json.push_str(&count.to_string());
    }
    rejected_json.push('}');
    let mut candidates_json = String::from("{");
    for (i, (outcome, count)) in metrics.candidate_counts().iter().enumerate() {
        if i > 0 {
            candidates_json.push(',');
        }
        json::escape_into(&mut candidates_json, outcome);
        candidates_json.push(':');
        candidates_json.push_str(&count.to_string());
    }
    candidates_json.push('}');
    format!(
        concat!(
            "{{\"backend\":{backend},\"uptime_seconds\":{uptime:.3},",
            "\"health\":{{\"status\":{health},\"restarts\":{restarts},\"recent_restarts\":{recent}}},",
            "\"lanes\":{lanes},\"lanes_busy\":{lanes_busy},",
            "\"queue_depth\":{queue_depth},\"queue_cap\":{queue_cap},",
            "\"active_requests\":{active},",
            "\"requests\":{{\"received\":{received},\"completed\":{completed},\"rejected_503\":{rejected},",
            "\"shed\":{shed},\"timed_out\":{timed_out},\"failed\":{failed}}},",
            "\"sampling\":{{\"kernels\":{kernels},\"attempts\":{attempts},",
            "\"generated_chars\":{chars},\"acceptance_rate\":{rate:.4},",
            "\"chars_per_sec\":{cps:.0}}},",
            "\"candidates\":{candidates},",
            "\"harness\":{harness},",
            "\"rejections\":{rejections}}}\n"
        ),
        backend = json::escaped(shared.backend_kind),
        uptime = elapsed,
        health = json::escaped(shared.supervisor.health().as_str()),
        restarts = shared.supervisor.restarts(),
        recent = shared.supervisor.recent_restarts(),
        lanes = shared.config.lanes,
        lanes_busy = metrics.lanes_busy.get() as u64,
        queue_depth = queue_depth,
        queue_cap = shared.config.queue_cap,
        active = metrics.active_requests.get() as u64,
        received = metrics.requests_received.get(),
        completed = metrics.requests_completed.get(),
        rejected = metrics.requests_rejected.get(),
        shed = metrics.requests_shed.get(),
        timed_out = metrics.requests_timed_out.get(),
        failed = metrics.requests_failed.get(),
        kernels = kernels,
        attempts = attempts,
        chars = generated_chars,
        rate = if attempts == 0 {
            0.0
        } else {
            kernels as f64 / attempts as f64
        },
        cps = generated_chars as f64 / elapsed,
        candidates = candidates_json,
        harness = harness_api::render_harness_stats(shared),
        rejections = rejected_json,
    )
}
