//! Chaos suite: deterministic fault injection against a live server over
//! real sockets (`faults` cargo feature).
//!
//! The invariant under test everywhere: a `/synthesize` response body is a
//! pure function of the checkpoint and the request parameters, so whatever
//! faults fire around (or into) a request, any response that *does* complete
//! — directly, after a supervisor respawn, or via client retries — is
//! byte-identical to the fault-free run's.
#![cfg(feature = "faults")]

use clgen::{ClgenBuilder, ClgenOptions, TrainedModel};
use clgen_serve::client::{self, RetryPolicy};
use clgen_serve::{
    json, FaultPlan, Server, ServerConfig, ServerHandle, ServiceHealth, SynthesisParams,
};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Train a tiny model and round-trip it through checkpoint bytes, as the
/// real service boots from one.
fn checkpointed_model(seed: u64) -> TrainedModel {
    let mut options = ClgenOptions::small(seed);
    options.corpus.miner.repositories = 40;
    let model = ClgenBuilder::with_options(options)
        .build_corpus()
        .expect("corpus builds")
        .train()
        .expect("training succeeds");
    TrainedModel::from_bytes(&model.to_bytes()).expect("checkpoint roundtrips")
}

const MODEL_SEED: u64 = 11;

fn chaos_config(faults: &str) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        lanes: 4,
        // Short supervisor window so degraded→ok recovery is observable
        // within a test run.
        restart_window: Duration::from_millis(1500),
        faults: FaultPlan::parse(faults).expect("fault plan parses"),
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> ServerHandle {
    Server::start(checkpointed_model(MODEL_SEED), config).expect("server starts")
}

fn params(seed: u64) -> SynthesisParams {
    SynthesisParams {
        count: 2,
        temperature: 0.8,
        max_chars: 256,
        seed,
        max_attempts: 24,
        deadline_ms: None,
    }
}

fn retry_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 5,
        base_delay: Duration::from_millis(20),
        max_delay: Duration::from_millis(250),
        jitter_seed: seed,
    }
}

/// Fault-free reference bodies, keyed by request seed, with trace
/// annotations stripped (trace ids and stage timings are per-request wall
/// clock; the sampled bytes are the invariant). One server serves all seeds
/// (responses are independent by construction — that invariant has its own
/// test in `serve_roundtrip.rs`).
fn baseline_bodies(seeds: &[u64]) -> BTreeMap<u64, String> {
    let handle = start(chaos_config(""));
    let addr = handle.addr();
    let bodies = seeds
        .iter()
        .map(|&seed| {
            let response = client::synthesize(addr, &params(seed)).expect("baseline request");
            assert_eq!(response.status, 200);
            assert!(response.is_complete_synthesis(), "baseline is clean");
            (seed, client::strip_traces(&response.text()))
        })
        .collect();
    assert_eq!(handle.shutdown(), ServiceHealth::Ok);
    bodies
}

fn healthz_status(addr: SocketAddr) -> String {
    let response = client::get(addr, "/healthz").expect("healthz");
    json::extract_str(&response.text(), "status").expect("healthz has status")
}

fn stats_field(addr: SocketAddr, key: &str) -> u64 {
    let response = client::get(addr, "/stats").expect("stats");
    json::extract_u64(&response.text(), key).unwrap_or_else(|| panic!("stats has {key}"))
}

/// A sampler-core panic mid-batch: in-flight requests get typed 500s, the
/// supervisor respawns the core from the checkpoint image, retries land on
/// the fresh core and reproduce byte-identical bodies, and `/healthz` walks
/// degraded → ok once the restart window passes.
#[test]
fn sampler_panic_respawns_and_retries_reproduce_bytes() {
    let seeds = [70u64, 71, 72];
    let baselines = baseline_bodies(&seeds);

    // Fire the panic a few step rounds into the first batch: whichever
    // requests are in flight get 500s and retry.
    let handle = start(chaos_config("sampler_panic@5"));
    let addr = handle.addr();
    let threads: Vec<_> = seeds
        .iter()
        .map(|&seed| {
            std::thread::spawn(move || {
                let response =
                    client::synthesize_with_retry(addr, &params(seed), &retry_policy(seed))
                        .expect("request eventually succeeds");
                (seed, response)
            })
        })
        .collect();
    for thread in threads {
        let (seed, response) = thread.join().expect("client thread");
        assert_eq!(response.status, 200, "seed {seed}");
        assert!(response.is_complete_synthesis(), "seed {seed}");
        assert_eq!(
            client::strip_traces(&response.text()),
            baselines[&seed],
            "seed {seed}: body after panic recovery differs from fault-free run"
        );
    }

    // The panic fired and was survived: degraded, with the restart counted.
    assert_eq!(healthz_status(addr), "degraded");
    assert_eq!(stats_field(addr, "restarts"), 1);
    assert!(stats_field(addr, "failed") >= 1, "in-flight jobs got 500s");

    // ... and the supervisor window passing takes the service back to ok.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if healthz_status(addr) == "ok" {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "healthz never transitioned degraded -> ok"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    assert_eq!(handle.shutdown(), ServiceHealth::Ok);
}

/// A checkpoint corruption on the first reload costs one extra restart: the
/// supervisor rejects the corrupt image, reloads pristine bytes, and the
/// service still recovers with byte-identical responses.
#[test]
fn corrupt_reload_burns_a_restart_then_recovers() {
    let seeds = [80u64];
    let baselines = baseline_bodies(&seeds);

    let mut config = chaos_config("sampler_panic@3,corrupt_reload@1,seed=9");
    // A wide window so the Degraded assertions below cannot race its expiry.
    config.restart_window = Duration::from_secs(60);
    let handle = start(config);
    let addr = handle.addr();
    let response = client::synthesize_with_retry(addr, &params(80), &retry_policy(80))
        .expect("request eventually succeeds");
    assert_eq!(client::strip_traces(&response.text()), baselines[&80]);

    // Two restarts: the panic respawn, plus the corrupt-image reload failure.
    assert_eq!(stats_field(addr, "restarts"), 2);
    assert_eq!(healthz_status(addr), "degraded");
    assert_eq!(handle.shutdown(), ServiceHealth::Degraded);
}

/// Slow client writes delay delivery but never change bytes.
#[test]
fn slow_writes_change_timing_not_bytes() {
    let seeds = [90u64, 91];
    let baselines = baseline_bodies(&seeds);

    let handle = start(chaos_config("slow_write@1+:15"));
    let addr = handle.addr();
    for &seed in &seeds {
        let response = client::synthesize(addr, &params(seed)).expect("request");
        assert_eq!(response.status, 200);
        assert_eq!(
            client::strip_traces(&response.text()),
            baselines[&seed],
            "seed {seed}"
        );
    }
    assert_eq!(healthz_status(addr), "ok");
    assert_eq!(handle.shutdown(), ServiceHealth::Ok);
}

/// A mid-body disconnect truncates one response; the retry reproduces the
/// full byte-identical body, and a concurrent untouched request is unharmed.
#[test]
fn dropped_response_is_recovered_by_retry() {
    let seeds = [100u64, 101];
    let baselines = baseline_bodies(&seeds);

    let handle = start(chaos_config("drop_response@1"));
    let addr = handle.addr();

    // First request eats the truncation and retries through it.
    let response = client::synthesize_with_retry(addr, &params(100), &retry_policy(100))
        .expect("retry recovers the dropped response");
    assert!(response.is_complete_synthesis());
    assert_eq!(client::strip_traces(&response.text()), baselines[&100]);

    // An untouched request afterwards is byte-identical with no retry at all.
    let untouched = client::synthesize(addr, &params(101)).expect("request");
    assert_eq!(client::strip_traces(&untouched.text()), baselines[&101]);
    assert_eq!(handle.shutdown(), ServiceHealth::Ok);
}

/// Deadlines bound a request mid-flight: with the core stalled once, a tight
/// `deadline_ms` yields a partial 200 carrying the `timeout` marker, while a
/// deadline-free concurrent request still completes byte-identically.
#[test]
fn deadline_reaps_midflight_and_leaves_survivors_untouched() {
    let seeds = [110u64];
    let baselines = baseline_bodies(&seeds);

    // One 400 ms stall on the first busy round: long enough that a 100 ms
    // deadline admitted during it reliably expires mid-flight, cheap enough
    // that the survivor finishes promptly afterwards.
    let handle = start(chaos_config("sampler_stall@1:400"));
    let addr = handle.addr();

    let survivor = std::thread::spawn(move || client::synthesize(addr, &params(110)));
    // Land the doomed request inside the survivor's first-round stall.
    std::thread::sleep(Duration::from_millis(50));

    let mut doomed = params(111);
    doomed.max_attempts = 1 << 14; // far more work than the deadline allows
    doomed.deadline_ms = Some(100);
    let partial = client::synthesize(addr, &doomed).expect("partial response");
    assert_eq!(partial.status, 200);
    let last = partial.lines().pop().expect("has a terminal line");
    assert!(
        last.contains("\"timeout\":true") && last.contains("\"done\":true"),
        "terminal line carries the timeout marker: {last}"
    );

    let survivor = survivor.join().expect("survivor thread").expect("request");
    assert_eq!(
        client::strip_traces(&survivor.text()),
        baselines[&110],
        "deadline reaping disturbed a surviving lane"
    );
    assert!(stats_field(addr, "timed_out") >= 1);
    assert_eq!(handle.shutdown(), ServiceHealth::Ok);
}

/// Queued jobs whose deadline already passed are shed with a fail-fast 503 +
/// `Retry-After` instead of wasting lanes.
#[test]
fn expired_queued_jobs_are_shed_with_503() {
    // One lane, so a single occupant pins the sole active slot and everyone
    // behind it waits in the backlog; the occupant itself is bounded by its
    // own deadline so the test ends promptly.
    let mut config = chaos_config("sampler_stall@1+:100");
    config.lanes = 1;
    let handle = start(config);
    let addr = handle.addr();

    let occupant = std::thread::spawn(move || {
        let mut p = params(120);
        p.max_attempts = 1 << 14;
        p.deadline_ms = Some(1500);
        client::synthesize(addr, &p)
    });
    std::thread::sleep(Duration::from_millis(200));

    // These can never activate before the occupant's 1.5 s deadline, so
    // their own 50 ms deadlines expire in the backlog.
    let mut sheds = 0;
    for seed in 121..125u64 {
        let mut doomed = params(seed);
        doomed.deadline_ms = Some(50);
        let response = client::synthesize(addr, &doomed).expect("shed response");
        assert_eq!(response.status, 503, "queued job must be shed");
        assert_eq!(response.retry_after(), Some(1), "shed 503 advertises retry");
        assert!(
            response.text().contains("deadline expired while queued"),
            "shed body: {}",
            response.text()
        );
        sheds += 1;
    }
    assert_eq!(stats_field(addr, "shed"), sheds);
    let occupant = occupant.join().expect("occupant thread").expect("request");
    assert!(occupant.text().contains("\"timeout\":true"));
    assert_eq!(handle.shutdown(), ServiceHealth::Ok);
}

/// Queue saturation: every rejection is a 503 with `Retry-After`, and
/// `rejected_503` counts each one exactly once.
#[test]
fn backpressure_rejections_count_exactly() {
    // One active slot, queue of one, and a single 500 ms stall pinning the
    // first request: a burst behind it must overflow.
    let mut config = chaos_config("sampler_stall@1:500");
    config.lanes = 1;
    config.queue_cap = 1;
    let handle = start(config);
    let addr = handle.addr();

    // Pin the core first so the burst below contends for one queue slot.
    let occupant = std::thread::spawn(move || client::synthesize(addr, &params(130)));
    std::thread::sleep(Duration::from_millis(100));

    let threads: Vec<_> = (131..138u64)
        .map(|seed| std::thread::spawn(move || client::synthesize(addr, &params(seed))))
        .collect();
    let mut rejected = 0u64;
    for thread in threads {
        let response = thread.join().expect("client thread").expect("response");
        match response.status {
            200 => assert!(response.is_complete_synthesis()),
            503 => {
                assert_eq!(response.retry_after(), Some(1));
                assert!(
                    response.text().contains("queue full"),
                    "{}",
                    response.text()
                );
                rejected += 1;
            }
            other => panic!("unexpected status {other}"),
        }
    }
    let occupant = occupant.join().expect("occupant thread").expect("request");
    assert!(occupant.is_complete_synthesis());
    assert!(rejected >= 1, "burst never overflowed the queue");
    assert_eq!(
        stats_field(addr, "rejected_503"),
        rejected,
        "rejected_503 must increment exactly once per 503"
    );
    assert_eq!(handle.shutdown(), ServiceHealth::Ok);
}

/// Graceful shutdown drains with a bound: a wedged in-flight request gets
/// `503 server stopping` once the drain deadline passes, and the server
/// still exits cleanly instead of waiting forever.
#[test]
fn drain_deadline_bounds_graceful_shutdown() {
    let mut config = chaos_config("sampler_stall@1+:200");
    config.drain_timeout = Some(Duration::from_millis(400));
    let handle = start(config);
    let addr = handle.addr();

    let wedged = std::thread::spawn(move || {
        let mut p = params(150);
        p.max_attempts = 1 << 14; // hours of stalled sampling
        client::synthesize(addr, &p)
    });
    std::thread::sleep(Duration::from_millis(300));

    let started = Instant::now();
    let response = client::post(addr, "/shutdown").expect("shutdown accepted");
    assert_eq!(response.status, 200);
    assert_eq!(handle.join(), ServiceHealth::Ok);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown must be bounded by the drain timeout"
    );
    let wedged = wedged.join().expect("wedged thread").expect("got a reply");
    assert!(
        wedged.status == 503 || wedged.text().contains("\"aborted\""),
        "wedged request must be failed by the drain deadline, got {} {}",
        wedged.status,
        wedged.text()
    );
}

/// A sampler-core panic leaves a forensic trail: the flight recorder ring
/// retains both the injected fault and the panic it caused, `/debug/flight`
/// serves the dump on demand (the same dump goes to stderr at panic time),
/// and requests that retry through the respawn stay byte-identical.
#[test]
fn sampler_panic_leaves_flight_recorder_trail() {
    let seeds = [160u64];
    let baselines = baseline_bodies(&seeds);

    let mut config = chaos_config("sampler_panic@3");
    config.debug_flight = true;
    let handle = start(config);
    let addr = handle.addr();

    let response = client::synthesize_with_retry(addr, &params(160), &retry_policy(160))
        .expect("request eventually succeeds");
    assert_eq!(
        client::strip_traces(&response.text()),
        baselines[&160],
        "body after panic recovery differs from fault-free run"
    );

    let flight = client::get(addr, "/debug/flight").expect("flight dump");
    assert_eq!(flight.status, 200);
    let text = flight.text();
    let header = text.lines().next().expect("dump header");
    assert!(header.starts_with("{\"event\":\"flight_dump\""), "{header}");
    assert!(header.contains("\"reason\":\"debug_endpoint\""), "{header}");
    assert!(
        text.lines().any(|l| l.contains("\"kind\":\"fault\"")),
        "ring retains the injected fault: {text}"
    );
    assert!(
        text.lines().any(|l| l.contains("\"kind\":\"panic\"")),
        "ring retains the panic: {text}"
    );
    handle.shutdown();
}

/// Exhausting the restart budget fails the service instead of crash-looping:
/// clients get typed errors, `join` reports `Failed`, and the server shuts
/// itself down (the binary then exits nonzero, but the *server* never
/// crashes the process).
#[test]
fn restart_budget_exhaustion_fails_closed() {
    let mut config = chaos_config("sampler_panic@1+");
    config.restart_budget = 1;
    let handle = start(config);
    let addr = handle.addr();

    // Every generation panics on its first step; the retrying client drives
    // restarts past the budget of 1.
    let outcome = client::synthesize_with_retry(addr, &params(140), &retry_policy(140));
    // An Err is fine too: connection refused once the server stopped.
    if let Ok(response) = outcome {
        assert_ne!(
            response.status, 200,
            "no request can complete under a permanent panic"
        );
    }

    assert_eq!(
        handle.join(),
        ServiceHealth::Failed,
        "supervisor must give up after the budget"
    );
}
