//! End-to-end tests for the harness endpoints over real sockets: `/drive`,
//! `/features`, `/pipeline`, their `/stats` counters, and the determinism
//! property — the `/pipeline` harness events are byte-identical to an
//! in-process harness run at any worker count.

use clgen::{ClgenBuilder, ClgenOptions, TrainedModel};
use clgen_harness::{Deadline, Harness, HarnessConfig};
use clgen_serve::{client, json, Server, ServerConfig};
use predictive::{Dataset, Example, MappingModel};
use std::sync::Arc;

const VECADD: &str =
    "__kernel void A(__global float* a, __global float* b, __global float* c, const int d) {
    int e = get_global_id(0);
    if (e < d) { c[e] = a[e] + b[e]; }
}";

const SPIN: &str = "__kernel void A(__global float* a, const int n) {
    int i = get_global_id(0);
    float acc = 0.0f;
    for (int r = 0; r < 100000000; r++) { acc += a[i % 16] * 0.5f; }
    a[i % 16] = acc;
}";

fn checkpointed_model(seed: u64) -> TrainedModel {
    let mut options = ClgenOptions::small(seed);
    options.corpus.miner.repositories = 40;
    ClgenBuilder::with_options(options)
        .build_corpus()
        .expect("corpus builds")
        .train()
        .expect("training succeeds")
}

fn toy_mapping_model() -> Arc<MappingModel> {
    let mut d = Dataset::new();
    for i in 0..16 {
        let f1 = (i + 1) as f64 * 100.0;
        let gpu_better = f1 > 800.0;
        d.push(Example {
            features: vec![f1, 0.0, 0.0, 1.0],
            benchmark: format!("b{}", i / 2),
            suite: "S".into(),
            id: format!("b{i}"),
            cpu_time: if gpu_better { 10.0 } else { 1.0 },
            gpu_time: if gpu_better { 1.0 } else { 10.0 },
        });
    }
    Arc::new(MappingModel::train(&d))
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        lanes: 4,
        harness: HarnessConfig::quick(),
        mapping_model: Some(toy_mapping_model()),
        ..ServerConfig::default()
    }
}

fn event_lines(body: &str) -> Vec<String> {
    body.lines()
        .filter(|l| l.starts_with("{\"event\":"))
        .map(str::to_string)
        .collect()
}

#[test]
fn drive_streams_run_events_and_summary() {
    let handle = Server::start(checkpointed_model(41), test_config()).expect("server starts");
    let addr = handle.addr();

    let response = client::post_body(
        addr,
        "/drive?sizes=256,1024&drive_seed=7",
        VECADD.as_bytes(),
    )
    .expect("drive");
    assert_eq!(response.status, 200, "{}", response.text());
    let lines = response.lines();
    let runs: Vec<&String> = lines
        .iter()
        .filter(|l| l.starts_with("{\"event\":\"run\""))
        .collect();
    assert_eq!(runs.len(), 2, "one run per size: {lines:?}");
    assert!(runs[0].contains("\"global_size\":256"));
    assert!(runs[1].contains("\"global_size\":1024"));
    let done = lines.last().expect("summary line");
    assert!(done.starts_with("{\"done\":true"), "{done}");
    assert_eq!(json::extract_u64(done, "units"), Some(2));
    assert_eq!(json::extract_u64(done, "ok"), Some(2));

    // Identical request → byte-identical response body (fixed seed).
    let again = client::post_body(
        addr,
        "/drive?sizes=256,1024&drive_seed=7",
        VECADD.as_bytes(),
    )
    .expect("drive again");
    // Trace annotations carry wall-clock timings; everything else is
    // byte-identical.
    assert_eq!(
        client::strip_traces(&response.text()),
        client::strip_traces(&again.text())
    );
    handle.shutdown();
}

#[test]
fn features_streams_vectors_with_requested_dimensionality() {
    let handle = Server::start(checkpointed_model(42), test_config()).expect("server starts");
    let addr = handle.addr();

    for (feature_set, dims) in [("grewe", 4), ("extended", 11)] {
        let target = format!("/features?sizes=512&feature_set={feature_set}");
        let response = client::post_body(addr, &target, VECADD.as_bytes()).expect("features");
        assert_eq!(response.status, 200, "{}", response.text());
        let lines = response.lines();
        let features: Vec<&String> = lines
            .iter()
            .filter(|l| l.starts_with("{\"event\":\"features\""))
            .collect();
        assert_eq!(features.len(), 1, "{lines:?}");
        let vector = features[0]
            .split("\"features\":[")
            .nth(1)
            .and_then(|r| r.split(']').next())
            .expect("vector payload");
        assert_eq!(
            vector.split(',').count(),
            dims,
            "{feature_set} dimensionality: {vector}"
        );
    }
    handle.shutdown();
}

#[test]
fn hostile_kernels_become_typed_unit_errors_not_outages() {
    let mut config = test_config();
    // A tight launch-wide budget so the spin kernel dies fast.
    config.harness.driver.total_step_budget = 10_000;
    let handle = Server::start(checkpointed_model(43), config).expect("server starts");
    let addr = handle.addr();

    let response = client::post_body(addr, "/drive?sizes=256", SPIN.as_bytes()).expect("drive");
    assert_eq!(response.status, 200, "{}", response.text());
    assert!(
        response
            .lines()
            .iter()
            .any(|l| l.contains("\"error\":\"budget_exceeded\"")),
        "{}",
        response.text()
    );
    let done = response.lines().last().cloned().expect("summary");
    assert_eq!(json::extract_u64(&done, "budget_killed"), Some(1));

    // The failure was contained: health stays ok and the next drive works.
    let health = client::get(addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"status\":\"ok\""));
    let next = client::post_body(addr, "/drive?sizes=64", VECADD.as_bytes()).expect("drive");
    assert_eq!(next.status, 200);

    // Source-level failures are typed HTTP errors, not stream corruption.
    let garbage = client::post_body(addr, "/drive", b"not opencl ((((").expect("drive");
    assert_eq!(garbage.status, 422, "{}", garbage.text());
    let empty = client::post_body(addr, "/drive", b"").expect("drive");
    assert_eq!(empty.status, 400);
    let bad_param = client::post_body(addr, "/drive?sizes=0", VECADD.as_bytes()).expect("drive");
    assert_eq!(bad_param.status, 400);
    let wrong_method = client::get(addr, "/drive").expect("get");
    assert_eq!(wrong_method.status, 405);
    handle.shutdown();
}

#[test]
fn pipeline_chains_synthesis_into_harness_per_kernel() {
    let handle = Server::start(checkpointed_model(44), test_config()).expect("server starts");
    let addr = handle.addr();

    let response = client::post(
        addr,
        "/pipeline?count=2&seed=5&max_attempts=512&sizes=256,1024&drive_seed=9",
    )
    .expect("pipeline");
    assert_eq!(response.status, 200, "{}", response.text());
    let lines = response.lines();
    assert!(
        lines
            .last()
            .is_some_and(|l| l.starts_with("{\"done\":true")),
        "terminal synthesis summary: {lines:?}"
    );

    // Every kernel line is followed by its harness events before the next
    // kernel line: run/unit_error lines first, then features, then
    // predictions (the model is attached, so successful units predict).
    let kernel_count = lines
        .iter()
        .filter(|l| l.starts_with("{\"kernel\":"))
        .count();
    assert!(kernel_count >= 1, "synthesis produced kernels: {lines:?}");
    let mut saw_harness_events = 0;
    for window in lines.split(|l| l.starts_with("{\"kernel\":")).skip(1) {
        let events: Vec<&String> = window
            .iter()
            .filter(|l| l.starts_with("{\"event\":"))
            .collect();
        assert!(!events.is_empty(), "kernel without harness events");
        saw_harness_events += events.len();
        // Stage order within a kernel's block.
        let stage = |l: &str| {
            if l.contains("\"event\":\"run\"") || l.contains("\"event\":\"unit_error\"") {
                0
            } else if l.contains("\"event\":\"features\"") {
                1
            } else {
                2
            }
        };
        let stages: Vec<i32> = events.iter().map(|l| stage(l)).collect();
        let mut sorted = stages.clone();
        sorted.sort_unstable();
        assert_eq!(stages, sorted, "stages are ordered: {events:?}");
    }
    assert!(saw_harness_events > 0);

    // Stats mirror the harness activity.
    let stats = client::get(addr, "/stats").expect("stats").text();
    assert!(
        json::extract_u64(&stats, "kernels_driven").is_some_and(|n| n >= kernel_count as u64),
        "{stats}"
    );
    assert!(stats.contains("\"model\":true"), "{stats}");
    handle.shutdown();
}

/// The determinism property the tentpole promises: for a fixed seed, the
/// harness events `/pipeline` streams are byte-identical to an in-process
/// harness run — at one worker and at many.
#[test]
fn pipeline_harness_events_match_in_process_at_any_worker_count() {
    let config = test_config();
    let harness_config = config.harness.clone();
    let model = config.mapping_model.clone();
    let handle = Server::start(checkpointed_model(45), config).expect("server starts");
    let addr = handle.addr();

    let target = "/pipeline?count=2&seed=17&max_attempts=512";
    let first = client::post(addr, target).expect("pipeline");
    assert_eq!(first.status, 200, "{}", first.text());
    let second = client::post(addr, target).expect("pipeline repeat");
    assert_eq!(
        client::strip_traces(&first.text()),
        client::strip_traces(&second.text()),
        "repeat request is byte-identical modulo trace timings"
    );

    let lines = first.lines();
    let sources: Vec<String> = lines
        .iter()
        .filter(|l| l.starts_with("{\"kernel\":"))
        .map(|l| json::extract_str(l, "kernel").expect("kernel source"))
        .collect();
    assert!(!sources.is_empty());
    let served = event_lines(&client::strip_traces(&first.text()));

    let harness = Harness::new(harness_config, model);
    for workers in [1, 4] {
        let local: Vec<String> = rayon::with_num_threads(workers, || {
            sources
                .iter()
                .flat_map(|s| {
                    harness
                        .drive_source(s, &Deadline::none())
                        .expect("synthesized kernels drive")
                        .ndjson()
                })
                .collect()
        });
        assert_eq!(
            served, local,
            "served events match in-process at {workers} workers"
        );
    }
    handle.shutdown();
}
