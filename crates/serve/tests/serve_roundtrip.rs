//! End-to-end service tests over real sockets: round trips, the
//! arrival-order-independence determinism guarantee, backpressure and
//! graceful shutdown.

use clgen::{ClgenBuilder, ClgenOptions, TrainedModel};
use clgen_serve::{client, json, Server, ServerConfig, SynthesisParams};

/// Train a tiny n-gram model and round-trip it through a checkpoint file,
/// as the real service boots from one.
fn checkpointed_model(seed: u64) -> TrainedModel {
    let mut options = ClgenOptions::small(seed);
    options.corpus.miner.repositories = 40;
    let model = ClgenBuilder::with_options(options)
        .build_corpus()
        .expect("corpus builds")
        .train()
        .expect("training succeeds");
    let path = std::env::temp_dir().join(format!(
        "clgen-serve-test-{}-{seed}.ckpt",
        std::process::id()
    ));
    model.save(&path).expect("checkpoint saves");
    let loaded = TrainedModel::load(&path).expect("checkpoint loads");
    std::fs::remove_file(&path).ok();
    loaded
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        lanes: 4,
        ..ServerConfig::default()
    }
}

fn params(seed: u64, count: usize, max_attempts: usize) -> SynthesisParams {
    SynthesisParams {
        count,
        temperature: 0.8,
        max_chars: 384,
        seed,
        max_attempts,
        deadline_ms: None,
    }
}

/// The body must end with exactly one `done` summary line whose totals are
/// consistent with the kernel lines before it.
fn check_body_shape(body: &str) {
    let lines: Vec<&str> = body.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty(), "body has no lines: {body:?}");
    let (kernels, done) = lines.split_at(lines.len() - 1);
    assert!(
        done[0].starts_with("{\"done\":true"),
        "last line is the summary: {:?}",
        done[0]
    );
    assert_eq!(
        json::extract_u64(done[0], "kernels"),
        Some(kernels.len() as u64),
        "summary counts the kernel lines"
    );
    let window_attempts: u64 = kernels
        .iter()
        .map(|l| json::extract_u64(l, "attempts").expect("kernel line has attempts"))
        .sum();
    let total_attempts = json::extract_u64(done[0], "attempts").expect("summary attempts");
    assert!(window_attempts <= total_attempts);
    for line in kernels {
        let source = json::extract_str(line, "kernel").expect("kernel line has source");
        assert!(source.contains("__kernel"), "kernel source: {source:?}");
    }
}

#[test]
fn synthesize_healthz_stats_roundtrip() {
    let handle = Server::start(checkpointed_model(2026), test_config()).expect("server starts");
    let addr = handle.addr();

    let health = client::get(addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"status\":\"ok\""));
    assert!(health.text().contains("\"backend\":\"ngram\""));

    let reply = client::synthesize(addr, &params(7, 2, 192)).expect("synthesize");
    assert_eq!(reply.status, 200);
    check_body_shape(&reply.text());

    let stats = client::get(addr, "/stats").expect("stats");
    assert_eq!(stats.status, 200);
    let text = stats.text();
    let attempts = json::extract_u64(&text, "attempts").expect("stats attempts");
    assert!(attempts >= 1, "stats account absorbed candidates: {text}");
    assert!(json::extract_u64(&text, "completed") >= Some(1));

    // Unknown paths and wrong methods are typed HTTP errors.
    assert_eq!(client::get(addr, "/nope").expect("404").status, 404);
    assert_eq!(client::get(addr, "/synthesize").expect("405").status, 405);
    assert_eq!(client::post(addr, "/stats").expect("405").status, 405);
    assert_eq!(
        client::post(addr, "/synthesize?count=0")
            .expect("400")
            .status,
        400
    );
    assert_eq!(
        client::post(addr, "/synthesize?temperature=hot")
            .expect("400")
            .status,
        400
    );

    handle.shutdown();
}

/// The determinism guarantee across the scheduler: same checkpoint + same
/// per-request seeds ⇒ byte-identical response bodies, regardless of
/// request arrival order or what else shares the batch.
#[test]
fn responses_are_byte_identical_regardless_of_arrival_order() {
    let handle = Server::start(checkpointed_model(4242), test_config()).expect("server starts");
    let addr = handle.addr();
    let sets = [params(11, 2, 96), params(22, 1, 64), params(33, 3, 96)];

    // Round 1: strictly sequential, in order.
    let sequential: Vec<String> = sets
        .iter()
        .map(|p| {
            let reply = client::synthesize(addr, p).expect("synthesize");
            assert_eq!(reply.status, 200);
            reply.text()
        })
        .collect();

    // Round 2: concurrent, submitted in reverse order, deliberately
    // staggered so admissions interleave mid-flight.
    let concurrent: Vec<String> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, p) in sets.iter().enumerate().rev() {
            let p = p.clone();
            let stagger = std::time::Duration::from_millis((sets.len() - 1 - i) as u64 * 5);
            handles.push((
                i,
                scope.spawn(move || {
                    std::thread::sleep(stagger);
                    client::synthesize(addr, &p).expect("synthesize").text()
                }),
            ));
        }
        let mut bodies = vec![String::new(); sets.len()];
        for (i, h) in handles {
            bodies[i] = h.join().expect("client thread");
        }
        bodies
    });

    // Trace annotations carry per-request ids and wall-clock timings; the
    // sampled bytes themselves must match exactly.
    for (i, (a, b)) in sequential.iter().zip(concurrent.iter()).enumerate() {
        assert_eq!(
            client::strip_traces(a),
            client::strip_traces(b),
            "request {i} body diverged between sequential and concurrent arrival"
        );
        check_body_shape(a);
    }

    // Round 3: a fresh server boot over the same checkpoint reproduces the
    // same bodies.
    let handle2 = Server::start(checkpointed_model(4242), test_config()).expect("second boot");
    let addr2 = handle2.addr();
    for (p, expected) in sets.iter().zip(sequential.iter()) {
        let reply = client::synthesize(addr2, p).expect("synthesize");
        assert_eq!(
            client::strip_traces(&reply.text()),
            client::strip_traces(expected),
            "fresh boot diverged"
        );
    }
    handle2.shutdown();
    handle.shutdown();
}

#[test]
fn full_queue_answers_503_with_retry_after() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        lanes: 2,
        queue_cap: 0,
        ..ServerConfig::default()
    };
    let handle = Server::start(checkpointed_model(99), config).expect("server starts");
    let addr = handle.addr();

    let reply = client::synthesize(addr, &params(1, 1, 8)).expect("request");
    assert_eq!(reply.status, 503);
    assert!(reply.text().contains("queue full"));
    assert!(reply
        .headers
        .iter()
        .any(|(k, v)| k == "retry-after" && v == "1"));

    // Health endpoints stay reachable under backpressure, and the rejection
    // is visible in /stats.
    assert_eq!(client::get(addr, "/healthz").expect("healthz").status, 200);
    let stats = client::get(addr, "/stats").expect("stats").text();
    assert_eq!(json::extract_u64(&stats, "rejected_503"), Some(1));

    handle.shutdown();
}

/// A client that disconnects without reading its response must not keep its
/// request sampling on the shared lanes: the handler's EOF probe flags the
/// request and the sampler core reaps it long before its attempt cap.
#[test]
fn disconnected_clients_are_reaped_quickly() {
    use std::io::Write;

    let handle = Server::start(checkpointed_model(777), test_config()).expect("server starts");
    let addr = handle.addr();

    // A request sized to run for minutes if it were allowed to finish
    // (2^20 candidates x 4096 chars), sent by a client that vanishes at
    // once.
    {
        let mut socket = std::net::TcpStream::connect(addr).expect("connect");
        write!(
            socket,
            "POST /synthesize?count=1&max_attempts=1048576&max_chars=4096&seed=9 HTTP/1.1\r\n\
             Host: x\r\nConnection: close\r\n\r\n"
        )
        .expect("send request");
        socket.flush().expect("flush");
        // Dropping the socket closes it: the client is gone.
    }

    // The abandoned request must be fully reaped (completed, no active
    // requests, only a handful of candidates absorbed) well within the
    // probe interval plus a few sampling rounds.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(15);
    loop {
        let stats = client::get(addr, "/stats").expect("stats").text();
        if json::extract_u64(&stats, "completed") == Some(1)
            && json::extract_u64(&stats, "active_requests") == Some(0)
        {
            let attempts = json::extract_u64(&stats, "attempts").expect("attempts");
            assert!(
                attempts < 1000,
                "abandoned request should stop early, absorbed {attempts} candidates"
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "abandoned request was not reaped in time: {stats}"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    handle.shutdown();
}

#[test]
fn post_shutdown_stops_the_server_gracefully() {
    let handle = Server::start(checkpointed_model(1234), test_config()).expect("server starts");
    let addr = handle.addr();

    // A request in flight when shutdown arrives still completes. Wait until
    // the server has actually accepted it before triggering shutdown.
    let p = params(5, 1, 64);
    let worker = std::thread::spawn(move || client::synthesize(addr, &p).expect("synthesize"));
    for _ in 0..200 {
        let stats = client::get(addr, "/stats").expect("stats").text();
        if clgen_serve::json::extract_u64(&stats, "received") >= Some(1) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let reply = client::post(addr, "/shutdown").expect("shutdown request");
    assert_eq!(reply.status, 200);

    // join() returns once the graceful sequence finishes.
    handle.join();
    let inflight = worker.join().expect("client thread");
    assert_eq!(inflight.status, 200);
    check_body_shape(&inflight.text());

    // The listener is gone afterwards.
    assert!(client::get(addr, "/healthz").is_err());
}
