//! Integration tests for the observability surface: the Prometheus `/metrics`
//! exposition, its agreement with `/stats`, the per-request trace objects on
//! NDJSON `done` lines, client `trace-id` passthrough, and the CLI-gated
//! `/debug/flight` dump.

use clgen::{ClgenBuilder, ClgenOptions, TrainedModel};
use clgen_harness::HarnessConfig;
use clgen_serve::{client, json, Server, ServerConfig, SynthesisParams};
use std::io::Write;
use std::net::SocketAddr;

const VECADD: &str =
    "__kernel void A(__global float* a, __global float* b, __global float* c, const int d) {
    int e = get_global_id(0);
    if (e < d) { c[e] = a[e] + b[e]; }
}";

fn checkpointed_model(seed: u64) -> TrainedModel {
    let mut options = ClgenOptions::small(seed);
    options.corpus.miner.repositories = 40;
    ClgenBuilder::with_options(options)
        .build_corpus()
        .expect("corpus builds")
        .train()
        .expect("training succeeds")
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        lanes: 4,
        harness: HarnessConfig::quick(),
        ..ServerConfig::default()
    }
}

fn params(seed: u64) -> SynthesisParams {
    SynthesisParams {
        count: 1,
        temperature: 0.8,
        max_chars: 256,
        seed,
        max_attempts: 64,
        deadline_ms: None,
    }
}

/// Assert `body` is well-formed Prometheus text exposition, line by line:
/// only `# HELP`/`# TYPE` comments and `name{labels} value` samples.
fn check_exposition(body: &str) {
    assert!(!body.is_empty(), "exposition is empty");
    for line in body.lines() {
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        let (metric, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line has no value: {line:?}"));
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("unparseable sample value: {line:?}"));
        let name = metric.split('{').next().expect("metric name");
        assert!(
            !name.is_empty()
                && name
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':'),
            "bad metric name: {line:?}"
        );
        if metric.contains('{') {
            assert!(metric.ends_with('}'), "unterminated labels: {line:?}");
        }
    }
}

/// The value of an exposition sample whose line starts with `prefix`.
fn sample_value(body: &str, prefix: &str) -> Option<f64> {
    body.lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
}

/// `/metrics` after mixed traffic: the exposition parses line by line,
/// covers the serving and harness families the README catalogs, and its
/// counters agree exactly with `/stats` (they render from the same atomics).
#[test]
fn metrics_exposition_parses_and_agrees_with_stats() {
    let handle = Server::start(checkpointed_model(61), test_config()).expect("server starts");
    let addr = handle.addr();

    // Mixed traffic: synthesis, a harness drive, and a full pipeline.
    let reply = client::synthesize(addr, &params(5)).expect("synthesize");
    assert_eq!(reply.status, 200);
    let drive =
        client::post_body(addr, "/drive?sizes=256&drive_seed=3", VECADD.as_bytes()).expect("drive");
    assert_eq!(drive.status, 200);
    let pipeline = client::post(addr, "/pipeline?count=1&seed=6&max_attempts=256&sizes=256")
        .expect("pipeline");
    assert_eq!(pipeline.status, 200);

    let response = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(response.status, 200);
    assert!(
        response
            .headers
            .iter()
            .any(|(k, v)| k == "content-type" && v.contains("version=0.0.4")),
        "exposition content type: {:?}",
        response.headers
    );
    let body = response.text();
    check_exposition(&body);

    for family in [
        "clgen_requests_received_total",
        "clgen_requests_completed_total",
        "clgen_request_latency_us_bucket",
        "clgen_request_latency_us_count",
        "clgen_queue_depth",
        "clgen_lanes_busy",
        "clgen_lane_occupancy_count",
        "clgen_queue_wait_us_bucket",
        "clgen_sampling_kernels_total",
        "clgen_generated_chars_total",
        "clgen_filter_accepted_total",
        "clgen_candidates_total",
        "clgen_harness_units_total",
        "clgen_harness_kernels_driven_total",
        "clgen_harness_unit_run_us_count",
        "clgen_supervisor_restarts_total",
    ] {
        assert!(
            body.lines().any(|l| l.starts_with(family)),
            "family {family} missing from exposition:\n{body}"
        );
    }

    // Latency histograms are labeled per endpoint/outcome.
    for endpoint in ["synthesize", "drive", "pipeline"] {
        assert!(
            body.contains(&format!("endpoint=\"{endpoint}\",outcome=\"ok\"")),
            "latency series for {endpoint} missing:\n{body}"
        );
    }
    assert!(
        sample_value(&body, "clgen_harness_units_total{outcome=\"ok\"}").is_some_and(|v| v >= 2.0),
        "drive + pipeline units recorded:\n{body}"
    );

    // /stats and /metrics are two views of one set of atomics.
    let stats = client::get(addr, "/stats").expect("stats").text();
    for (stats_key, metric) in [
        ("received", "clgen_requests_received_total "),
        ("completed", "clgen_requests_completed_total "),
        ("attempts", "clgen_sampling_attempts_total "),
        ("kernels_driven", "clgen_harness_kernels_driven_total "),
    ] {
        let from_stats = json::extract_u64(&stats, stats_key)
            .unwrap_or_else(|| panic!("stats has {stats_key}: {stats}"));
        let from_metrics = sample_value(&body, metric)
            .unwrap_or_else(|| panic!("exposition has {metric}: {body}"));
        assert_eq!(
            from_stats, from_metrics as u64,
            "{stats_key} disagrees between /stats and /metrics"
        );
    }

    // The candidate-outcome family is complete (all four outcomes present,
    // pre-registered at zero), mutually exclusive, and sums to the absorbed
    // attempts; each labeled sample agrees with the `candidates` object in
    // `/stats`.
    let mut outcome_sum = 0u64;
    for outcome in ["accepted", "repaired", "aborted_midstream", "rejected"] {
        let metric = format!("clgen_candidates_total{{outcome=\"{outcome}\"}}");
        let from_metrics = sample_value(&body, &metric)
            .unwrap_or_else(|| panic!("exposition has {metric}:\n{body}"))
            as u64;
        let candidates_obj = stats
            .split("\"candidates\":")
            .nth(1)
            .expect("stats has a candidates object");
        let from_stats = json::extract_u64(candidates_obj, outcome)
            .unwrap_or_else(|| panic!("stats candidates has {outcome}: {stats}"));
        assert_eq!(
            from_stats, from_metrics,
            "candidates.{outcome} disagrees between /stats and /metrics"
        );
        outcome_sum += from_metrics;
    }
    let attempts = sample_value(&body, "clgen_sampling_attempts_total ").expect("attempts") as u64;
    assert_eq!(
        outcome_sum, attempts,
        "candidate outcomes must partition the absorbed attempts"
    );

    // Per-reason filter rejections: every labeled sample of the
    // `clgen_filter_rejects_total{reason}` family equals its entry in the
    // `/stats` rejected breakdown, and the family total matches
    // rejected + aborted outcomes.
    let rejections_obj = stats
        .split("\"rejections\":")
        .nth(1)
        .expect("stats has a rejections object");
    let mut reject_sum = 0u64;
    for line in body
        .lines()
        .filter(|l| l.starts_with("clgen_filter_rejects_total{"))
    {
        let reason = line
            .split("reason=\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("labeled rejection sample");
        let value = line
            .rsplit_once(' ')
            .and_then(|(_, v)| v.parse::<f64>().ok())
            .expect("sample value") as u64;
        let from_stats = json::extract_u64(rejections_obj, reason)
            .unwrap_or_else(|| panic!("stats rejections has {reason:?}: {stats}"));
        assert_eq!(
            from_stats, value,
            "rejects[{reason}] disagrees between /stats and /metrics"
        );
        reject_sum += value;
    }
    let aborted = sample_value(
        &body,
        "clgen_candidates_total{outcome=\"aborted_midstream\"}",
    )
    .unwrap_or(0.0);
    let rejected_outcome =
        sample_value(&body, "clgen_candidates_total{outcome=\"rejected\"}").unwrap_or(0.0);
    assert_eq!(
        reject_sum,
        (aborted + rejected_outcome) as u64,
        "per-reason rejects must sum to the rejected + aborted outcomes"
    );
    handle.shutdown();
}

/// Every NDJSON `done` line carries an additive `trace` object with staged
/// durations, and repeated identical requests get distinct derived ids (the
/// process ordinal advances) while the sampled bytes stay identical.
#[test]
fn done_lines_carry_trace_objects() {
    let handle = Server::start(checkpointed_model(62), test_config()).expect("server starts");
    let addr = handle.addr();

    let first = client::synthesize(addr, &params(9)).expect("synthesize");
    let done = first.lines().pop().expect("done line");
    assert!(done.contains("\"trace\":{\"id\":\""), "{done}");
    for stage in ["\"queued\":", "\"sampling\":", "\"respond\":"] {
        assert!(done.contains(stage), "trace stage missing from {done}");
    }
    let id = trace_id_of(&done);
    assert_eq!(id.len(), 16, "derived ids are 16 hex digits: {id}");
    assert!(id.bytes().all(|b| b.is_ascii_hexdigit()), "{id}");

    // Repeat: distinct trace id, identical bytes otherwise.
    let second = client::synthesize(addr, &params(9)).expect("synthesize repeat");
    let done2 = second.lines().pop().expect("done line");
    assert_ne!(
        id,
        trace_id_of(&done2),
        "repeated requests must get distinct derived ids"
    );
    assert_eq!(
        client::strip_traces(&first.text()),
        client::strip_traces(&second.text())
    );

    // Harness endpoints: stage events carry the trace id, the summary the
    // full trace object with the drive/features stages.
    let drive =
        client::post_body(addr, "/drive?sizes=256&drive_seed=2", VECADD.as_bytes()).expect("drive");
    let lines = drive.lines();
    let drive_done = lines.last().expect("summary");
    assert!(drive_done.contains("\"trace\":{\"id\":\""), "{drive_done}");
    assert!(drive_done.contains("\"drive\":"), "{drive_done}");
    let drive_id = trace_id_of(drive_done);
    for line in lines.iter().filter(|l| l.starts_with("{\"event\":")) {
        assert!(
            line.contains(&format!("\"trace_id\":\"{drive_id}\"")),
            "stage event missing the request's trace id: {line}"
        );
    }
    handle.shutdown();
}

fn trace_id_of(done: &str) -> String {
    done.split("\"trace\":{\"id\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("done line has a trace id")
        .to_string()
}

/// A syntactically valid client `trace-id` header is echoed as the trace id;
/// an invalid one falls back to a derived id.
#[test]
fn client_trace_id_header_passes_through() {
    let handle = Server::start(checkpointed_model(63), test_config()).expect("server starts");
    let addr = handle.addr();

    let body = synthesize_with_trace_header(addr, "my-trace_A7");
    assert!(
        body.contains("\"trace\":{\"id\":\"my-trace_A7\""),
        "client id not echoed: {body}"
    );

    // 65 chars exceeds the id length cap: rejected, derived id used instead.
    let long = "x".repeat(65);
    let body = synthesize_with_trace_header(addr, &long);
    assert!(!body.contains(&long), "oversized id must not pass through");
    assert!(body.contains("\"trace\":{\"id\":\""), "{body}");
    handle.shutdown();
}

/// One `/synthesize` request carrying a `trace-id` header (the stock client
/// doesn't set extra headers), returning the raw response text.
fn synthesize_with_trace_header(addr: SocketAddr, trace_id: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST /synthesize?count=1&max_attempts=64&max_chars=256&seed=4 HTTP/1.1\r\n\
         Host: {addr}\r\ntrace-id: {trace_id}\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    stream.flush().expect("flush");
    let mut raw = Vec::new();
    std::io::Read::read_to_end(&mut stream, &mut raw).expect("read response");
    String::from_utf8_lossy(&raw).into_owned()
}

/// `/debug/flight` is 404 unless enabled; enabled, it serves the ring dump
/// with admissions recorded.
#[test]
fn debug_flight_endpoint_is_gated() {
    let handle = Server::start(checkpointed_model(64), test_config()).expect("server starts");
    let addr = handle.addr();
    let off = client::get(addr, "/debug/flight").expect("flight");
    assert_eq!(off.status, 404);
    assert!(off.text().contains("--debug-flight"), "{}", off.text());
    handle.shutdown();

    let mut config = test_config();
    config.debug_flight = true;
    let handle = Server::start(checkpointed_model(64), config).expect("server starts");
    let addr = handle.addr();
    let reply = client::synthesize(addr, &params(3)).expect("synthesize");
    assert_eq!(reply.status, 200);
    let on = client::get(addr, "/debug/flight").expect("flight");
    assert_eq!(on.status, 200);
    let text = on.text();
    assert!(
        text.starts_with("{\"event\":\"flight_dump\",\"reason\":\"debug_endpoint\""),
        "{text}"
    );
    assert!(
        text.lines().any(|l| l.contains("\"kind\":\"admit\"")),
        "ring records admissions: {text}"
    );
    handle.shutdown();
}
