//! # clgen-harness
//!
//! The batched drive-and-predict pipeline that closes the paper's loop:
//! accepted kernels go in, `KernelRun` records, Grewe feature vectors and
//! CPU/GPU mapping predictions come out. This is the serving-side counterpart
//! of the offline experiment binaries — `cldrive`, `grewe-features` and
//! `predictive` composed into one subsystem that `clgen-serve` exposes as
//! `POST /drive`, `POST /features` and `POST /pipeline`.
//!
//! # Work units and isolation
//!
//! A kernel source is compiled **once**; every (kernel function × payload
//! size) pair then becomes an independent work unit fanned across the rayon
//! worker pool. Each unit runs under a bounded [`cldrive::ExecLimits`] budget
//! (see [`DriverOptions::total_step_budget`]) and inside `catch_unwind`, so a
//! hostile kernel that panics the interpreter or burns its budget becomes a
//! typed [`UnitError`] on that unit alone — sibling units, the worker pool
//! and the caller are unaffected.
//!
//! # Determinism
//!
//! For a fixed (source, sizes, seed) the report — and its NDJSON rendering —
//! is **byte-identical at any worker count**. Units are pure functions of
//! their inputs and the fan-out preserves input order, mirroring the
//! thread-invariance guarantee of the numeric core. The only intentional
//! exception is an expired [`Deadline`], which cuts units short.
//!
//! ```
//! use clgen_harness::{Harness, HarnessConfig};
//!
//! let harness = Harness::new(HarnessConfig::quick(), None);
//! let report = harness
//!     .drive_source(
//!         "__kernel void A(__global float* a, const int n) {
//!              int i = get_global_id(0);
//!              if (i < n) { a[i] = a[i] * 2.0f; }
//!          }",
//!         &clgen_harness::Deadline::none(),
//!     )
//!     .unwrap();
//! assert_eq!(report.units.len(), harness.config().sizes.len());
//! assert!(report.counters().units_ok > 0);
//! ```

#![warn(missing_docs)]

use cl_frontend::analysis::{analyze_function, StaticCounts};
use cl_frontend::ast::TranslationUnit;
use cl_frontend::sema::KernelSignature;
use cl_frontend::{compile, CompileOptions};
use cldrive::{DriveError, DriverOptions, ExecError, HostDriver, KernelRun, Platform};
use grewe_features::{FeatureSet, GreweFeatures, StaticFeatures};
use predictive::{MappingModel, CLASS_CPU};
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Default launch-wide interpreter step budget per work unit.
pub const DEFAULT_UNIT_STEP_BUDGET: u64 = 16_000_000;

/// Default payload sizes driven per kernel when the caller does not specify
/// any (small / medium / large, exercising both sides of the CPU–GPU divide).
pub const DEFAULT_SIZES: &[usize] = &[256, 4096, 65536];

/// An optional wall-clock cutoff shared by every unit of a drive call.
#[derive(Debug, Clone, Copy, Default)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline: units always run to completion (fully deterministic).
    pub fn none() -> Deadline {
        Deadline { at: None }
    }

    /// Cut off units that have not *started* by `at`.
    pub fn at(at: Instant) -> Deadline {
        Deadline { at: Some(at) }
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }
}

/// Harness configuration: which platform to estimate for, how to drive, which
/// payload sizes to fan out, and which feature representation to extract.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// The CPU/GPU pairing runtimes are estimated for.
    pub platform: Platform,
    /// Driver options (seed, profiling caps, per-unit step budget).
    pub driver: DriverOptions,
    /// Payload (global) sizes driven for every kernel function.
    pub sizes: Vec<usize>,
    /// Feature representation extracted per successful unit.
    pub feature_set: FeatureSet,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            platform: Platform::amd(),
            driver: DriverOptions {
                total_step_budget: DEFAULT_UNIT_STEP_BUDGET,
                ..DriverOptions::default()
            },
            sizes: DEFAULT_SIZES.to_vec(),
            feature_set: FeatureSet::Grewe,
        }
    }
}

impl HarnessConfig {
    /// A fast configuration for tests and smoke runs (no checker, small
    /// profiling caps).
    pub fn quick() -> HarnessConfig {
        HarnessConfig {
            platform: Platform::amd(),
            driver: DriverOptions {
                total_step_budget: DEFAULT_UNIT_STEP_BUDGET,
                ..DriverOptions::quick()
            },
            sizes: DEFAULT_SIZES.to_vec(),
            feature_set: FeatureSet::Grewe,
        }
    }
}

/// Why the whole drive call (not an individual unit) failed.
#[derive(Debug, Clone, PartialEq)]
pub enum HarnessError {
    /// The source failed to compile; the payload is the diagnostic text.
    Compile(String),
    /// The source compiled but contains no kernel functions.
    NoKernel,
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Compile(d) => write!(f, "compile error: {d}"),
            HarnessError::NoKernel => write!(f, "no kernel in source"),
        }
    }
}

impl std::error::Error for HarnessError {}

/// Why one work unit produced no record.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitError {
    /// The unit exceeded an execution budget (step or resource limit) — the
    /// typed outcome the bounded `ExecLimits` abort hooks to.
    BudgetExceeded(String),
    /// The interpreter panicked; the panic was contained to this unit.
    Panicked,
    /// The shared deadline expired before the unit started.
    DeadlineExceeded,
    /// Any other typed driver failure (payload, checker, exec).
    Drive(String),
}

impl UnitError {
    /// Short machine-readable kind tag used in NDJSON lines.
    pub fn kind(&self) -> &'static str {
        match self {
            UnitError::BudgetExceeded(_) => "budget_exceeded",
            UnitError::Panicked => "panicked",
            UnitError::DeadlineExceeded => "deadline_exceeded",
            UnitError::Drive(_) => "drive_error",
        }
    }

    /// Human-readable detail.
    pub fn detail(&self) -> String {
        match self {
            UnitError::BudgetExceeded(d) | UnitError::Drive(d) => d.clone(),
            UnitError::Panicked => "interpreter panicked".into(),
            UnitError::DeadlineExceeded => "deadline expired before unit started".into(),
        }
    }
}

impl std::fmt::Display for UnitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind(), self.detail())
    }
}

/// The complete result for one (kernel function, payload size) work unit.
///
/// The `*_us` wall-clock fields are observability metadata: they feed trace
/// spans, metrics and benchmark stage breakdowns, but are deliberately
/// excluded from the NDJSON rendering so reports stay byte-identical across
/// runs and worker counts.
#[derive(Debug, Clone)]
pub struct UnitResult {
    /// Kernel function name.
    pub kernel: String,
    /// Payload (global) size driven.
    pub global_size: usize,
    /// The driver record, if the unit succeeded.
    pub run: Option<KernelRun>,
    /// The extracted feature vector, if the unit succeeded.
    pub features: Option<Vec<f64>>,
    /// The predicted mapping class, if a model was attached.
    pub prediction: Option<usize>,
    /// The typed error, if the unit failed.
    pub error: Option<UnitError>,
    /// Wall-clock of the drive (interpreter) phase, microseconds.
    pub run_us: u64,
    /// Wall-clock of feature extraction, microseconds.
    pub features_us: u64,
    /// Wall-clock of mapping inference, microseconds.
    pub predict_us: u64,
}

/// Aggregate counters over one or many drive calls (mirrored into the
/// server's `/stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HarnessCounters {
    /// Sources that compiled and entered the drive pool.
    pub kernels_driven: u64,
    /// Work units attempted.
    pub units_total: u64,
    /// Units that produced a record.
    pub units_ok: u64,
    /// Units cut off by a step/resource budget.
    pub units_budget_killed: u64,
    /// Units whose interpreter panicked (contained).
    pub units_panicked: u64,
    /// Mapping predictions produced.
    pub predictions: u64,
}

impl HarnessCounters {
    /// Fold another set of counters into this one (used by the server to
    /// accumulate per-request reports into `/stats`).
    pub fn merge(&mut self, other: &HarnessCounters) {
        self.kernels_driven += other.kernels_driven;
        self.units_total += other.units_total;
        self.units_ok += other.units_ok;
        self.units_budget_killed += other.units_budget_killed;
        self.units_panicked += other.units_panicked;
        self.predictions += other.predictions;
    }
}

/// The report for one driven source.
#[derive(Debug, Clone)]
pub struct HarnessReport {
    /// One result per work unit, in deterministic (kernel-major, size-minor)
    /// order — independent of worker count.
    pub units: Vec<UnitResult>,
}

impl HarnessReport {
    /// Total wall-clock per pipeline stage across all units, microseconds:
    /// `(drive, features, predict)`. Feeds the serving traces and the
    /// benchmark recorders' stage breakdowns.
    pub fn stage_timing_us(&self) -> (u64, u64, u64) {
        self.units.iter().fold((0, 0, 0), |(r, f, p), u| {
            (r + u.run_us, f + u.features_us, p + u.predict_us)
        })
    }

    /// Derive aggregate counters for this report.
    pub fn counters(&self) -> HarnessCounters {
        let mut c = HarnessCounters {
            kernels_driven: 1,
            units_total: self.units.len() as u64,
            ..HarnessCounters::default()
        };
        for u in &self.units {
            if u.run.is_some() {
                c.units_ok += 1;
            }
            if u.prediction.is_some() {
                c.predictions += 1;
            }
            match u.error {
                Some(UnitError::BudgetExceeded(_)) => c.units_budget_killed += 1,
                Some(UnitError::Panicked) => c.units_panicked += 1,
                _ => {}
            }
        }
        c
    }

    /// Render the report as NDJSON lines, stage by stage: every `run` event,
    /// then every `features` event, then every `prediction` event (unit
    /// errors appear in the run stage). The rendering is byte-deterministic
    /// for a fixed report.
    pub fn ndjson(&self) -> Vec<String> {
        let mut lines = self.ndjson_runs();
        lines.extend(self.ndjson_features());
        lines.extend(self.ndjson_predictions());
        lines
    }

    /// The `run` stage lines only (plus `unit_error` lines for failed units).
    pub fn ndjson_runs(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for u in &self.units {
            lines.push(match (&u.run, &u.error) {
                (Some(run), _) => format!(
                    "{{\"event\":\"run\",\"kernel\":{},\"global_size\":{},\
                     \"cpu_time\":{},\"gpu_time\":{},\"oracle\":\"{}\"}}",
                    json_string(&u.kernel),
                    u.global_size,
                    json_f64(run.cpu_time),
                    json_f64(run.gpu_time),
                    device_name(run.cpu_time <= run.gpu_time),
                ),
                (None, Some(e)) => format!(
                    "{{\"event\":\"unit_error\",\"kernel\":{},\"global_size\":{},\
                     \"error\":\"{}\",\"detail\":{}}}",
                    json_string(&u.kernel),
                    u.global_size,
                    e.kind(),
                    json_string(&e.detail()),
                ),
                (None, None) => unreachable!("unit has neither run nor error"),
            });
        }
        lines
    }

    /// The `features` stage lines only (successful units with extracted
    /// vectors).
    pub fn ndjson_features(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for u in &self.units {
            if let Some(features) = &u.features {
                let mut vec = String::new();
                for (i, v) in features.iter().enumerate() {
                    if i > 0 {
                        vec.push(',');
                    }
                    vec.push_str(&json_f64(*v));
                }
                lines.push(format!(
                    "{{\"event\":\"features\",\"kernel\":{},\"global_size\":{},\"features\":[{vec}]}}",
                    json_string(&u.kernel),
                    u.global_size,
                ));
            }
        }
        lines
    }

    /// The `prediction` stage lines only (units a mapping model classified).
    pub fn ndjson_predictions(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for u in &self.units {
            if let Some(class) = u.prediction {
                lines.push(format!(
                    "{{\"event\":\"prediction\",\"kernel\":{},\"global_size\":{},\
                     \"class\":\"{}\"}}",
                    json_string(&u.kernel),
                    u.global_size,
                    device_name(class == CLASS_CPU),
                ));
            }
        }
        lines
    }
}

/// The batched drive-and-predict pipeline.
#[derive(Debug, Clone)]
pub struct Harness {
    config: HarnessConfig,
    model: Option<Arc<MappingModel>>,
    metrics: Option<Arc<clgen_obs::Registry>>,
}

impl Harness {
    /// Build a harness; attach a trained mapping model to get predictions.
    pub fn new(config: HarnessConfig, model: Option<Arc<MappingModel>>) -> Harness {
        Harness {
            config,
            model,
            metrics: None,
        }
    }

    /// Report unit outcomes, per-unit run time, kernels driven and
    /// predictions into `registry` (the `clgen_harness_*` families). Without
    /// a registry the harness records nothing — drives are unobserved, not
    /// slower.
    pub fn with_metrics(mut self, registry: Arc<clgen_obs::Registry>) -> Harness {
        self.metrics = Some(registry);
        self
    }

    /// The configuration this harness drives with.
    pub fn config(&self) -> &HarnessConfig {
        &self.config
    }

    /// Is a mapping model attached?
    pub fn has_model(&self) -> bool {
        self.model.is_some()
    }

    /// Compile `source` once and drive every (kernel, size) unit across the
    /// worker pool. Per-unit failures are typed results inside the report;
    /// only compile failures fail the call as a whole.
    ///
    /// # Errors
    ///
    /// Returns a [`HarnessError`] when the source does not compile or holds
    /// no kernels.
    pub fn drive_source(
        &self,
        source: &str,
        deadline: &Deadline,
    ) -> Result<HarnessReport, HarnessError> {
        self.drive(source, deadline, true)
    }

    /// Serial reference implementation: identical results to
    /// [`Harness::drive_source`], but units run one after another on the
    /// calling thread. This is the baseline the `record_driving` bench
    /// recorder compares the batched pool against.
    ///
    /// # Errors
    ///
    /// Same as [`Harness::drive_source`].
    pub fn drive_source_serial(
        &self,
        source: &str,
        deadline: &Deadline,
    ) -> Result<HarnessReport, HarnessError> {
        self.drive(source, deadline, false)
    }

    fn drive(
        &self,
        source: &str,
        deadline: &Deadline,
        parallel: bool,
    ) -> Result<HarnessReport, HarnessError> {
        let compiled = compile(source, &CompileOptions::default());
        if !compiled.is_ok() {
            return Err(HarnessError::Compile(compiled.diagnostics.to_string()));
        }
        if compiled.kernels.is_empty() {
            return Err(HarnessError::NoKernel);
        }
        let unit = &compiled.unit;
        // Static counts once per kernel function (shared by all its sizes);
        // the analysis walks the hostile AST, so contain panics here too.
        let statics: Vec<Option<StaticCounts>> = compiled
            .kernels
            .iter()
            .map(|sig| {
                unit.function(&sig.name)
                    .and_then(|f| catch_unwind(AssertUnwindSafe(|| analyze_function(unit, f))).ok())
            })
            .collect();
        let work: Vec<(usize, usize)> = (0..compiled.kernels.len())
            .flat_map(|k| self.config.sizes.iter().map(move |&s| (k, s)))
            .collect();
        let run_unit = |(k, size): (usize, usize)| {
            self.run_unit(
                unit,
                &compiled.kernels[k],
                statics[k].as_ref(),
                size,
                deadline,
            )
        };
        let units: Vec<UnitResult> = if parallel {
            work.into_par_iter().map(run_unit).collect()
        } else {
            work.into_iter().map(run_unit).collect()
        };
        if let Some(registry) = &self.metrics {
            registry
                .counter(
                    "clgen_harness_kernels_driven_total",
                    &[],
                    "Kernels driven through the harness",
                )
                .inc();
        }
        Ok(HarnessReport { units })
    }

    fn run_unit(
        &self,
        unit: &TranslationUnit,
        sig: &KernelSignature,
        statics: Option<&StaticCounts>,
        size: usize,
        deadline: &Deadline,
    ) -> UnitResult {
        let mut result = UnitResult {
            kernel: sig.name.clone(),
            global_size: size,
            run: None,
            features: None,
            prediction: None,
            error: None,
            run_us: 0,
            features_us: 0,
            predict_us: 0,
        };
        if deadline.expired() {
            result.error = Some(UnitError::DeadlineExceeded);
            self.record_unit(&result);
            return result;
        }
        let driver =
            HostDriver::with_options(self.config.platform.clone(), self.config.driver.clone());
        // The vendored rayon pool treats a worker panic as fatal, so the
        // catch_unwind MUST live inside the unit closure: a hostile kernel
        // takes down its own unit, never the pool.
        let drive_started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| driver.run_kernel(unit, sig, size)));
        result.run_us = drive_started.elapsed().as_micros() as u64;
        match outcome {
            Err(_) => result.error = Some(UnitError::Panicked),
            Ok(Err(e)) => result.error = Some(classify_drive_error(e)),
            Ok(Ok(run)) => {
                if let Some(counts) = statics {
                    let features_started = Instant::now();
                    let features = GreweFeatures {
                        static_features: StaticFeatures::from_counts(counts),
                        transfer: run.workload.transfer_bytes,
                        wgsize: run.global_size as f64,
                    };
                    let vector = self.config.feature_set.vector(&features);
                    result.features_us = features_started.elapsed().as_micros() as u64;
                    if let Some(model) = &self.model {
                        let predict_started = Instant::now();
                        result.prediction = Some(model.predict_vector(&vector));
                        result.predict_us = predict_started.elapsed().as_micros() as u64;
                    }
                    result.features = Some(vector);
                }
                result.run = Some(run);
            }
        }
        self.record_unit(&result);
        result
    }

    /// Report one unit's outcome and run time into the attached registry
    /// (atomics only — safe from any rayon worker).
    fn record_unit(&self, result: &UnitResult) {
        let Some(registry) = &self.metrics else {
            return;
        };
        let outcome = match &result.error {
            None => "ok",
            Some(UnitError::BudgetExceeded(_)) => "budget_killed",
            Some(UnitError::Panicked) => "panicked",
            Some(UnitError::DeadlineExceeded) => "deadline",
            Some(UnitError::Drive(_)) => "drive_error",
        };
        registry
            .counter(
                "clgen_harness_units_total",
                &[("outcome", outcome)],
                "Harness work units by outcome",
            )
            .inc();
        registry
            .histogram(
                "clgen_harness_unit_run_us",
                &[],
                "Per-unit drive wall-clock in microseconds",
            )
            .observe(result.run_us);
        if result.prediction.is_some() {
            registry
                .counter(
                    "clgen_harness_predictions_total",
                    &[],
                    "CPU/GPU mapping predictions produced",
                )
                .inc();
        }
    }
}

/// Map a typed driver failure onto the unit-error taxonomy.
fn classify_drive_error(e: DriveError) -> UnitError {
    match &e {
        DriveError::Exec(
            ExecError::StepLimitExceeded
            | ExecError::TotalStepLimitExceeded
            | ExecError::ResourceLimitExceeded(_),
        ) => UnitError::BudgetExceeded(e.to_string()),
        _ => UnitError::Drive(e.to_string()),
    }
}

fn device_name(is_cpu: bool) -> &'static str {
    if is_cpu {
        "cpu"
    } else {
        "gpu"
    }
}

/// Render an `f64` as a JSON value: `{}` Display (shortest round-trip, fully
/// deterministic) for finite values, `null` otherwise.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Rust renders whole floats without a fraction ("3"); keep JSON
        // number-typed but unambiguous by leaving them as-is (still valid).
        s
    } else {
        "null".into()
    }
}

/// Minimal JSON string rendering (quotes + escapes), matching the hand-rolled
/// convention used across the serving layer.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictive::{Dataset, Example};

    const VECADD: &str =
        "__kernel void A(__global float* a, __global float* b, __global float* c, const int d) {
        int e = get_global_id(0);
        if (e < d) { c[e] = a[e] + b[e]; }
    }";

    const TWO_KERNELS: &str = "__kernel void A(__global float* a, const int n) {
        int i = get_global_id(0);
        if (i < n) { a[i] = a[i] * 2.0f; }
    }
    __kernel void B(__global float* a, __global float* b, const int n) {
        int i = get_global_id(0);
        if (i < n) { b[i] = a[i] + 1.0f; }
    }";

    fn toy_model() -> Arc<MappingModel> {
        let mut d = Dataset::new();
        for i in 0..16 {
            let f1 = (i + 1) as f64 * 100.0;
            let gpu_better = f1 > 800.0;
            d.push(Example {
                features: vec![f1, 0.0, 0.0, 1.0],
                benchmark: format!("b{}", i / 2),
                suite: "S".into(),
                id: format!("b{i}"),
                cpu_time: if gpu_better { 10.0 } else { 1.0 },
                gpu_time: if gpu_better { 1.0 } else { 10.0 },
            });
        }
        Arc::new(MappingModel::train(&d))
    }

    #[test]
    fn drives_every_kernel_size_pair_in_order() {
        let harness = Harness::new(HarnessConfig::quick(), None);
        let report = harness
            .drive_source(TWO_KERNELS, &Deadline::none())
            .unwrap();
        let expected: Vec<(String, usize)> = ["A", "B"]
            .iter()
            .flat_map(|k| DEFAULT_SIZES.iter().map(|&s| (k.to_string(), s)))
            .collect();
        let got: Vec<(String, usize)> = report
            .units
            .iter()
            .map(|u| (u.kernel.clone(), u.global_size))
            .collect();
        assert_eq!(got, expected);
        assert!(report.units.iter().all(|u| u.run.is_some()));
        assert_eq!(report.counters().units_ok, 6);
    }

    #[test]
    fn parallel_matches_serial_byte_for_byte() {
        let harness = Harness::new(HarnessConfig::quick(), Some(toy_model()));
        let parallel = harness
            .drive_source(TWO_KERNELS, &Deadline::none())
            .unwrap();
        let serial = harness
            .drive_source_serial(TWO_KERNELS, &Deadline::none())
            .unwrap();
        assert_eq!(parallel.ndjson(), serial.ndjson());
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let harness = Harness::new(HarnessConfig::quick(), Some(toy_model()));
        let baseline =
            rayon::with_num_threads(1, || harness.drive_source(TWO_KERNELS, &Deadline::none()))
                .unwrap()
                .ndjson();
        for workers in [2, 4, 8] {
            let got = rayon::with_num_threads(workers, || {
                harness.drive_source(TWO_KERNELS, &Deadline::none())
            })
            .unwrap()
            .ndjson();
            assert_eq!(got, baseline, "divergence at {workers} workers");
        }
    }

    #[test]
    fn predictions_rendered_when_model_attached() {
        let harness = Harness::new(HarnessConfig::quick(), Some(toy_model()));
        let report = harness.drive_source(VECADD, &Deadline::none()).unwrap();
        assert!(report.units.iter().all(|u| u.prediction.is_some()));
        let lines = report.ndjson();
        assert!(lines.iter().any(|l| l.contains("\"event\":\"prediction\"")));
        assert!(lines.iter().any(|l| l.contains("\"event\":\"features\"")));
        assert_eq!(report.counters().predictions, 3);
    }

    #[test]
    fn compile_failure_is_a_call_error() {
        let harness = Harness::new(HarnessConfig::quick(), None);
        assert!(matches!(
            harness.drive_source(
                "__kernel void A(__global float* a) { a[0] = oops; }",
                &Deadline::none()
            ),
            Err(HarnessError::Compile(_))
        ));
        assert!(matches!(
            harness.drive_source("int helper(int x) { return x; }", &Deadline::none()),
            Err(HarnessError::NoKernel)
        ));
    }

    #[test]
    fn budget_kill_is_a_typed_unit_error() {
        let mut config = HarnessConfig::quick();
        config.driver.total_step_budget = 1_000;
        let harness = Harness::new(config, None);
        let hog = "__kernel void A(__global float* a, const int n) {
            int i = get_global_id(0);
            float acc = 0.0f;
            for (int r = 0; r < 100000; r++) { acc += a[i % 16] * 0.5f; }
            a[i % 16] = acc;
        }";
        let report = harness.drive_source(hog, &Deadline::none()).unwrap();
        assert!(report
            .units
            .iter()
            .all(|u| matches!(u.error, Some(UnitError::BudgetExceeded(_)))));
        let counters = report.counters();
        assert_eq!(counters.units_budget_killed, counters.units_total);
        assert!(report
            .ndjson()
            .iter()
            .any(|l| l.contains("\"error\":\"budget_exceeded\"")));
    }

    #[test]
    fn expired_deadline_yields_typed_errors_not_hangs() {
        let harness = Harness::new(HarnessConfig::quick(), None);
        let past = Deadline::at(Instant::now() - std::time::Duration::from_secs(1));
        let report = harness.drive_source(VECADD, &past).unwrap();
        assert!(report
            .units
            .iter()
            .all(|u| matches!(u.error, Some(UnitError::DeadlineExceeded))));
    }

    #[test]
    fn ndjson_lines_are_valid_shape() {
        let harness = Harness::new(HarnessConfig::quick(), Some(toy_model()));
        let report = harness.drive_source(VECADD, &Deadline::none()).unwrap();
        for line in report.ndjson() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(!line.contains('\n'));
        }
    }

    #[test]
    fn json_helpers_handle_edge_values() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
