//! The Grewe et al. feature set (Table 2 of the paper).
//!
//! The predictive model of Grewe, Wang and O'Boyle (CGO 2013) characterises an
//! OpenCL kernel + dataset pair with four static code features, two dynamic
//! features and four combinations:
//!
//! | raw | kind | meaning |
//! |-----|------|---------|
//! | `comp` | static | number of compute operations |
//! | `mem` | static | number of accesses to global memory |
//! | `localmem` | static | number of accesses to local memory |
//! | `coalesced` | static | number of coalesced memory accesses |
//! | `transfer` | dynamic | size of host↔device data transfers |
//! | `wgsize` | dynamic | number of work items per kernel |
//!
//! Combined: `F1 = transfer/(comp+mem)`, `F2 = coalesced/mem`,
//! `F3 = (localmem/mem)×wgsize`, `F4 = comp/mem`.
//!
//! §8.2 of the CLgen paper extends this with a static branch count and the raw
//! feature values; see [`GreweFeatures::extended_vector`].

use cl_frontend::analysis::StaticCounts;
use cldrive::KernelRun;
use serde::{Deserialize, Serialize};

/// The four static code features of Table 2a.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StaticFeatures {
    /// Number of compute operations.
    pub comp: f64,
    /// Number of accesses to global memory.
    pub mem: f64,
    /// Number of accesses to local memory.
    pub localmem: f64,
    /// Number of coalesced memory accesses.
    pub coalesced: f64,
    /// Static count of branching operations (the §8.2 extension).
    pub branches: f64,
}

impl StaticFeatures {
    /// Extract static features from frontend static analysis counts.
    pub fn from_counts(counts: &StaticCounts) -> StaticFeatures {
        StaticFeatures {
            comp: counts.compute_ops as f64,
            mem: counts.global_mem_accesses as f64,
            localmem: counts.local_mem_accesses as f64,
            coalesced: counts.coalesced_accesses as f64,
            branches: counts.branches as f64,
        }
    }

    /// The integer-valued static feature tuple used for exact feature-value
    /// matching in Figure 9 (`comp`, `mem`, `localmem`, `coalesced`).
    pub fn match_key(&self) -> (u64, u64, u64, u64) {
        (
            self.comp as u64,
            self.mem as u64,
            self.localmem as u64,
            self.coalesced as u64,
        )
    }

    /// Match key including the branch feature (used for the extended model's
    /// Figure 9 variant).
    pub fn match_key_with_branches(&self) -> (u64, u64, u64, u64, u64) {
        let (a, b, c, d) = self.match_key();
        (a, b, c, d, self.branches as u64)
    }
}

/// The full Grewe et al. feature vector for one (kernel, dataset) pair.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GreweFeatures {
    /// Static code features.
    pub static_features: StaticFeatures,
    /// Dynamic: bytes transferred between host and device.
    pub transfer: f64,
    /// Dynamic: number of work items.
    pub wgsize: f64,
}

impl GreweFeatures {
    /// Build the feature vector from static counts and a driver record.
    pub fn new(static_counts: &StaticCounts, run: &KernelRun) -> GreweFeatures {
        GreweFeatures {
            static_features: StaticFeatures::from_counts(static_counts),
            transfer: run.workload.transfer_bytes,
            wgsize: run.global_size as f64,
        }
    }

    /// F1: communication-computation ratio `transfer / (comp + mem)`.
    ///
    /// Zero-denominator convention (applies to all of F1..F4): a denominator
    /// of zero is clamped to 1, so the feature degrades to its raw numerator
    /// instead of producing `inf`/`NaN`. A kernel with `comp + mem == 0` thus
    /// has `F1 == transfer`, and a kernel with `mem == 0` has
    /// `F2 == coalesced`, `F3 == localmem × wgsize`, `F4 == comp` — finite,
    /// deterministic values the decision tree can split on.
    pub fn f1(&self) -> f64 {
        self.transfer / (self.static_features.comp + self.static_features.mem).max(1.0)
    }

    /// F2: fraction of coalesced memory accesses `coalesced / mem`.
    ///
    /// `mem == 0` clamps to 1 (see [`GreweFeatures::f1`]); since coalesced
    /// accesses are a subset of global accesses, this yields exactly 0.
    pub fn f2(&self) -> f64 {
        self.static_features.coalesced / self.static_features.mem.max(1.0)
    }

    /// F3: `(localmem / mem) × wgsize`.
    ///
    /// `mem == 0` clamps to 1 (see [`GreweFeatures::f1`]), giving
    /// `localmem × wgsize`.
    pub fn f3(&self) -> f64 {
        (self.static_features.localmem / self.static_features.mem.max(1.0)) * self.wgsize
    }

    /// F4: computation-memory ratio `comp / mem`.
    ///
    /// `mem == 0` clamps to 1 (see [`GreweFeatures::f1`]), giving `comp`.
    pub fn f4(&self) -> f64 {
        self.static_features.comp / self.static_features.mem.max(1.0)
    }

    /// The original Grewe et al. model input: the four combined features only.
    pub fn combined_vector(&self) -> Vec<f64> {
        vec![self.f1(), self.f2(), self.f3(), self.f4()]
    }

    /// The extended model input of §8.2: combined features plus the raw
    /// features plus the branch count.
    pub fn extended_vector(&self) -> Vec<f64> {
        vec![
            self.f1(),
            self.f2(),
            self.f3(),
            self.f4(),
            self.static_features.comp,
            self.static_features.mem,
            self.static_features.localmem,
            self.static_features.coalesced,
            self.transfer,
            self.wgsize,
            self.static_features.branches,
        ]
    }

    /// Names of the extended feature columns, aligned with
    /// [`GreweFeatures::extended_vector`].
    pub fn extended_names() -> Vec<&'static str> {
        vec![
            "F1:transfer/(comp+mem)",
            "F2:coalesced/mem",
            "F3:(localmem/mem)*wgsize",
            "F4:comp/mem",
            "comp",
            "mem",
            "localmem",
            "coalesced",
            "transfer",
            "wgsize",
            "branches",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_frontend::analysis::analyze_function;
    use cl_frontend::parser::parse;
    use cldrive::{DriverOptions, HostDriver, Platform};

    fn features_of(src: &str, size: usize) -> GreweFeatures {
        let parsed = parse(src);
        assert!(parsed.is_ok(), "{}", parsed.diagnostics);
        let kernel = parsed.unit.kernels().next().unwrap().clone();
        let counts = analyze_function(&parsed.unit, &kernel);
        let driver = HostDriver::with_options(Platform::amd(), DriverOptions::quick());
        let compiled = cl_frontend::compile(src, &Default::default());
        let run = driver
            .run_kernel(&parsed.unit, &compiled.kernels[0], size)
            .unwrap();
        GreweFeatures::new(&counts, &run)
    }

    const VECADD: &str =
        "__kernel void A(__global float* a, __global float* b, __global float* c, const int d) {
        int e = get_global_id(0);
        if (e < d) { c[e] = a[e] + b[e]; }
    }";

    #[test]
    fn static_features_extracted() {
        let f = features_of(VECADD, 1024);
        assert_eq!(f.static_features.mem, 3.0);
        assert_eq!(f.static_features.coalesced, 3.0);
        assert!(f.static_features.comp >= 1.0);
        assert_eq!(f.static_features.branches, 1.0);
    }

    #[test]
    fn combined_features_match_formulas() {
        let f = features_of(VECADD, 1024);
        assert!((f.f2() - 1.0).abs() < 1e-9, "all accesses are coalesced");
        assert!((f.f4() - f.static_features.comp / 3.0).abs() < 1e-9);
        assert_eq!(f.f3(), 0.0, "no local memory");
        assert!(f.f1() > 0.0, "transfers are non-zero");
        assert_eq!(f.combined_vector().len(), 4);
        assert_eq!(f.extended_vector().len(), 11);
        assert_eq!(GreweFeatures::extended_names().len(), 11);
    }

    #[test]
    fn dynamic_features_scale_with_dataset() {
        let small = features_of(VECADD, 256);
        let large = features_of(VECADD, 1 << 20);
        assert!(large.transfer > small.transfer * 1000.0);
        assert!(large.wgsize > small.wgsize * 1000.0);
        // static part identical
        assert_eq!(small.static_features, large.static_features);
    }

    #[test]
    fn local_memory_kernel_has_nonzero_f3() {
        let src = "__kernel void A(__global float* a, __local float* t, const int n) {
            int i = get_local_id(0);
            t[i] = a[get_global_id(0)];
            barrier(CLK_LOCAL_MEM_FENCE);
            a[get_global_id(0)] = t[i] * 2.0f;
        }";
        let f = features_of(src, 2048);
        assert!(f.static_features.localmem >= 2.0);
        assert!(f.f3() > 0.0);
    }

    #[test]
    fn zero_mem_denominator_is_clamped_not_nan() {
        // A kernel that never touches global memory: mem == 0 must not poison
        // the combined features with inf/NaN.
        let f = GreweFeatures {
            static_features: StaticFeatures {
                comp: 12.0,
                mem: 0.0,
                localmem: 3.0,
                coalesced: 0.0,
                branches: 1.0,
            },
            transfer: 64.0,
            wgsize: 128.0,
        };
        assert!(f.combined_vector().iter().all(|v| v.is_finite()));
        // The documented convention: denominators clamp to 1.
        assert_eq!(f.f1(), 64.0 / 12.0);
        assert_eq!(f.f2(), 0.0);
        assert_eq!(f.f3(), 3.0 * 128.0);
        assert_eq!(f.f4(), 12.0);
    }

    #[test]
    fn zero_comp_and_mem_denominator_is_clamped_not_nan() {
        // comp + mem == 0: F1's denominator clamps to 1, so F1 == transfer.
        let f = GreweFeatures {
            static_features: StaticFeatures::default(),
            transfer: 256.0,
            wgsize: 64.0,
        };
        assert!(f.combined_vector().iter().all(|v| v.is_finite()));
        assert_eq!(f.f1(), 256.0);
        assert_eq!(f.f2(), 0.0);
        assert_eq!(f.f3(), 0.0);
        assert_eq!(f.f4(), 0.0);
        assert!(f.extended_vector().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn match_keys_distinguish_branchiness() {
        let plain = features_of(VECADD, 256);
        let branchy_src = "__kernel void A(__global float* a, __global float* b, __global float* c, const int d) {
            int e = get_global_id(0);
            if (e < 4 && e < d) { c[e] = a[e] + b[e]; a[e] = b[e] + 1; }
        }";
        let branchy = features_of(branchy_src, 256);
        // The Listing-2 phenomenon: indistinguishable on the four static
        // features, separated once the branch feature is added.
        assert_ne!(
            plain.static_features.match_key_with_branches(),
            branchy.static_features.match_key_with_branches()
        );
    }
}
