//! Principal Component Analysis, used to project the feature space to two
//! dimensions for Figure 3 of the paper.
//!
//! The implementation standardises the input columns and extracts the leading
//! eigenvectors of the covariance matrix by power iteration with deflation —
//! ample for the small feature matrices involved.

/// A fitted PCA projection.
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    /// Per-column means used for centring.
    pub means: Vec<f64>,
    /// Per-column standard deviations used for scaling.
    pub scales: Vec<f64>,
    /// Principal components (each of length = number of columns).
    pub components: Vec<Vec<f64>>,
    /// Eigenvalue associated with each component (explained variance).
    pub explained_variance: Vec<f64>,
}

impl Pca {
    /// Fit a PCA with `n_components` components to a row-major data matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or rows have inconsistent lengths.
    pub fn fit(rows: &[Vec<f64>], n_components: usize) -> Pca {
        assert!(!rows.is_empty(), "PCA requires at least one row");
        let dims = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == dims),
            "inconsistent row lengths"
        );
        let n = rows.len() as f64;
        let mut means = vec![0.0; dims];
        for row in rows {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        means.iter_mut().for_each(|m| *m /= n);
        let mut scales = vec![0.0; dims];
        for row in rows {
            for ((s, v), m) in scales.iter_mut().zip(row).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        scales
            .iter_mut()
            .for_each(|s| *s = (*s / n).sqrt().max(1e-12));
        // standardised data
        let data: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| {
                r.iter()
                    .zip(&means)
                    .zip(&scales)
                    .map(|((v, m), s)| (v - m) / s)
                    .collect()
            })
            .collect();
        // covariance matrix (dims x dims)
        let mut cov = vec![vec![0.0; dims]; dims];
        for row in &data {
            for i in 0..dims {
                for j in 0..dims {
                    cov[i][j] += row[i] * row[j];
                }
            }
        }
        for row in cov.iter_mut() {
            for v in row.iter_mut() {
                *v /= n;
            }
        }
        // power iteration with deflation
        let k = n_components.min(dims);
        let mut components = Vec::with_capacity(k);
        let mut explained = Vec::with_capacity(k);
        let mut work = cov.clone();
        for c in 0..k {
            let (vec, value) = power_iteration(&work, 500, 1e-10, c as u64);
            // deflate
            for i in 0..dims {
                for j in 0..dims {
                    work[i][j] -= value * vec[i] * vec[j];
                }
            }
            components.push(vec);
            explained.push(value.max(0.0));
        }
        Pca {
            means,
            scales,
            components,
            explained_variance: explained,
        }
    }

    /// Project a single row onto the fitted components.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        let standardised: Vec<f64> = row
            .iter()
            .zip(&self.means)
            .zip(&self.scales)
            .map(|((v, m), s)| (v - m) / s)
            .collect();
        self.components
            .iter()
            .map(|c| c.iter().zip(&standardised).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Fit and transform in one call, returning the projected rows.
    pub fn fit_transform(rows: &[Vec<f64>], n_components: usize) -> (Pca, Vec<Vec<f64>>) {
        let pca = Pca::fit(rows, n_components);
        let projected = rows.iter().map(|r| pca.transform(r)).collect();
        (pca, projected)
    }
}

fn power_iteration(
    matrix: &[Vec<f64>],
    iterations: usize,
    tolerance: f64,
    seed: u64,
) -> (Vec<f64>, f64) {
    let dims = matrix.len();
    // Deterministic pseudo-random start vector.
    let mut v: Vec<f64> = (0..dims)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed * 1442695040888963407 + 1);
            ((x >> 33) as f64 / (1u64 << 31) as f64) - 1.0 + 1e-3
        })
        .collect();
    normalize(&mut v);
    let mut eigenvalue = 0.0;
    for _ in 0..iterations {
        let mut next = vec![0.0; dims];
        for i in 0..dims {
            for j in 0..dims {
                next[i] += matrix[i][j] * v[j];
            }
        }
        let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-15 {
            return (v, 0.0);
        }
        next.iter_mut().for_each(|x| *x /= norm);
        let delta: f64 = next.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
        v = next;
        eigenvalue = norm;
        if delta < tolerance {
            break;
        }
    }
    (v, eigenvalue)
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-15);
    v.iter_mut().for_each(|x| *x /= norm);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_direction() {
        // Points spread along the (1, 1) direction with small noise in (1, -1).
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let t = i as f64 / 10.0 - 5.0;
                let noise = ((i * 7919) % 13) as f64 / 13.0 - 0.5;
                vec![t + 0.1 * noise, t - 0.1 * noise]
            })
            .collect();
        let (pca, projected) = Pca::fit_transform(&rows, 2);
        assert_eq!(projected.len(), 100);
        assert_eq!(projected[0].len(), 2);
        // First component explains far more variance than the second.
        assert!(pca.explained_variance[0] > pca.explained_variance[1] * 5.0);
        // The first component is aligned with (1,1)/sqrt(2) (up to sign).
        let c = &pca.components[0];
        assert!((c[0].abs() - c[1].abs()).abs() < 0.1, "{c:?}");
    }

    #[test]
    fn transform_is_consistent_with_fit() {
        let rows = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.5],
            vec![3.0, 6.0, 8.5],
            vec![4.0, 8.0, 12.0],
        ];
        let (pca, projected) = Pca::fit_transform(&rows, 2);
        for (row, proj) in rows.iter().zip(&projected) {
            let again = pca.transform(row);
            for (a, b) in again.iter().zip(proj) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn constant_columns_do_not_blow_up() {
        let rows = vec![vec![1.0, 5.0], vec![1.0, 6.0], vec![1.0, 7.0]];
        let (pca, projected) = Pca::fit_transform(&rows, 2);
        assert!(projected.iter().flatten().all(|v| v.is_finite()));
        assert!(pca.explained_variance.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn components_are_orthonormal() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let x = i as f64;
                vec![x, 2.0 * x + (i % 5) as f64, (i % 7) as f64, x * 0.5]
            })
            .collect();
        let pca = Pca::fit(&rows, 3);
        for i in 0..pca.components.len() {
            let norm: f64 = pca.components[i].iter().map(|v| v * v).sum();
            assert!((norm - 1.0).abs() < 1e-6);
            for j in i + 1..pca.components.len() {
                let dot: f64 = pca.components[i]
                    .iter()
                    .zip(&pca.components[j])
                    .map(|(a, b)| a * b)
                    .sum();
                assert!(
                    dot.abs() < 0.05,
                    "components {i} and {j} not orthogonal: {dot}"
                );
            }
        }
    }
}
