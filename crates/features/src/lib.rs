//! # grewe-features
//!
//! Program features for the CPU/GPU mapping predictive model: the Grewe et
//! al. feature set of Table 2 ([`grewe`]), the extended feature set of §8.2
//! (raw features + branch counts), and a small [`pca`] implementation used to
//! visualise the feature space (Figure 3).
//!
//! ```
//! use cl_frontend::analysis::analyze_function;
//! use cl_frontend::parser::parse;
//! use grewe_features::GreweFeatures;
//!
//! let parsed = parse("__kernel void A(__global float* a, const int n) {
//!     int i = get_global_id(0);
//!     if (i < n) { a[i] = a[i] * 2.0f; }
//! }");
//! let kernel = parsed.unit.kernels().next().unwrap().clone();
//! let counts = analyze_function(&parsed.unit, &kernel);
//! // Static features alone (dynamic features come from the cldrive driver).
//! let statics = grewe_features::StaticFeatures::from_counts(&counts);
//! assert_eq!(statics.mem, 2.0);
//! ```

#![warn(missing_docs)]

pub mod grewe;
pub mod pca;

pub use grewe::{GreweFeatures, StaticFeatures};
pub use pca::Pca;

/// Which feature representation a model consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureSet {
    /// The original Grewe et al. model: combined features F1–F4 only.
    Grewe,
    /// The extended model of §8.2: F1–F4 plus raw features plus branches.
    Extended,
}

impl FeatureSet {
    /// Produce the model input vector for a feature record.
    pub fn vector(&self, features: &GreweFeatures) -> Vec<f64> {
        match self {
            FeatureSet::Grewe => features.combined_vector(),
            FeatureSet::Extended => features.extended_vector(),
        }
    }

    /// Number of columns produced by [`FeatureSet::vector`].
    pub fn dims(&self) -> usize {
        match self {
            FeatureSet::Grewe => 4,
            FeatureSet::Extended => 11,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_set_dims() {
        assert_eq!(FeatureSet::Grewe.dims(), 4);
        assert_eq!(FeatureSet::Extended.dims(), 11);
        let f = GreweFeatures::default();
        assert_eq!(FeatureSet::Grewe.vector(&f).len(), 4);
        assert_eq!(FeatureSet::Extended.vector(&f).len(), 11);
    }
}
