//! # clgen-wire
//!
//! Hand-rolled binary wire format primitives for checkpoint persistence.
//!
//! The build environment has no serialisation framework (the vendored `serde`
//! is a marker-only stand-in), so the checkpoint formats of the workspace are
//! written by hand over these primitives. The encoding is deliberately plain:
//!
//! * every integer is fixed-width little-endian,
//! * lengths are `u64` prefixes,
//! * floats are stored as their IEEE-754 bit patterns (`f32::to_le_bytes`),
//!   which makes round-trips **bit-exact** — the foundation of the
//!   byte-identical-sampling guarantee of model checkpoints,
//! * strings are length-prefixed UTF-8.
//!
//! [`Encoder`] appends to a growable byte buffer; [`Decoder`] is a
//! bounds-checked cursor over a byte slice. Every read returns
//! [`WireError::UnexpectedEof`] instead of panicking when the input is
//! truncated, so corrupt checkpoints surface as typed errors.
//!
//! ```
//! use clgen_wire::{Decoder, Encoder};
//!
//! let mut enc = Encoder::new();
//! enc.u32(7);
//! enc.str("lstm");
//! enc.f32_slice(&[1.0, -0.5]);
//! let bytes = enc.into_bytes();
//!
//! let mut dec = Decoder::new(&bytes);
//! assert_eq!(dec.u32().unwrap(), 7);
//! assert_eq!(dec.str().unwrap(), "lstm");
//! assert_eq!(dec.f32_vec().unwrap(), vec![1.0, -0.5]);
//! assert!(dec.finish().is_ok());
//! ```

#![warn(missing_docs)]

use std::fmt;

/// Errors produced while decoding a wire buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the expected field.
    UnexpectedEof {
        /// What the decoder was trying to read.
        expected: &'static str,
    },
    /// A magic header did not match.
    BadMagic {
        /// The magic string that was expected.
        expected: &'static str,
    },
    /// The format version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the input.
        found: u32,
        /// Highest version this build can read.
        supported: u32,
    },
    /// A length-prefixed field declared an implausible size.
    ImplausibleLength {
        /// The declared element count.
        declared: u64,
        /// What was being read.
        field: &'static str,
    },
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// Decoding finished with unread bytes left over.
    TrailingBytes {
        /// Number of bytes left unread.
        remaining: usize,
    },
    /// A field held a value the caller's schema does not allow.
    Invalid {
        /// Description of the violated constraint.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input while reading {expected}")
            }
            WireError::BadMagic { expected } => {
                write!(f, "bad magic header (expected {expected:?})")
            }
            WireError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported format version {found} (supported <= {supported})"
                )
            }
            WireError::ImplausibleLength { declared, field } => {
                write!(f, "implausible length {declared} for {field}")
            }
            WireError::InvalidUtf8 => f.write_str("string field holds invalid UTF-8"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after the last field")
            }
            WireError::Invalid { what } => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Appends wire-encoded fields to a byte buffer.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    bytes: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Consume the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Write a raw magic header (no length prefix).
    pub fn magic(&mut self, magic: &str) {
        self.bytes.extend_from_slice(magic.as_bytes());
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    /// Write a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as a `u64` (portable across word sizes).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write an `f32` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn f32(&mut self, v: f32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes.extend_from_slice(s.as_bytes());
    }

    /// Write a length-prefixed slice of `f32` bit patterns.
    pub fn f32_slice(&mut self, values: &[f32]) {
        self.usize(values.len());
        for &v in values {
            self.f32(v);
        }
    }

    /// Write a length-prefixed slice of little-endian `u32`s.
    pub fn u32_slice(&mut self, values: &[u32]) {
        self.usize(values.len());
        for &v in values {
            self.u32(v);
        }
    }
}

/// A bounds-checked cursor over wire-encoded bytes.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Decoder<'a> {
        Decoder { bytes, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, expected: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof { expected });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Check a raw magic header written by [`Encoder::magic`].
    pub fn magic(&mut self, magic: &'static str) -> Result<(), WireError> {
        let found = self.take(magic.len(), "magic header")?;
        if found != magic.as_bytes() {
            return Err(WireError::BadMagic { expected: magic });
        }
        Ok(())
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a `usize` written by [`Encoder::usize`]. Use this for scalar
    /// counts; for a length that drives an allocation or a loop, prefer
    /// [`Decoder::usize_bounded`].
    pub fn usize(&mut self, field: &'static str) -> Result<usize, WireError> {
        let declared = self.u64()?;
        usize::try_from(declared).map_err(|_| WireError::ImplausibleLength { declared, field })
    }

    /// Read a `usize` written by [`Encoder::usize`] that prefixes `unit`-byte
    /// elements, sanity-bounded by the remaining input so corrupt lengths
    /// cannot trigger huge allocations.
    pub fn usize_bounded(&mut self, unit: usize, field: &'static str) -> Result<usize, WireError> {
        let declared = self.u64()?;
        let max = (self.remaining() / unit.max(1)) as u64;
        if declared > max {
            return Err(WireError::ImplausibleLength { declared, field });
        }
        Ok(declared as usize)
    }

    /// Read an `f32` bit pattern.
    pub fn f32(&mut self) -> Result<f32, WireError> {
        let b = self.take(4, "f32")?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        let b = self.take(8, "f64")?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let len = self.usize_bounded(1, "string")?;
        let bytes = self.take(len, "string body")?;
        std::str::from_utf8(bytes).map_err(|_| WireError::InvalidUtf8)
    }

    /// Read a length-prefixed `f32` slice into a fresh vector.
    pub fn f32_vec(&mut self) -> Result<Vec<f32>, WireError> {
        let len = self.usize_bounded(4, "f32 slice")?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f32()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed `u32` slice into a fresh vector.
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, WireError> {
        let len = self.usize_bounded(4, "u32 slice")?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    /// Assert that every byte has been consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() > 0 {
            return Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut enc = Encoder::new();
        enc.magic("TEST");
        enc.u8(0xAB);
        enc.u32(u32::MAX - 1);
        enc.u64(1 << 40);
        enc.usize(12);
        enc.f32(-0.0);
        enc.f64(std::f64::consts::PI);
        enc.str("hello κόσμε");
        let bytes = enc.into_bytes();

        let mut dec = Decoder::new(&bytes);
        dec.magic("TEST").unwrap();
        assert_eq!(dec.u8().unwrap(), 0xAB);
        assert_eq!(dec.u32().unwrap(), u32::MAX - 1);
        assert_eq!(dec.u64().unwrap(), 1 << 40);
        assert_eq!(dec.usize("count").unwrap(), 12);
        assert_eq!(dec.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(dec.f64().unwrap(), std::f64::consts::PI);
        assert_eq!(dec.str().unwrap(), "hello κόσμε");
        dec.finish().unwrap();
    }

    #[test]
    fn float_bit_patterns_survive() {
        let specials = [f32::NAN, f32::INFINITY, f32::MIN_POSITIVE, -1.5e-42];
        let mut enc = Encoder::new();
        enc.f32_slice(&specials);
        let bytes = enc.into_bytes();
        let back = Decoder::new(&bytes).f32_vec().unwrap();
        for (a, b) in specials.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let mut enc = Encoder::new();
        enc.u64(5);
        let mut bytes = enc.into_bytes();
        bytes.truncate(3);
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.u64(), Err(WireError::UnexpectedEof { expected: "u64" }));
    }

    #[test]
    fn implausible_length_is_rejected_before_allocation() {
        let mut enc = Encoder::new();
        enc.u64(u64::MAX / 8);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            dec.f32_vec(),
            Err(WireError::ImplausibleLength { .. })
        ));
    }

    #[test]
    fn bad_magic_and_trailing_bytes() {
        let mut enc = Encoder::new();
        enc.magic("GOOD");
        enc.u8(1);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(
            dec.magic("EVIL"),
            Err(WireError::BadMagic { expected: "EVIL" })
        );
        let mut dec = Decoder::new(&bytes);
        dec.magic("GOOD").unwrap();
        assert_eq!(dec.finish(), Err(WireError::TrailingBytes { remaining: 1 }));
    }
}
